use std::fmt;

/// Errors from WAL appends, replay and event decoding.
#[derive(Debug)]
pub enum IngestError {
    /// Filesystem failure touching a WAL segment.
    Io(std::io::Error),
    /// A fully-written record decoded to garbage — unlike a torn tail
    /// (which replay drops silently), mid-log corruption is not recoverable
    /// by truncation and is surfaced.
    Corrupt(String),
}

impl IngestError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        IngestError::Corrupt(msg.into())
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "wal i/o error: {e}"),
            IngestError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}
