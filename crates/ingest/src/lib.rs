//! Streaming graph ingestion (the live-graph half of the paper's Appendix
//! H.5 scenario: week-T transactions arriving against a week-T−1 model).
//!
//! The subsystem is event-sourced. A transaction stream is a sequence of
//! [`GraphEvent`]s (new transaction, new entity, link, late label); the live
//! graph is a [`xfraud_hetgraph::DeltaGraph`] — an append-only overlay over
//! a frozen CSR base — built by applying events in order. Durability comes
//! from [`ShardedWal`], a sharded write-ahead log using the same record
//! framing as [`xfraud_kvstore::LogStore`]:
//!
//! * every event is appended to the WAL *before* it is applied;
//! * [`replay_dir`] rebuilds the exact event sequence after a crash,
//!   dropping a torn final record per shard and stopping at the first
//!   sequence gap (an event is durable only if all its predecessors are);
//! * replay-to-offset (`replay_dir(dir, Some(seq))`) supports partial
//!   recovery and point-in-time reconstruction.
//!
//! Because event application is deterministic (ids assigned by arrival
//! order) and `DeltaGraph::compact()` is bit-identical to a from-scratch
//! build, *replaying a full log reproduces the graph exactly* — the
//! property `tests/ingest_replay.rs` pins down.

mod codec;
mod error;
mod wal;

pub use codec::{decode_event, encode_event};
pub use error::IngestError;
pub use wal::{replay_dir, ShardedWal, WalReplay};

// Re-exported so WAL producers/consumers need only this crate.
pub use xfraud_hetgraph::{DeltaGraph, GraphEvent};
