//! Sharded write-ahead log for [`GraphEvent`] streams.
//!
//! Records use the same length-prefixed `(key, value)` framing as
//! [`xfraud_kvstore::LogStore`] (shared via [`xfraud_kvstore::framing`]):
//! the key is the event's global sequence number (8 bytes big-endian), the
//! value is the [`codec`](crate::codec) encoding of the event. Appends are
//! striped over `n_shards` segment files by `seq % n_shards`, so concurrent
//! producers contend on a shard lock rather than one appender lock.
//!
//! Recovery story (see [`WalReplay`]): replay reads every shard, drops a
//! *torn* final record per shard (a crash mid-append), merges records by
//! sequence number, and stops at the first gap — a record is only
//! considered durable once every record before it is too. `open` truncates
//! the dropped bytes so the log is clean before new appends.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use xfraud_hetgraph::GraphEvent;
use xfraud_kvstore::framing;

use crate::codec::{decode_event, encode_event};
use crate::error::IngestError;

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard:04}.log"))
}

/// A sharded, append-only event log on disk.
pub struct ShardedWal {
    dir: PathBuf,
    shards: Vec<Mutex<File>>,
    next_seq: AtomicU64,
}

impl ShardedWal {
    /// Creates a fresh WAL at `dir` (existing segments are truncated).
    pub fn create(dir: &Path, n_shards: usize) -> Result<Self, IngestError> {
        assert!(n_shards > 0, "a WAL needs at least one shard");
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(shard_path(dir, i))?;
            shards.push(Mutex::new(f));
        }
        Ok(ShardedWal {
            dir: dir.to_path_buf(),
            shards,
            next_seq: AtomicU64::new(0),
        })
    }

    /// Reopens the WAL at `dir` after a crash or restart: replays every
    /// durable event, truncates torn tails (and any post-gap stragglers) off
    /// the segment files, and positions the appender at the next sequence
    /// number. Returns the WAL plus the replay to rebuild state from.
    pub fn open(dir: &Path) -> Result<(Self, WalReplay), IngestError> {
        let replay = replay_dir(dir, None)?;
        let scan = scan_dir(dir)?;
        let mut shards = Vec::with_capacity(scan.len());
        for (i, shard) in scan.iter().enumerate() {
            // Keep only records below the durable cutoff; under normal
            // operation per-shard sequence numbers increase, so everything
            // past the first non-durable record is non-durable too.
            let keep = shard
                .records
                .iter()
                .take_while(|r| r.seq < replay.next_seq)
                .map(|r| r.end_offset)
                .last()
                .unwrap_or(0);
            // Append mode: writes land at the (possibly truncated) end, not
            // at the stale cursor position.
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(shard_path(dir, i))?;
            f.set_len(keep)?;
            shards.push(Mutex::new(f));
        }
        let wal = ShardedWal {
            dir: dir.to_path_buf(),
            shards,
            next_seq: AtomicU64::new(replay.next_seq),
        };
        Ok((wal, replay))
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next appended event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// Appends one event; returns its global sequence number.
    pub fn append(&self, event: &GraphEvent) -> Result<u64, IngestError> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let mut payload = Vec::new();
        encode_event(event, &mut payload);
        let mut rec = Vec::new();
        framing::encode_into(&seq.to_be_bytes(), &payload, &mut rec);
        let shard = (seq % self.shards.len() as u64) as usize;
        // Poison recovery is sound here: the guarded state is just an
        // append-positioned `File`, and replay already truncates any torn
        // record a panicking writer may have left behind (rule L1).
        let mut f = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // seek-free: shard files are opened append-positioned and only this
        // lock writes them, so write_all lands at the end.
        f.write_all(&rec)?;
        Ok(seq)
    }

    /// Appends a batch, returning the sequence number of the first event.
    pub fn append_batch(&self, events: &[GraphEvent]) -> Result<u64, IngestError> {
        let first = self.next_seq();
        for e in events {
            self.append(e)?;
        }
        Ok(first)
    }

    /// Forces all shard segments to stable storage.
    pub fn sync(&self) -> Result<(), IngestError> {
        for s in &self.shards {
            // Same poison-recovery argument as `append`: torn records are
            // truncated on replay, so a poisoned shard file is still safe
            // to sync (rule L1).
            s.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sync_data()?;
        }
        Ok(())
    }
}

/// The durable prefix of a WAL, reconstructed by [`replay_dir`].
#[derive(Debug)]
pub struct WalReplay {
    /// Durable events in sequence order (`events[i]` has sequence `i`,
    /// offset by nothing — sequences start at 0).
    pub events: Vec<GraphEvent>,
    /// One past the last durable sequence number (= `events.len() as u64`
    /// for a full replay; smaller when replaying to an offset).
    pub next_seq: u64,
    /// Records dropped because their frame was torn by a crash mid-append.
    pub dropped_torn: usize,
    /// Complete records dropped because an earlier sequence number never
    /// made it to disk (they raced past a lost write).
    pub dropped_after_gap: usize,
}

struct ShardRecord {
    seq: u64,
    event: GraphEvent,
    /// Byte offset just past this record in its segment file.
    end_offset: u64,
}

struct ShardScan {
    records: Vec<ShardRecord>,
    torn: bool,
}

fn scan_dir(dir: &Path) -> Result<Vec<ShardScan>, IngestError> {
    let mut scans = Vec::new();
    loop {
        let path = shard_path(dir, scans.len());
        if !path.exists() {
            break;
        }
        let buf = std::fs::read(&path)?;
        let mut records = Vec::new();
        let mut it = framing::FrameIter::new(&buf);
        while let Some((key, value)) = it.next() {
            let seq_bytes: [u8; 8] = key
                .try_into()
                .map_err(|_| IngestError::corrupt("wal key is not 8 bytes"))?;
            records.push(ShardRecord {
                seq: u64::from_be_bytes(seq_bytes),
                event: decode_event(value)?,
                end_offset: it.scanned(),
            });
        }
        scans.push(ShardScan {
            records,
            torn: !it.clean_end(),
        });
    }
    if scans.is_empty() {
        return Err(IngestError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no wal segments under {}", dir.display()),
        )));
    }
    Ok(scans)
}

/// Replays the WAL at `dir` up to (excluding) sequence `limit` — the
/// replay-to-offset entry point. `limit: None` replays every durable event.
pub fn replay_dir(dir: &Path, limit: Option<u64>) -> Result<WalReplay, IngestError> {
    let scans = scan_dir(dir)?;
    let dropped_torn = scans.iter().filter(|s| s.torn).count();
    let mut merged: Vec<(u64, GraphEvent)> = scans
        .into_iter()
        .flat_map(|s| s.records.into_iter().map(|r| (r.seq, r.event)))
        .collect();
    merged.sort_by_key(|&(seq, _)| seq);

    let cap = limit.unwrap_or(u64::MAX);
    let mut events = Vec::new();
    let mut dropped_after_gap = 0;
    for (seq, event) in merged {
        if seq >= cap {
            continue; // beyond the requested offset — intentionally unread
        }
        if seq == events.len() as u64 {
            events.push(event);
        } else if seq < events.len() as u64 {
            return Err(IngestError::corrupt(format!("duplicate sequence {seq}")));
        } else {
            // Gap: `events.len()..seq` never hit disk; this record (and by
            // induction every later one) is not durable.
            dropped_after_gap += 1;
        }
    }
    let next_seq = events.len() as u64;
    Ok(WalReplay {
        events,
        next_seq,
        dropped_torn,
        dropped_after_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_hetgraph::NodeType;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xfraud-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn sample_events(n: usize) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| match i % 4 {
                0 => GraphEvent::AddTxn {
                    features: vec![i as f32, 0.5],
                    label: Some(i % 8 == 0),
                },
                1 => GraphEvent::AddEntity { ty: NodeType::Pmt },
                2 => GraphEvent::Link { a: i - 2, b: i - 1 },
                _ => GraphEvent::Label {
                    node: i - 3,
                    label: Some(true),
                },
            })
            .collect()
    }

    #[test]
    fn append_replay_roundtrip_across_shards() {
        let dir = temp_dir("roundtrip");
        let wal = ShardedWal::create(&dir, 3).unwrap();
        let events = sample_events(20);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(wal.append(e).unwrap(), i as u64);
        }
        wal.sync().unwrap();
        let replay = replay_dir(&dir, None).unwrap();
        assert_eq!(replay.events, events);
        assert_eq!(replay.next_seq, 20);
        assert_eq!(replay.dropped_torn, 0);
        assert_eq!(replay.dropped_after_gap, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn replay_to_offset_stops_early() {
        let dir = temp_dir("offset");
        let wal = ShardedWal::create(&dir, 2).unwrap();
        let events = sample_events(12);
        wal.append_batch(&events).unwrap();
        let replay = replay_dir(&dir, Some(7)).unwrap();
        assert_eq!(replay.events, events[..7]);
        assert_eq!(replay.next_seq, 7);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_open_truncates_it() {
        let dir = temp_dir("torn");
        let wal = ShardedWal::create(&dir, 2).unwrap();
        let events = sample_events(9);
        wal.append_batch(&events).unwrap();
        drop(wal);
        // Tear the tail of the shard holding the final record (seq 8 → shard
        // 0): chop a few bytes off, simulating a crash mid-append.
        let victim = shard_path(&dir, 0);
        let len = std::fs::metadata(&victim).unwrap().len();
        let f = OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (wal, replay) = ShardedWal::open(&dir).unwrap();
        assert_eq!(replay.events, events[..8]);
        assert_eq!(replay.dropped_torn, 1);
        assert_eq!(wal.next_seq(), 8);
        // Appending after recovery reuses the lost sequence number and the
        // log replays clean again.
        wal.append(&events[8]).unwrap();
        let replay = replay_dir(&dir, None).unwrap();
        assert_eq!(replay.events, events);
        assert_eq!(replay.dropped_torn, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn records_after_a_lost_write_are_not_durable() {
        let dir = temp_dir("gap");
        let wal = ShardedWal::create(&dir, 2).unwrap();
        let events = sample_events(8);
        wal.append_batch(&events).unwrap();
        drop(wal);
        // Lose the *entire* shard 1 (seqs 1,3,5,7): only seq 0 remains
        // durable — later even seqs exist but sit past the gap at seq 1.
        let f = OpenOptions::new()
            .write(true)
            .open(shard_path(&dir, 1))
            .unwrap();
        f.set_len(0).unwrap();
        drop(f);
        let replay = replay_dir(&dir, None).unwrap();
        assert_eq!(replay.events, events[..1]);
        assert_eq!(replay.dropped_after_gap, 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn open_on_missing_dir_is_an_io_error() {
        let dir = temp_dir("missing");
        assert!(matches!(ShardedWal::open(&dir), Err(IngestError::Io(_))));
    }

    #[test]
    fn concurrent_appends_stay_replayable() {
        let dir = temp_dir("concurrent");
        let wal = std::sync::Arc::new(ShardedWal::create(&dir, 4).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let wal = std::sync::Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..50 {
                        wal.append(&GraphEvent::Link {
                            a: t as usize,
                            b: i,
                        })
                        .unwrap();
                    }
                });
            }
        });
        let replay = replay_dir(&dir, None).unwrap();
        assert_eq!(replay.events.len(), 200);
        assert_eq!(replay.dropped_after_gap, 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
