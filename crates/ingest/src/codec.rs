//! Binary codec for [`GraphEvent`] — the value payload of WAL records.
//!
//! The encoding is versionless and little-endian: one tag byte, then the
//! variant's fields. Labels (`Option<bool>`) take one byte (`0` = none,
//! `1` = legit, `2` = fraud). Feature rows are length-prefixed `f32`s, so
//! a decoder never needs out-of-band knowledge of the graph's feature
//! width — width mismatches surface when the event is *applied*, with a
//! proper [`xfraud_hetgraph::GraphError::FeatureDimMismatch`].

use xfraud_hetgraph::{GraphEvent, NodeType, ALL_NODE_TYPES};

use crate::error::IngestError;

const TAG_ADD_TXN: u8 = 0;
const TAG_ADD_ENTITY: u8 = 1;
const TAG_LINK: u8 = 2;
const TAG_LABEL: u8 = 3;

fn label_byte(label: Option<bool>) -> u8 {
    match label {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

fn label_from_byte(b: u8) -> Result<Option<bool>, IngestError> {
    match b {
        0 => Ok(None),
        1 => Ok(Some(false)),
        2 => Ok(Some(true)),
        _ => Err(IngestError::corrupt(format!("bad label byte {b}"))),
    }
}

/// Appends the encoding of `event` to `out`.
pub fn encode_event(event: &GraphEvent, out: &mut Vec<u8>) {
    match event {
        GraphEvent::AddTxn { features, label } => {
            out.push(TAG_ADD_TXN);
            out.extend_from_slice(&(features.len() as u32).to_le_bytes());
            for &f in features {
                out.extend_from_slice(&f.to_le_bytes());
            }
            out.push(label_byte(*label));
        }
        GraphEvent::AddEntity { ty } => {
            out.push(TAG_ADD_ENTITY);
            out.push(ty.index() as u8);
        }
        GraphEvent::Link { a, b } => {
            out.push(TAG_LINK);
            out.extend_from_slice(&(*a as u64).to_le_bytes());
            out.extend_from_slice(&(*b as u64).to_le_bytes());
        }
        GraphEvent::Label { node, label } => {
            out.push(TAG_LABEL);
            out.extend_from_slice(&(*node as u64).to_le_bytes());
            out.push(label_byte(*label));
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IngestError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| IngestError::corrupt("event payload ends early"))?;
        self.pos += n;
        Ok(slice)
    }

    /// `take(N)` as a fixed array; the length mismatch arm is
    /// unreachable when `take` succeeds, but a corrupt-frame error keeps
    /// the decoder panic-free on any input.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], IngestError> {
        <[u8; N]>::try_from(self.take(N)?)
            .map_err(|_| IngestError::corrupt("event payload ends early"))
    }

    fn u8(&mut self) -> Result<u8, IngestError> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, IngestError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, IngestError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f32(&mut self) -> Result<f32, IngestError> {
        Ok(f32::from_le_bytes(self.array()?))
    }
}

/// Decodes one event from `buf` (which must hold exactly one encoding).
pub fn decode_event(buf: &[u8]) -> Result<GraphEvent, IngestError> {
    let mut r = Reader { buf, pos: 0 };
    let event = match r.u8()? {
        TAG_ADD_TXN => {
            let n = r.u32()? as usize;
            let mut features = Vec::with_capacity(n);
            for _ in 0..n {
                features.push(r.f32()?);
            }
            let label = label_from_byte(r.u8()?)?;
            GraphEvent::AddTxn { features, label }
        }
        TAG_ADD_ENTITY => {
            let i = r.u8()? as usize;
            let ty: NodeType = *ALL_NODE_TYPES
                .get(i)
                .ok_or_else(|| IngestError::corrupt(format!("bad node-type index {i}")))?;
            GraphEvent::AddEntity { ty }
        }
        TAG_LINK => GraphEvent::Link {
            a: r.u64()? as usize,
            b: r.u64()? as usize,
        },
        TAG_LABEL => GraphEvent::Label {
            node: r.u64()? as usize,
            label: label_from_byte(r.u8()?)?,
        },
        tag => return Err(IngestError::corrupt(format!("unknown event tag {tag}"))),
    };
    if r.pos != buf.len() {
        return Err(IngestError::corrupt("trailing bytes after event"));
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_roundtrip() {
        let events = vec![
            GraphEvent::AddTxn {
                features: vec![0.25, -1.5, f32::MIN_POSITIVE],
                label: Some(true),
            },
            GraphEvent::AddTxn {
                features: vec![],
                label: None,
            },
            GraphEvent::AddEntity {
                ty: NodeType::Buyer,
            },
            GraphEvent::Link { a: 0, b: 71 },
            GraphEvent::Label {
                node: 12,
                label: Some(false),
            },
            GraphEvent::Label {
                node: 13,
                label: None,
            },
        ];
        for e in &events {
            let mut buf = Vec::new();
            encode_event(e, &mut buf);
            assert_eq!(&decode_event(&buf).unwrap(), e);
        }
    }

    #[test]
    fn corrupt_payloads_are_errors_not_panics() {
        let mut buf = Vec::new();
        encode_event(
            &GraphEvent::AddTxn {
                features: vec![1.0, 2.0],
                label: Some(true),
            },
            &mut buf,
        );
        assert!(decode_event(&buf[..buf.len() - 1]).is_err(), "short read");
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_event(&long).is_err(), "trailing bytes");
        assert!(decode_event(&[99]).is_err(), "unknown tag");
        assert!(decode_event(&[TAG_ADD_ENTITY, 200]).is_err(), "bad type");
    }

    /// Regression test for the `Reader::{u32,u64,f32}` panic sites
    /// (`try_into().expect(…)`) the P2 reachability report surfaced:
    /// every strict prefix of every variant's encoding must decode to
    /// `Err`, never panic — a torn WAL tail hands the decoder exactly
    /// these prefixes.
    #[test]
    fn every_truncation_of_every_variant_is_an_error() {
        let events = vec![
            GraphEvent::AddTxn {
                features: vec![0.5, -2.0, 3.25],
                label: Some(false),
            },
            GraphEvent::AddEntity { ty: NodeType::Pmt },
            GraphEvent::Link { a: 7, b: 19 },
            GraphEvent::Label {
                node: 3,
                label: Some(true),
            },
        ];
        for e in &events {
            let mut buf = Vec::new();
            encode_event(e, &mut buf);
            for cut in 0..buf.len() {
                assert!(
                    decode_event(&buf[..cut]).is_err(),
                    "prefix of len {cut} of {e:?} must be a decode error"
                );
            }
        }
    }
}
