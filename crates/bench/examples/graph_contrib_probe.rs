//! Probe: feature-only AUC vs graph AUC (how much signal is structural?).
use rand::rngs::StdRng;
use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::*;
use xfraud::metrics::roc_auc;

struct NoEdges(SageSampler);
impl Sampler for NoEdges {
    fn sample(
        &self,
        g: &dyn xfraud::hetgraph::GraphView,
        seeds: &[usize],
        rng: &mut StdRng,
    ) -> SubgraphBatch {
        let mut b = self.0.sample(g, seeds, rng);
        b.edge_src.clear();
        b.edge_dst.clear();
        b.edge_ty.clear();
        b
    }
    fn name(&self) -> &'static str {
        "noedges"
    }
    fn shape_key(&self) -> u64 {
        shape_key_of(self.name(), &[self.0.shape_key()])
    }
}

fn main() {
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    for (label, use_edges) in [("features-only", false), ("with graph", true)] {
        let mut model = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 1));
        let trainer = Trainer::new(TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        });
        let sage = SageSampler::new(2, 8);
        let (scores, labels) = if use_edges {
            trainer.fit(&mut model, g, &sage, &train, &test);
            trainer.evaluate(&model, g, &sage, &test, 9)
        } else {
            let s = NoEdges(sage);
            trainer.fit(&mut model, g, &s, &train, &test);
            trainer.evaluate(&model, g, &s, &test, 9)
        };
        println!("{label}: AUC {:.4}", roc_auc(&scores, &labels));
    }
}
