//! Criterion: streaming ingestion — WAL append throughput, delta-overlay
//! event application, and score-on-arrival latency at several overlay
//! sizes.
//!
//! Three questions, one arm each:
//!
//! * `wal_append_sync` — how fast can the sharded WAL make a burst of
//!   [`GraphEvent`]s durable (fresh log per iteration, fsync at the end)?
//! * `delta_apply` — how fast does [`DeltaGraph`] absorb the same burst
//!   in memory (fresh overlay over a shared immutable base per iteration)?
//! * `score_on_arrival/overlay_N` — what does one cache-cold scoring cost
//!   once the live overlay has grown to N events? The engine runs with
//!   both cache tiers off, so every score pays the full community sample
//!   plus forward pass — the honest per-arrival latency, not a cache hit.
//!   Growth in this number with N is the price of the overlay's hash-map
//!   adjacency versus the base's CSR, and the reason `compact()` exists.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};

use xfraud::datagen::{event_stream, flatten_events, generate_log};
use xfraud::hetgraph::{GraphEvent, NodeId};
use xfraud::ingest::{replay_dir, DeltaGraph, ShardedWal};
use xfraud::serve::ScoringEngine;
use xfraud::{Pipeline, PipelineConfig};

/// Overlay sizes (in applied graph events) at which scoring is probed.
const OVERLAY_SIZES: [usize; 3] = [0, 500, 2000];
const WAL_SHARDS: usize = 4;
const SCORE_POOL: usize = 8;

fn unique_wal_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "xfraud-bench-ingest-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Applies arrivals through the engine until at least `target` events have
/// landed, returning the applied event count and the freshest transaction
/// ids to score (the arrivals a serving deployment would be asked about).
fn grow_overlay(
    engine: &ScoringEngine,
    arrivals: &[xfraud::datagen::TxnArrival],
    target: usize,
) -> (usize, Vec<NodeId>) {
    let mut applied = 0;
    let mut txns = Vec::new();
    for arrival in arrivals {
        if applied >= target {
            break;
        }
        engine
            .apply_events(&arrival.events)
            .expect("stream events apply cleanly");
        applied += arrival.events.len();
        txns.push(arrival.txn_node);
    }
    assert!(
        applied >= target,
        "world too small: {applied} events available, {target} wanted"
    );
    let pool = txns.iter().rev().take(SCORE_POOL).copied().collect();
    (applied, pool)
}

fn bench_ingest(c: &mut Criterion) {
    let cfg = PipelineConfig::builder()
        .epochs(2)
        .build()
        .expect("valid config");
    let pipeline = Pipeline::run(cfg).expect("pipeline trains");
    let base_nodes = pipeline.dataset.graph.n_nodes();

    // A second world from a shifted seed plays the role of tomorrow's
    // traffic arriving on the stream.
    let wcfg = pipeline
        .cfg
        .preset
        .config(pipeline.cfg.data_seed.wrapping_add(101));
    let world = generate_log(&wcfg);
    let arrivals = event_stream(&world, &wcfg, base_nodes);
    let events: Vec<GraphEvent> = flatten_events(&arrivals);
    println!(
        "{} arriving txns ({} graph events) onto a {base_nodes}-node base",
        arrivals.len(),
        events.len()
    );

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);

    // Durability cost: one fresh sharded log per iteration, every event
    // appended, then a single fsync pass over all shards.
    group.bench_function(&format!("wal_append_sync_{}", events.len()), |b| {
        b.iter(|| {
            let dir = unique_wal_dir();
            let wal = ShardedWal::create(&dir, WAL_SHARDS).expect("wal creates");
            for e in &events {
                wal.append(e).expect("append succeeds");
            }
            wal.sync().expect("sync succeeds");
            drop(wal);
            std::fs::remove_dir_all(&dir).expect("cleanup");
        })
    });
    // Sanity outside the timed loop: a full replay round-trips the stream.
    {
        let dir = unique_wal_dir();
        let wal = ShardedWal::create(&dir, WAL_SHARDS).expect("wal creates");
        for e in &events {
            wal.append(e).expect("append succeeds");
        }
        wal.sync().expect("sync succeeds");
        drop(wal);
        let replay = replay_dir(&dir, None).expect("replay succeeds");
        assert_eq!(replay.events, events, "WAL replay must round-trip");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // Pure in-memory absorption: fresh overlay on the shared base.
    let base = std::sync::Arc::new(pipeline.dataset.graph.clone());
    group.bench_function(&format!("delta_apply_{}", events.len()), |b| {
        b.iter(|| {
            let mut delta = DeltaGraph::new(std::sync::Arc::clone(&base));
            for e in &events {
                criterion::black_box(delta.apply(e).expect("event applies"));
            }
            delta
        })
    });

    for target in OVERLAY_SIZES {
        let engine: ScoringEngine = pipeline
            .serving_engine()
            .no_cache()
            .build()
            .expect("engine builds");
        let (applied, pool) = if target == 0 {
            let pool = pipeline
                .test_nodes
                .iter()
                .copied()
                .take(SCORE_POOL)
                .collect();
            (0, pool)
        } else {
            grow_overlay(&engine, &arrivals, target)
        };
        group.bench_function(&format!("score_on_arrival/overlay_{applied}"), |b| {
            b.iter(|| {
                for &t in &pool {
                    criterion::black_box(engine.score(&[t]).expect("scores"));
                }
            })
        });
        let (on, oe) = engine.overlay_stats();
        println!(
            "overlay_{applied}: {SCORE_POOL} scorings per iteration, \
             overlay holds {on} nodes / {oe} directed edges"
        );
    }
    group.finish();
}

/// Short windows: single-core host, per-iteration cost far above timer
/// resolution (same policy as the serving bench).
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(2000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ingest
}
criterion_main!(benches);
