//! Criterion: one full optimisation step (sample → forward → backward →
//! AdamW) per model — the building block of the Table 3 "training time"
//! column.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{
    batch_rng, streams, train_step, BatchEngine, DetectorConfig, GatModel, GemModel, SageSampler,
    Sampler, XFraudDetector,
};
use xfraud::nn::AdamW;

fn bench_train_step(c: &mut Criterion) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().take(128).map(|&(v, _)| v).collect();
    let sampler = SageSampler::new(2, 8);
    let fd = g.feature_dim();

    let mut group = c.benchmark_group("train_step_128_targets");
    group.sample_size(10);
    group.bench_function("xfraud_detector", |b| {
        let mut model = XFraudDetector::new(DetectorConfig::small(fd, 1));
        let mut opt = AdamW::new(2e-3);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let batch = sampler.sample(&g, &seeds, &mut rng);
            std::hint::black_box(train_step(&mut model, &batch, &mut opt, &mut rng))
        })
    });
    group.bench_function("gat", |b| {
        let mut model = GatModel::new(DetectorConfig::small(fd, 1));
        let mut opt = AdamW::new(2e-3);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let batch = sampler.sample(&g, &seeds, &mut rng);
            std::hint::black_box(train_step(&mut model, &batch, &mut opt, &mut rng))
        })
    });
    group.bench_function("gem", |b| {
        let mut model = GemModel::new(DetectorConfig::small(fd, 1));
        let mut opt = AdamW::new(2e-3);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let batch = sampler.sample(&g, &seeds, &mut rng);
            std::hint::black_box(train_step(&mut model, &batch, &mut opt, &mut rng))
        })
    });
    group.finish();
}

/// One overlapped training epoch through the work-queue engine, inline vs
/// 4 sampler threads. Because the engine only parallelises the sampling /
/// feature-assembly half of the step, the headline ≥1.5x gap appears on a
/// multi-core host; on a single-core runner both rows measure the same
/// serial work.
fn bench_engine_epoch(c: &mut Criterion) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().take(128).map(|&(v, _)| v).collect();
    let sampler = SageSampler::new(2, 8);
    let fd = g.feature_dim();
    let chunks: Vec<&[usize]> = seeds.chunks(32).collect();

    let mut group = c.benchmark_group("engine_epoch_128_targets");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let engine = BatchEngine::new(workers);
        group.bench_function(&format!("xfraud_detector_{workers}_workers"), |b| {
            let mut model = XFraudDetector::new(DetectorConfig::small(fd, 1));
            let mut opt = AdamW::new(2e-3);
            b.iter(|| {
                let mut total = 0.0f32;
                engine.sample_ordered(
                    &g,
                    &sampler,
                    &chunks,
                    |i| batch_rng(1, streams::SAMPLE, 0, i as u64),
                    |i, batch| {
                        let mut rng = batch_rng(1, streams::STEP, 0, i as u64);
                        total += train_step(&mut model, &batch, &mut opt, &mut rng);
                    },
                );
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_train_step, bench_engine_epoch
}
criterion_main!(benches);
