//! Criterion: online serving throughput — the acceptance benchmark of the
//! scoring engine.
//!
//! Compares, over the same stream of transaction ids:
//!
//! * `sequential_no_cache` — one caller scoring through the engine with
//!   both cache tiers off: the `Pipeline::score_transaction` contract,
//!   paying a fresh community sample + forward pass per transaction;
//! * `engine_8_callers_warm_cache` — eight concurrent callers hammering a
//!   cache-warm engine (the steady state of a serving deployment, where a
//!   hot transaction is asked about many times between graph updates).
//!
//! The engine is bit-identical to the sequential path in both modes — the
//! serving_equivalence integration test proves it — so this measures pure
//! infrastructure win: micro-batch coalescing + duplicate dedup + the
//! two-tier subgraph/score cache. Expected: well over 2× on one core.

use criterion::{criterion_group, criterion_main, Criterion};

use xfraud::hetgraph::NodeId;
use xfraud::serve::ScoringEngine;
use xfraud::{Pipeline, PipelineConfig};

const CALLERS: usize = 8;
const IDS_PER_CALL: usize = 8;
const CALLS_PER_CALLER: usize = 4;

fn bench_serving(c: &mut Criterion) {
    let cfg = PipelineConfig::builder()
        .epochs(2)
        .build()
        .expect("valid config");
    let pipeline = Pipeline::run(cfg).expect("pipeline trains");
    // A small hot set: scored over and over, like a fraud-review queue
    // re-checking flagged transactions between graph updates.
    let pool: Vec<NodeId> = pipeline.test_nodes.iter().copied().take(32).collect();
    let per_caller: Vec<Vec<Vec<NodeId>>> = (0..CALLERS)
        .map(|caller| {
            (0..CALLS_PER_CALLER)
                .map(|call| {
                    (0..IDS_PER_CALL)
                        .map(|i| pool[(caller * 3 + call * IDS_PER_CALL + i) % pool.len()])
                        .collect()
                })
                .collect()
        })
        .collect();
    let total = CALLERS * CALLS_PER_CALLER * IDS_PER_CALL;

    let cold: ScoringEngine = pipeline
        .serving_engine()
        .no_cache()
        .build()
        .expect("engine");
    let warm: ScoringEngine = pipeline
        .serving_engine()
        .max_batch(CALLERS * 2)
        .build()
        .expect("engine");
    for ids in per_caller.iter().flatten() {
        warm.score(ids).expect("warm-up scores");
    }

    let mut group = c.benchmark_group("serving");
    // The criterion shim reports raw per-iteration time; one iteration of
    // either function scores `total` transactions, so times are directly
    // comparable and the throughput ratio is the inverse time ratio.
    println!("{total} scorings per iteration in both benchmark arms");
    group.sample_size(10);
    group.bench_function("sequential_no_cache", |b| {
        b.iter(|| {
            for ids in per_caller.iter().flatten() {
                for &t in ids {
                    std::hint::black_box(cold.score(&[t]).expect("scores"));
                }
            }
        })
    });
    group.bench_function("engine_8_callers_warm_cache", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for calls in &per_caller {
                    let warm = &warm;
                    scope.spawn(move || {
                        for ids in calls {
                            std::hint::black_box(warm.score(ids).expect("scores"));
                        }
                    });
                }
            })
        })
    });
    group.finish();

    let m = warm.metrics();
    println!("warm engine after benchmarking:\n{m}");
}

/// Short windows: single-core host, per-iteration cost far above timer
/// resolution (same policy as the explainer bench).
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(2000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_serving
}
criterion_main!(benches);
