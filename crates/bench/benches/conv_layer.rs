//! Criterion: forward and forward+backward cost of one heterogeneous
//! convolution layer vs the type-blind GAT layer shape (the "xFraud takes
//! slightly longer than GAT due to its attention on heterogeneous types"
//! observation of Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{DetectorConfig, GatModel, GemModel, XFraudDetector};
use xfraud::gnn::{FullGraphSampler, Masks, Model, Sampler, SubgraphBatch};
use xfraud::nn::Session;

fn fixture() -> SubgraphBatch {
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 3);
    let g = ds.graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().take(64).map(|&(v, _)| v).collect();
    let mut rng = StdRng::seed_from_u64(0);
    // A mid-sized neighbourhood batch.
    xfraud::gnn::SageSampler::new(2, 8).sample(&g, &seeds, &mut rng);
    FullGraphSampler.sample(&g, &seeds, &mut rng)
}

fn bench_models(c: &mut Criterion) {
    let batch = fixture();
    let fd = batch.features.cols();
    let det = XFraudDetector::new(DetectorConfig::small(fd, 1));
    let gat = GatModel::new(DetectorConfig::small(fd, 1));
    let gem = GemModel::new(DetectorConfig::small(fd, 1));
    let mut rng = StdRng::seed_from_u64(1);

    let mut group = c.benchmark_group("forward_full_graph");
    group.sample_size(10);
    group.bench_function("xfraud_detector", |b| {
        b.iter(|| {
            let mut sess = Session::new();
            let v = det.forward(&mut sess, &batch, false, &mut rng, &Masks::none());
            std::hint::black_box(sess.tape.value(v).sum());
        })
    });
    group.bench_function("gat", |b| {
        b.iter(|| {
            let mut sess = Session::new();
            let v = gat.forward(&mut sess, &batch, false, &mut rng, &Masks::none());
            std::hint::black_box(sess.tape.value(v).sum());
        })
    });
    group.bench_function("gem", |b| {
        b.iter(|| {
            let mut sess = Session::new();
            let v = gem.forward(&mut sess, &batch, false, &mut rng, &Masks::none());
            std::hint::black_box(sess.tape.value(v).sum());
        })
    });
    group.finish();
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_models
}
criterion_main!(benches);
