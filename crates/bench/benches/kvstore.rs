//! Criterion: KV-store get/put under the three store implementations —
//! the per-op cost behind the Fig. 12/13 loader-throughput gap.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use xfraud::kvstore::{FeatureStore, KvStore, LogStore, ShardedStore, SingleLockStore};

fn bench_stores(c: &mut Criterion) {
    let dim = 48;
    let n = 5_000usize;
    let stores: Vec<(&str, Arc<dyn KvStore>)> = vec![
        ("single_lock", Arc::new(SingleLockStore::new())),
        ("sharded", Arc::new(ShardedStore::new(64))),
        ("append_log", {
            let mut p = std::env::temp_dir();
            p.push(format!("xfraud-bench-kv-{}.log", std::process::id()));
            Arc::new(LogStore::create(&p, 64).expect("log store"))
        }),
    ];
    for (name, store) in stores {
        let fs = FeatureStore::new(store, dim);
        let row: Vec<f32> = (0..dim).map(|i| i as f32).collect();
        for i in 0..n {
            fs.put_features(i, &row);
        }
        let ids: Vec<usize> = (0..n).collect();
        c.bench_function(&format!("{name}_get_5k_rows_1_thread"), |b| {
            b.iter(|| std::hint::black_box(fs.load_batch(&ids).sum()))
        });
        c.bench_function(&format!("{name}_get_5k_rows_4_threads"), |b| {
            b.iter(|| std::hint::black_box(fs.load_parallel(&ids, 4).2))
        });
    }
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_stores
}
criterion_main!(benches);
