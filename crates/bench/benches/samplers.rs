//! Criterion: HGSampling vs GraphSAGE sampling cost on sparse transaction
//! graphs — the microscopic version of the Fig. 10 ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{batch_rng, streams, BatchEngine, HgSampler, SageSampler, Sampler};

fn bench_samplers(c: &mut Criterion) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().take(64).map(|&(v, _)| v).collect();
    let sage = SageSampler::new(2, 8);
    let hg = HgSampler::new(2, 8);

    let mut group = c.benchmark_group("samplers_64_seeds");
    group.sample_size(20);
    group.bench_function("graphsage", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(sage.sample(&g, &seeds, &mut rng).n_nodes()))
    });
    group.bench_function("hgsampling", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(hg.sample(&g, &seeds, &mut rng).n_nodes()))
    });
    group.finish();
}

/// Work-queue engine throughput: the same ordered sampling pass, inline vs
/// on 4 worker threads. The outputs are bit-identical by construction; on a
/// multi-core host the 4-worker row should approach a 4x speedup (on a
/// single-core CI runner the rows tie — the comparison needs ≥4 cores to
/// show the gap).
fn bench_engine_sampling(c: &mut Criterion) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> = g.labeled_txns().iter().map(|&(v, _)| v).collect();
    let sampler = SageSampler::new(2, 8);
    let chunks: Vec<&[usize]> = seeds.chunks(32).collect();

    let mut group = c.benchmark_group("engine_sample_ordered");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let engine = BatchEngine::new(workers);
        group.bench_function(&format!("{workers}_workers"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                engine.sample_ordered(
                    &g,
                    &sampler,
                    &chunks,
                    |i| batch_rng(1, streams::SAMPLE, 0, i as u64),
                    |_, batch| total += batch.n_nodes(),
                );
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_samplers, bench_engine_sampling
}
criterion_main!(benches);
