//! Criterion: HGSampling vs GraphSAGE sampling cost on sparse transaction
//! graphs — the microscopic version of the Fig. 10 ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{HgSampler, SageSampler, Sampler};

fn bench_samplers(c: &mut Criterion) {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    let seeds: Vec<usize> =
        g.labeled_txns().iter().take(64).map(|&(v, _)| v).collect();
    let sage = SageSampler::new(2, 8);
    let hg = HgSampler::new(2, 8);

    let mut group = c.benchmark_group("samplers_64_seeds");
    group.sample_size(20);
    group.bench_function("graphsage", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(sage.sample(&g, &seeds, &mut rng).n_nodes()))
    });
    group.bench_function("hgsampling", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(hg.sample(&g, &seeds, &mut rng).n_nodes()))
    });
    group.finish();
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_samplers
}
criterion_main!(benches);
