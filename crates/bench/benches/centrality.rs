//! Criterion: centrality measures on a community-sized line graph — the
//! cost side of the task-aware/task-agnostic trade-off (§3.4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::explain::centrality::{
    approx_current_flow_betweenness, betweenness, closeness, communicability_betweenness,
    current_flow_betweenness, edge_betweenness, eigenvector, subgraph, SimpleGraph,
};

/// A community-shaped graph: ~80 edges like the paper's average community.
fn community_like() -> SimpleGraph {
    let mut g = SimpleGraph::new(60);
    // 4 hubs (entities) with spokes (txns) + some cross links.
    for hub in 0..4 {
        for spoke in 0..13 {
            g.add_edge(hub, 4 + hub * 13 + spoke);
        }
    }
    for i in 0..7 {
        g.add_edge(4 + i, 4 + 13 + i); // cross-community ties
    }
    g
}

fn bench_centrality(c: &mut Criterion) {
    let g = community_like();
    let mut group = c.benchmark_group("centrality_60_nodes");
    group.bench_function("degree_baseline", |b| {
        b.iter(|| std::hint::black_box(xfraud::explain::centrality::degree(&g)))
    });
    group.bench_function("betweenness", |b| {
        b.iter(|| std::hint::black_box(betweenness(&g)))
    });
    group.bench_function("edge_betweenness", |b| {
        b.iter(|| std::hint::black_box(edge_betweenness(&g)))
    });
    group.bench_function("closeness", |b| {
        b.iter(|| std::hint::black_box(closeness(&g)))
    });
    group.bench_function("eigenvector", |b| {
        b.iter(|| std::hint::black_box(eigenvector(&g)))
    });
    group.bench_function("subgraph_expm", |b| {
        b.iter(|| std::hint::black_box(subgraph(&g)))
    });
    group.sample_size(10);
    group.bench_function("current_flow_betweenness", |b| {
        b.iter(|| std::hint::black_box(current_flow_betweenness(&g)))
    });
    group.bench_function("approx_cfb_100_pairs", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(approx_current_flow_betweenness(&g, 100, &mut rng)))
    });
    group.bench_function("communicability_betweenness", |b| {
        b.iter(|| std::hint::black_box(communicability_betweenness(&g)))
    });
    group.finish();
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_centrality
}
criterion_main!(benches);
