//! Criterion: GAP kernels over the simulated transaction graph.
//!
//! Each kernel runs serially and on 4 threads over the same `FlatCsr`
//! snapshot of an `EbaySmallSim` graph. Outputs are bit-identical across the
//! rows by construction (fixed chunk geometry + in-order reduction), so the
//! comparison is pure wall-clock: on a multi-core host the 4-thread rows of
//! the O(E)-sweep kernels (PageRank, CC, betweenness) should pull ahead; on
//! a single-core CI runner the rows tie.

use criterion::{criterion_group, criterion_main, Criterion};

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::kernels::{
    betweenness, bfs, connected_components, core_numbers, pagerank, FlatCsr, KernelConfig,
};

fn flat() -> FlatCsr {
    let g = Dataset::generate(DatasetPreset::EbaySmallSim, 3).graph;
    FlatCsr::from_view(&g).expect("graph fits the u32 arena")
}

fn cfg(threads: usize) -> KernelConfig {
    KernelConfig::builder()
        .threads(threads)
        .max_iters(20)
        .build()
        .expect("valid bench config")
}

fn bench_bfs(c: &mut Criterion) {
    let g = flat();
    // Transaction graphs are forests of small communities (the largest
    // component holds ~3% of the nodes), so a single-source BFS is all
    // depth-array init and no traversal. Sweep 64 evenly spread sources per
    // iteration instead, covering components of every size.
    let sources: Vec<usize> = (0..64).map(|i| i * g.n_nodes() / 64).collect();
    let mut group = c.benchmark_group("kernel_bfs_64_sources");
    group.sample_size(20);
    for threads in [1usize, 4] {
        let cfg = cfg(threads);
        group.bench_function(&format!("{threads}_threads"), |b| {
            b.iter(|| {
                for &s in &sources {
                    std::hint::black_box(bfs(&g, s, &cfg)).ok();
                }
            })
        });
    }
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let g = flat();
    let mut group = c.benchmark_group("kernel_pagerank_20_iters");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let cfg = cfg(threads);
        group.bench_function(&format!("{threads}_threads"), |b| {
            b.iter(|| std::hint::black_box(pagerank(&g, &cfg)))
        });
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let g = flat();
    let mut group = c.benchmark_group("kernel_cc");
    group.sample_size(20);
    for threads in [1usize, 4] {
        let cfg = cfg(threads);
        group.bench_function(&format!("{threads}_threads"), |b| {
            b.iter(|| std::hint::black_box(connected_components(&g, &cfg)))
        });
    }
    group.finish();
}

fn bench_kcore(c: &mut Criterion) {
    let g = flat();
    let mut group = c.benchmark_group("kernel_kcore");
    group.sample_size(20);
    group.bench_function("serial_bz_peel", |b| {
        b.iter(|| std::hint::black_box(core_numbers(&g)))
    });
    group.finish();
}

fn bench_betweenness(c: &mut Criterion) {
    let g = flat();
    let mut group = c.benchmark_group("kernel_betweenness");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let cfg = cfg(threads);
        group.bench_function(&format!("{threads}_threads"), |b| {
            b.iter(|| std::hint::black_box(betweenness(&g, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_pagerank,
    bench_components,
    bench_kcore,
    bench_betweenness
);
criterion_main!(benches);
