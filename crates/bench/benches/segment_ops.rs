//! Criterion: the GNN segment primitives (gather / segment softmax /
//! segment sum) at message-passing scale — the inner loops of eq. 1 and 9.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud::tensor::{Tape, Tensor};

fn bench_segment_ops(c: &mut Criterion) {
    let n_nodes = 4_000usize;
    let n_edges = 12_000usize;
    let heads = 4usize;
    let dim = 64usize;
    let mut rng = StdRng::seed_from_u64(1);
    let seg: Rc<Vec<usize>> = Rc::new((0..n_edges).map(|_| rng.gen_range(0..n_nodes)).collect());
    let scores = Tensor::rand_uniform(n_edges, heads, -1.0, 1.0, &mut rng);
    let msgs = Tensor::rand_uniform(n_edges, dim, -1.0, 1.0, &mut rng);
    let nodes = Tensor::rand_uniform(n_nodes, dim, -1.0, 1.0, &mut rng);

    c.bench_function("gather_rows_12k_edges", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let h = t.leaf(nodes.clone(), false);
            let g = t.gather_rows(h, Rc::clone(&seg));
            std::hint::black_box(t.value(g).sum())
        })
    });
    c.bench_function("segment_softmax_12k_edges", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let s = t.leaf(scores.clone(), false);
            let a = t.segment_softmax(s, Rc::clone(&seg), n_nodes);
            std::hint::black_box(t.value(a).sum())
        })
    });
    c.bench_function("segment_sum_12k_edges", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let m = t.leaf(msgs.clone(), false);
            let s = t.segment_sum(m, Rc::clone(&seg), n_nodes);
            std::hint::black_box(t.value(s).sum())
        })
    });
    c.bench_function("segment_softmax_backward", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let s = t.leaf(scores.clone(), true);
            let a = t.segment_softmax(s, Rc::clone(&seg), n_nodes);
            let l = t.sum_all(a);
            t.backward(l);
            std::hint::black_box(t.grad(s).unwrap().sum())
        })
    });
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_segment_ops
}
criterion_main!(benches);
