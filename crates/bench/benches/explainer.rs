//! Criterion: cost of one GNNExplainer run on a community (Appendix D's
//! 100-epoch mask optimisation) and of the hybrid combination step.

use criterion::{criterion_group, criterion_main, Criterion};

use xfraud::explain::centrality::Measure;
use xfraud::explain::{ExplainerConfig, GnnExplainer, HybridExplainer, HybridFit};
use xfraud::{Pipeline, PipelineConfig};

fn bench_explainer(c: &mut Criterion) {
    let cfg = PipelineConfig::builder()
        .epochs(3)
        .build()
        .expect("valid config");
    let pipeline = Pipeline::run(cfg).expect("pipeline trains");
    let communities = pipeline
        .sample_communities(3, 10, 200, 1)
        .expect("sampling succeeds");
    let community = &communities[0];

    let mut group = c.benchmark_group("explainer");
    group.sample_size(10);
    group.bench_function("gnnexplainer_30_epochs", |b| {
        let explainer = GnnExplainer::new(
            &pipeline.detector,
            ExplainerConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        b.iter(|| std::hint::black_box(explainer.explain_community(community).1.len()))
    });
    group.bench_function("edge_betweenness_community", |b| {
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        b.iter(|| {
            std::hint::black_box(xfraud::explain::centrality::community_edge_weights(
                &community.graph,
                Measure::EdgeBetweenness,
                &mut rng,
            ))
        })
    });
    group.bench_function("hybrid_combine", |b| {
        let hybrid = HybridExplainer {
            a: 0.6,
            b: 0.4,
            fit: HybridFit::Grid,
        };
        let w: Vec<f64> = (0..200).map(|i| i as f64).collect();
        b.iter(|| std::hint::black_box(hybrid.combine(&w, &w)))
    });
    group.finish();
}

/// Short measurement windows: the suite runs on a single core and the
/// per-iteration costs here are far above timer resolution.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_explainer
}
criterion_main!(benches);
