//! Shared scaffolding for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Every binary regenerates one of the paper's tables or figures on the
//! simulated datasets and prints the same rows/series the paper reports.
//! `DESIGN.md` carries the experiment index; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.
//!
//! All binaries accept a scale argument (`small` | `large` | `xlarge`,
//! default `small`) either as `argv[1]` or via `XFRAUD_SCALE`, so the whole
//! suite runs in minutes by default and can be re-run at larger scales.

use xfraud::datagen::DatasetPreset;
use xfraud::gnn::TrainConfig;
use xfraud::{Pipeline, PipelineConfig};

/// Experiment scale, mapped onto the dataset presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Large,
    Xlarge,
}

impl Scale {
    pub fn preset(self) -> DatasetPreset {
        match self {
            Scale::Small => DatasetPreset::EbaySmallSim,
            Scale::Large => DatasetPreset::EbayLargeSim,
            Scale::Xlarge => DatasetPreset::EbayXlargeSim,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Large => "large",
            Scale::Xlarge => "xlarge",
        }
    }

    /// Epoch budget per scale (keeps default runs snappy).
    pub fn epochs(self) -> usize {
        match self {
            Scale::Small => 8,
            Scale::Large => 6,
            Scale::Xlarge => 4,
        }
    }
}

/// Parses the scale from `argv[1]` or `XFRAUD_SCALE` (default: small).
pub fn scale_from_args() -> Scale {
    let arg = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("XFRAUD_SCALE").ok())
        .unwrap_or_default();
    match arg.to_lowercase().as_str() {
        "large" => Scale::Large,
        "xlarge" => Scale::Xlarge,
        _ => Scale::Small,
    }
}

/// The paper runs every configuration on two seeds, "A" and "B".
pub const SEEDS: [(char, u64); 2] = [('A', 1), ('B', 2)];

/// A trained pipeline at the given scale/seed — the common setup step.
pub fn trained_pipeline(scale: Scale, model_seed: u64) -> Pipeline {
    let cfg = PipelineConfig::builder()
        .preset(scale.preset())
        .data_seed(7)
        .model_seed(model_seed)
        .train(TrainConfig {
            epochs: scale.epochs(),
            seed: model_seed,
            ..TrainConfig::default()
        })
        .build()
        .expect("experiment config is in range");
    Pipeline::run(cfg).expect("experiment pipeline trains")
}

/// Builds the §5.1 community study on a freshly trained pipeline — the
/// shared setup of every explainer experiment (Tables 1, 4, 8–12, Fig. 7).
pub fn trained_study(scale: Scale) -> (Pipeline, xfraud::study::CommunityStudy) {
    let pipeline = trained_pipeline(scale, 1);
    let study =
        xfraud::study::CommunityStudy::build(&pipeline, xfraud::study::StudyConfig::default());
    (pipeline, study)
}

/// The paper's hit-rate ranks.
pub const TOPKS: [usize; 5] = [5, 10, 15, 20, 25];

/// Resident-set size from `/proc/self/status`, in MiB (0.0 where absent) —
/// the bounded-memory evidence the out-of-core experiments report.
pub fn rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Prints a horizontal rule + section title (uniform experiment output).
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Formats a hit-rate row.
pub fn fmt_row(label: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("{label:<42} {}", cells.join("  "))
}
