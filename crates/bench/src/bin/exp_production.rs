//! Appendix H.4: production-scenario analysis — precision measured on the
//! down-sampled label set, back-mapped to the pre-sampling fraud rates.
//!
//! The paper's chain: raw stream 0.016% fraud → rule filter → 0.043% →
//! sample all frauds + ~1% benign → 4.33%. A precision of 0.98 on the
//! sampled set maps to ≈0.32 at 0.043% (1-in-3 investigations is real
//! fraud, at recall 0.1); 0.95 maps to ≈0.16 (1-in-6, recall 0.2).

use xfraud::gnn::{SageSampler, TrainConfig, Trainer};
use xfraud::metrics::{confusion_at, precision_at_base_rate};
use xfraud_bench::{scale_from_args, section, trained_pipeline};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix H.4 — production precision back-mapping ({}-sim)",
        scale.name()
    ));

    // Paper's published mapping, reproduced analytically first.
    println!("analytic mapping at the paper's rates (4.33% sampled → 0.043% filtered):");
    for &(p, r) in &[(0.9822, 0.1091), (0.9539, 0.2063), (0.9217, 0.2930)] {
        let mapped = precision_at_base_rate(p, 0.0433, 0.00043);
        println!(
            "  sampled precision {p:.4} (recall {r:.3}) → filtered-stream precision {mapped:.3} (1 real fraud per {:.1} investigations)",
            1.0 / mapped
        );
    }

    // Now the measured equivalent on the simulated data.
    let pipeline = trained_pipeline(scale, 1);
    let trainer = Trainer::new(TrainConfig::default());
    let sampler = SageSampler::new(2, 8);
    let (scores, labels) = trainer.evaluate(
        &pipeline.detector,
        &pipeline.dataset.graph,
        &sampler,
        &pipeline.test_nodes,
        5,
    );
    let sampled_rate = labels.iter().filter(|&&y| y).count() as f64 / labels.len() as f64;
    println!(
        "\nmeasured on {}-sim (sampled fraud rate {:.2}%):",
        scale.name(),
        100.0 * sampled_rate
    );
    println!(
        "{:>9} {:>10} {:>8} {:>22} {:>16}",
        "threshold", "precision", "recall", "precision@0.043%", "investigations/TP"
    );
    for t in [0.9f32, 0.95, 0.97, 0.98, 0.983] {
        let c = confusion_at(&scores, &labels, t);
        if c.tp + c.fp == 0 {
            println!("{t:>9} {:>10} {:>8} {:>22} {:>16}", "-", "-", "-", "-");
            continue;
        }
        let p = c.precision();
        let mapped = precision_at_base_rate(p, sampled_rate, 0.00043);
        println!(
            "{t:>9} {:>10.4} {:>8.4} {:>22.4} {:>16.1}",
            p,
            c.recall(),
            mapped,
            if mapped > 0.0 {
                1.0 / mapped
            } else {
                f64::INFINITY
            }
        );
    }
    println!(
        "\npaper: '0.98 precision on (3) corresponds to 0.32 precision on (2), with 0.1 recall'."
    );
}
