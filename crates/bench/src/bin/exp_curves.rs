//! Figure 8 (precision-recall curves), Figure 9 (ROC, FPR < 0.1) and
//! Figure 15 (ROC, full range): the series for GAT, GEM and detector+,
//! seeds A and B, single-machine training at the selected scale.
//!
//! Output is plain `x y` series per curve, ready for gnuplot/matplotlib.

use xfraud::datagen::Dataset;
use xfraud::gnn::{
    train_test_split, DetectorConfig, GatModel, GemModel, Model, SageSampler, TrainConfig, Trainer,
    XFraudDetector,
};
use xfraud::metrics::{pr_curve, roc_auc, roc_curve};
use xfraud_bench::{scale_from_args, section, SEEDS};

fn curves_for<M: Model + Sync>(
    name: &str,
    mut model: M,
    g: &xfraud::hetgraph::HetGraph,
    train: &[usize],
    test: &[usize],
    epochs: usize,
    seed: u64,
) {
    let sampler = SageSampler::new(2, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs,
        seed,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, g, &sampler, train, test);
    let (scores, labels) = trainer.evaluate(&model, g, &sampler, test, seed ^ 0xfe);
    println!("\n# {name} — AUC {:.4}", roc_auc(&scores, &labels));

    println!("# PR curve (recall precision) — Fig. 8");
    let pr = pr_curve(&scores, &labels);
    for p in pr.iter().step_by((pr.len() / 40).max(1)) {
        println!("pr {name} {:.4} {:.4}", p.x, p.y);
    }

    let roc = roc_curve(&scores, &labels);
    println!("# ROC curve FPR<0.1 (fpr tpr) — Fig. 9");
    for p in roc.iter().filter(|p| p.x < 0.1) {
        println!("roc01 {name} {:.4} {:.4}", p.x, p.y);
    }
    println!("# ROC curve full (fpr tpr) — Fig. 15");
    for p in roc.iter().step_by((roc.len() / 40).max(1)) {
        println!("roc {name} {:.4} {:.4}", p.x, p.y);
    }
}

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Figures 8 / 9 / 15 — PR and ROC curves ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    let fd = g.feature_dim();
    for (s, seed) in SEEDS {
        println!("\n## seed {s}");
        curves_for(
            &format!("GAT-{s}"),
            GatModel::new(DetectorConfig::small(fd, seed)),
            g,
            &train,
            &test,
            scale.epochs(),
            seed,
        );
        curves_for(
            &format!("GEM-{s}"),
            GemModel::new(DetectorConfig::small(fd, seed)),
            g,
            &train,
            &test,
            scale.epochs(),
            seed,
        );
        curves_for(
            &format!("xFraud-{s}"),
            XFraudDetector::new(DetectorConfig::small(fd, seed)),
            g,
            &train,
            &test,
            scale.epochs(),
            seed,
        );
    }
    println!("\npaper shape: xFraud's PR curve dominates GAT/GEM; its ROC leads at small FPR.");
}
