//! Appendix E: annotation quality — the mean pairwise inter-annotator
//! agreement of the simulated experts vs random annotators.
//!
//! Published values: human IAA 0.532 on average (best pair 0.773, worst
//! 0.314); random annotators −0.006.

use xfraud::explain::annotate::{
    cohen_kappa, mean_pairwise_iaa, random_annotations, AnnotationConfig,
};
use xfraud_bench::{scale_from_args, section, trained_study};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix E — inter-annotator agreement ({}-sim)",
        scale.name()
    ));
    let (_pipeline, study) = trained_study(scale);

    // Pool annotations over all communities per annotator.
    let n_annotators = study.cfg.annotation.n_annotators;
    let mut pooled: Vec<Vec<u8>> = vec![Vec::new(); n_annotators];
    let mut n_nodes = 0usize;
    for sc in &study.communities {
        n_nodes += sc.community.n_nodes();
        for (a, ann) in sc.annotations.iter().enumerate() {
            pooled[a].extend_from_slice(ann);
        }
    }
    println!(
        "{} communities, {} annotated nodes, {} simulated annotators\n",
        study.communities.len(),
        n_nodes,
        n_annotators
    );

    let iaa = mean_pairwise_iaa(&pooled);
    let mut best = f64::NEG_INFINITY;
    let mut worst = f64::INFINITY;
    for i in 0..n_annotators {
        for j in i + 1..n_annotators {
            let k = cohen_kappa(&pooled[i], &pooled[j]);
            println!("annotators {i} vs {j}: κ = {k:.3}");
            best = best.max(k);
            worst = worst.min(k);
        }
    }
    println!("\nmean pairwise IAA = {iaa:.3}  (paper: 0.532; best 0.773, worst 0.314)");
    println!("best pair = {best:.3}, worst pair = {worst:.3}");

    // Random annotators, 10 repetitions.
    let mut total = 0.0;
    for rep in 0..10 {
        let cfg = AnnotationConfig {
            seed: 1000 + rep,
            ..study.cfg.annotation.clone()
        };
        total += mean_pairwise_iaa(&random_annotations(n_nodes, &cfg));
    }
    println!(
        "random-annotator IAA (10 reps) = {:.3}  (paper: -0.006)",
        total / 10.0
    );
}
