//! Appendix G.3 ablation: size-only worker grouping (footnote 3) vs the
//! fraud-ratio-aware grouping the paper proposes as future work ("enforce a
//! graph partition constraint of benign/fraudulent-ratio").
//!
//! Reports the per-group fraud spread under both strategies and the test
//! AUC after DDP training with each.

use xfraud::datagen::Dataset;
use xfraud::dist::{
    group_fraud_counts, group_partitions, group_partitions_ratio_aware, pic_partition, DdpConfig,
    DdpTrainer,
};
use xfraud::gnn::{train_test_split, DetectorConfig, SageSampler, XFraudDetector};
use xfraud_bench::{scale_from_args, section, SEEDS};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix G.3 — fraud-ratio-aware partitioning ablation ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    let fraud: Vec<bool> = (0..g.n_nodes()).map(|v| g.label(v) == Some(true)).collect();

    // Structural comparison of the groupings.
    let parts = pic_partition(g, 128, 0);
    for (name, groups) in [
        ("size-only (footnote 3)", group_partitions(&parts, 8)),
        (
            "ratio-aware (App. G.3)",
            group_partitions_ratio_aware(&parts, 8, &fraud),
        ),
    ] {
        let counts = group_fraud_counts(&parts, &groups, &fraud);
        println!(
            "{name:<24} fraud per group {counts:?}  spread {}",
            counts.iter().max().unwrap() - counts.iter().min().unwrap()
        );
    }

    // Training comparison, both seeds.
    let fd = g.feature_dim();
    let sampler = SageSampler::new(2, 8);
    println!();
    for ratio_aware in [false, true] {
        for (s, seed) in SEEDS {
            let cfg = DdpConfig {
                n_workers: 8,
                n_partitions: 128,
                epochs: scale.epochs(),
                seed,
                ratio_aware,
                ..Default::default()
            };
            let mut trainer = DdpTrainer::new(
                g,
                &train,
                || XFraudDetector::new(DetectorConfig::small(fd, seed)),
                cfg,
            );
            let hist = trainer.fit(g, &test, &sampler);
            println!(
                "{} seed {s}: worker train counts {:?} → final AUC {:.4}",
                if ratio_aware {
                    "ratio-aware"
                } else {
                    "size-only  "
                },
                trainer.worker_train_counts(),
                hist.last().unwrap().val_auc
            );
        }
    }
    println!("\npaper hypothesis: balancing the benign/fraud ratio across partitions should");
    println!("reduce the frequency bias that drives the Appendix-G misclassifications.");
}
