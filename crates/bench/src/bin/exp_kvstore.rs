//! Figures 12/13 + Appendix C: KV-store loaders — the single-threaded-store
//! bottleneck vs the multi-reader store.
//!
//! Published shape: the multi-threaded KV store turned a 45 min/epoch data
//! loading stage into ~1 min/epoch on eBay-large. We run two workloads:
//!
//! * **read-only loaders** (1/2/4/8 threads) — throughput in rows/s;
//! * **mixed** — loaders racing a continuous writer (the paper's incremental
//!   training scenario), where we also report *contended lock
//!   acquisitions*: the direct serialisation signal. On a single-core host
//!   wall-clock parallel speedups are not observable, but the single-lock
//!   store's contention count dwarfs the sharded store's regardless.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use xfraud::diskstore::{BlockStore, DiskStore, DiskStoreOptions};
use xfraud::kvstore::{FeatureStore, KvStore, LogStore, ShardedStore, SingleLockStore};
use xfraud_bench::section;

fn bench_store(store: Arc<dyn KvStore>, dim: usize, n_nodes: usize, reps: usize) {
    let fs = FeatureStore::new(Arc::clone(&store), dim);
    let row: Vec<f32> = (0..dim).map(|i| i as f32).collect();
    for i in 0..n_nodes {
        fs.put_features(i, &row);
    }
    println!("\n{} store:", fs.store_name());

    // Read-only loaders. Each configuration is run three times and the
    // best is kept: one-off allocator/page-fault stalls on the first big
    // gather otherwise masquerade as scaling effects.
    let ids: Vec<usize> = (0..n_nodes).cycle().take(n_nodes * reps).collect();
    let warmup: Vec<usize> = (0..n_nodes).collect();
    let _ = fs.load_batch(&warmup);
    let mut base = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut best: Option<(usize, f64, f64)> = None;
        for _ in 0..3 {
            let (rows, secs, tput) = fs.load_parallel(&ids, threads);
            if best.is_none_or(|(_, s, _)| secs < s) {
                best = Some((rows, secs, tput));
            }
        }
        let (rows, secs, tput) = best.expect("ran at least once");
        if threads == 1 {
            base = tput;
        }
        println!(
            "  read-only  {threads} loader(s): {rows} rows in {secs:.3}s = {tput:.0} rows/s ({:.2}x)",
            tput / base.max(1.0)
        );
    }

    // Mixed: 4 loaders + 1 writer hammering puts until the loaders finish.
    let before = store.contended_ops();
    let stop = AtomicBool::new(false);
    let writer_store = Arc::clone(&store);
    let writer_row = row.clone();
    crossbeam::scope(|scope| {
        scope.spawn(|_| {
            let wfs = FeatureStore::new(writer_store, dim);
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                wfs.put_features(i % n_nodes, &writer_row);
                i += 1;
            }
        });
        let (_, secs, tput) = fs.load_parallel(&ids, 4);
        stop.store(true, Ordering::Relaxed);
        println!(
            "  mixed      4 loaders + writer: {secs:.3}s = {tput:.0} rows/s, {} contended acquisitions",
            store.contended_ops() - before
        );
    })
    .expect("scope");
}

fn main() {
    section("Figures 12/13 — single-threaded vs multi-threaded KV-store loaders");
    let dim = 480; // the paper's eBay-large feature width
    let n_nodes = 10_000;
    let reps = 6;
    println!("{n_nodes} nodes x {dim} features, {reps} read passes");

    bench_store(Arc::new(SingleLockStore::new()), dim, n_nodes, reps);
    bench_store(Arc::new(ShardedStore::new(64)), dim, n_nodes, reps);

    let mut log_path = std::env::temp_dir();
    log_path.push(format!("xfraud-exp-kv-{}.log", std::process::id()));
    bench_store(
        Arc::new(LogStore::create(&log_path, 64).expect("log store")),
        dim,
        n_nodes,
        reps,
    );
    let _ = std::fs::remove_file(log_path);

    // The out-of-core store: real files, real mmap — the LMDB side of the
    // paper's comparison on disk instead of as an in-RAM profile. The
    // feature rows overflow the memtable budget many times over, so most
    // reads are zero-copy gets from mapped segment pages, with the newest
    // tail still in the memtable — the store's steady state.
    let disk_dir = std::env::temp_dir().join(format!("xfraud-exp-kv-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let disk =
        Arc::new(DiskStore::open(&disk_dir, DiskStoreOptions::default()).expect("diskstore"));
    bench_store(Arc::clone(&disk) as Arc<dyn KvStore>, dim, n_nodes, reps);
    let st = disk.storage_stats();
    println!(
        "  (on disk: {} segments, {} segment bytes, reads via {})",
        st.n_segments,
        st.segment_bytes,
        if st.mmap_active {
            "mmap"
        } else {
            "buffered files"
        }
    );
    let _ = std::fs::remove_dir_all(&disk_dir);

    println!("\npaper: LevelDB-style single-threaded loading was the epoch bottleneck");
    println!("(45 min/epoch) until replaced by LMDB-style multi-reader loading (~1 min).");
}
