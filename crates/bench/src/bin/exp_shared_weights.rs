//! §3.2.1's claimed-but-untabulated ablation: "We do not allow
//! target-specific aggregation on different node types ... We see a better
//! performance in our detector when shared weights among different types of
//! nodes are used."
//!
//! Trains the detector twice — shared K/Q/V projections (the paper's
//! xFraud) vs per-node-type projections (HGT's) — on identical data, seeds
//! and schedules, and compares parameter count, epoch time and test AUC.

use xfraud::datagen::Dataset;
use xfraud::gnn::{
    train_test_split, DetectorConfig, Model, SageSampler, TrainConfig, Trainer, XFraudDetector,
};
use xfraud_bench::{scale_from_args, section, SEEDS};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "§3.2.1 ablation — shared vs per-type K/Q/V projections ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    let fd = g.feature_dim();
    let sampler = SageSampler::new(2, 8);

    println!(
        "{:<10} {:>4} {:>10} {:>10} {:>9}",
        "variant", "seed", "params", "s/epoch", "AUC"
    );
    for per_type in [false, true] {
        for (s, seed) in SEEDS {
            let cfg = DetectorConfig {
                per_type_projections: per_type,
                ..DetectorConfig::small(fd, seed)
            };
            let mut model = XFraudDetector::new(cfg);
            let n_params = model.store().n_scalars();
            let trainer = Trainer::new(TrainConfig {
                epochs: scale.epochs(),
                seed,
                ..TrainConfig::default()
            });
            let hist = trainer.fit(&mut model, g, &sampler, &train, &test);
            let s_per_epoch = hist.iter().map(|e| e.secs).sum::<f64>() / hist.len().max(1) as f64;
            println!(
                "{:<10} {:>4} {:>10} {:>10.2} {:>9.4}",
                if per_type { "per-type" } else { "shared" },
                s,
                n_params,
                s_per_epoch,
                hist.last().unwrap().val_auc
            );
        }
    }
    println!("\npaper: shared weights perform better AND 'reduce the cost in computing");
    println!("different weights for various node types' — both columns should favour shared.");
}
