//! Table 3 + Table 7: end-to-end distributed comparison of GAT, GEM and
//! xFraud detector+ on the xlarge-sim dataset — AUC / Accuracy / AP,
//! training time per epoch, inference time per 640-target batch, at 8 and
//! 16 workers, seeds A and B.
//!
//! The paper's published shape to reproduce: detector+ wins AUC/AP at 8
//! machines, GEM posts the fastest inference, 16 machines train faster per
//! epoch but lose AUC (restrained neighbour fields).

use xfraud::datagen::Dataset;
use xfraud::dist::{DdpConfig, DdpTrainer};
use xfraud::gnn::{
    train_test_split, DetectorConfig, GatModel, GemModel, Model, SageSampler, TrainConfig, Trainer,
    XFraudDetector,
};
use xfraud::hetgraph::{HetGraph, NodeId};
use xfraud::metrics::{accuracy, average_precision, roc_auc};
use xfraud_bench::{scale_from_args, section, Scale, SEEDS};

struct Row {
    model: &'static str,
    workers: usize,
    seed: char,
    auc: f64,
    ap: f64,
    acc: f64,
    train_s_per_epoch: f64,
    infer_s_per_batch: f64,
    infer_std: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_model<M: Model + Send + Sync>(
    name: &'static str,
    make: impl Fn() -> M,
    g: &HetGraph,
    train: &[NodeId],
    test: &[NodeId],
    workers: usize,
    seed: (char, u64),
    epochs: usize,
) -> Row {
    let sampler = SageSampler::new(2, 8);
    let cfg = DdpConfig {
        n_workers: workers,
        n_partitions: 128,
        epochs,
        seed: seed.1,
        ..DdpConfig::default()
    };
    let mut trainer = DdpTrainer::new(g, train, &make, cfg);
    let hist = trainer.fit(g, test, &sampler);
    let train_s_per_epoch = hist.iter().map(|e| e.secs).sum::<f64>() / hist.len().max(1) as f64;

    // Final test metrics with the lead replica.
    let eval = Trainer::new(TrainConfig::default());
    let (scores, labels) = eval.evaluate(trainer.lead_model(), g, &sampler, test, seed.1 ^ 0xfe);
    let (mean, std, _total) =
        eval.time_inference(trainer.lead_model(), g, &sampler, test, seed.1 ^ 0xff);

    Row {
        model: name,
        workers,
        seed: seed.0,
        auc: roc_auc(&scores, &labels),
        ap: average_precision(&scores, &labels),
        acc: accuracy(&scores, &labels, 0.5),
        train_s_per_epoch,
        infer_s_per_batch: mean,
        infer_std: std,
    }
}

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Table 3 / Table 7 — end-to-end on {}-sim (epochs: {})",
        scale.name(),
        scale.epochs()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    println!(
        "dataset: {} nodes, {} links, {} train / {} test labelled txns\n",
        g.n_nodes(),
        g.n_links(),
        train.len(),
        test.len()
    );

    let feature_dim = g.feature_dim();
    let mut rows: Vec<Row> = Vec::new();
    let epochs = scale.epochs();
    for workers in [8usize, 16] {
        for seed in SEEDS {
            let det_cfg = DetectorConfig::small(feature_dim, seed.1);
            rows.push(run_model(
                "GAT",
                || GatModel::new(det_cfg.clone()),
                g,
                &train,
                &test,
                workers,
                seed,
                epochs,
            ));
            rows.push(run_model(
                "GEM",
                || GemModel::new(det_cfg.clone()),
                g,
                &train,
                &test,
                workers,
                seed,
                epochs,
            ));
            rows.push(run_model(
                "xFraud detector+",
                || XFraudDetector::new(det_cfg.clone()),
                g,
                &train,
                &test,
                workers,
                seed,
                epochs,
            ));
        }
    }

    println!(
        "{:<18} {:>3}w {:>4} {:>8} {:>8} {:>8} {:>12} {:>18}",
        "model", "", "seed", "Accuracy", "AP", "AUC", "s/epoch", "s/batch(±std)"
    );
    for r in &rows {
        println!(
            "{:<18} {:>3}w {:>4} {:>8.4} {:>8.4} {:>8.4} {:>12.2} {:>10.4} ± {:.4}",
            r.model,
            r.workers,
            r.seed,
            r.acc,
            r.ap,
            r.auc,
            r.train_s_per_epoch,
            r.infer_s_per_batch,
            r.infer_std
        );
    }

    // Seed-averaged Table-3 style summary.
    section("Table 3 — seed-averaged summary");
    println!(
        "{:<18} {:>3}w {:>8} {:>12} {:>14}",
        "model", "", "AUC", "s/epoch", "s/batch"
    );
    for workers in [8usize, 16] {
        for model in ["GAT", "GEM", "xFraud detector+"] {
            let sel: Vec<&Row> = rows
                .iter()
                .filter(|r| r.model == model && r.workers == workers)
                .collect();
            let avg =
                |f: &dyn Fn(&Row) -> f64| sel.iter().map(|r| f(r)).sum::<f64>() / sel.len() as f64;
            println!(
                "{model:<18} {workers:>3}w {:>8.4} {:>12.2} {:>14.4}",
                avg(&|r| r.auc),
                avg(&|r| r.train_s_per_epoch),
                avg(&|r| r.infer_s_per_batch)
            );
        }
    }
    println!("\npaper (eBay-xlarge, 8 machines): GAT 0.8879 / GEM 0.8961 / xFraud 0.9074 AUC;");
    println!("16 machines ~1.8x faster per epoch with lower AUC; GEM fastest inference.");

    if scale == Scale::Small {
        println!("\n(run with `large` or `xlarge` argument for bigger graphs)");
    }
}
