//! Appendix H.5: the production scenario — incremental (online) training.
//!
//! Compares a detector trained once on the first time window (the "static"
//! arm) against one that fine-tunes on every window after being evaluated
//! on it. The synthetic timeline contains exactly the drift the paper
//! worries about: stolen-card bursts at random times and cultivated rings
//! that turn bad months after their benign cultivation phase.

use xfraud::datagen::Dataset;
use xfraud::gnn::{
    incremental_study, time_windows, DetectorConfig, IncrementalConfig, SageSampler, XFraudDetector,
};
use xfraud_bench::{scale_from_args, section};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix H.5 — incremental vs static training ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let cfg = IncrementalConfig {
        n_windows: 5,
        initial_epochs: 6,
        finetune_epochs: 2,
        ..Default::default()
    };
    let windows = time_windows(g, &ds.node_time, cfg.n_windows);
    println!("timeline windows (labelled txns / fraud share):");
    for (w, win) in windows.iter().enumerate() {
        let fraud = win.iter().filter(|&&v| g.label(v) == Some(true)).count();
        println!(
            "  window {w}: {:>5} txns, {:>5.2}% fraud",
            win.len(),
            100.0 * fraud as f64 / win.len().max(1) as f64
        );
    }

    let fd = g.feature_dim();
    let sampler = SageSampler::new(2, 8);
    let reports = incremental_study(
        g,
        &ds.node_time,
        &sampler,
        || XFraudDetector::new(DetectorConfig::small(fd, 1)),
        &cfg,
    );

    println!(
        "\n{:<8} {:>7} {:>8} {:>12} {:>14} {:>13} {:>8}",
        "window", "n_eval", "fraud%", "AUC static", "AUC increment", "AUC ensemble", "Δ"
    );
    let mut total_delta = 0.0;
    for r in &reports {
        let d = r.auc_incremental - r.auc_static;
        total_delta += d;
        println!(
            "{:<8} {:>7} {:>7.2}% {:>12.4} {:>14.4} {:>13.4} {:>+8.4}",
            r.window,
            r.n_eval,
            100.0 * r.fraud_share,
            r.auc_static,
            r.auc_incremental,
            r.auc_ensemble,
            d
        );
    }
    println!(
        "\nmean Δ(incremental − static) over windows: {:+.4}",
        total_delta / reports.len().max(1) as f64
    );
    println!("paper: periodic model updates keep the detector current, while historical");
    println!("data stays in the mix because ring attacks are cultivated over months.");
}
