//! Table 4 + Table 12 + Figure 7: the hybrid explainer.
//!
//! * Table 4: test-community hit rate of edge betweenness H(c),
//!   GNNExplainer H(e), hybrid-ridge H(h) and hybrid-grid H(h).
//! * Table 12: the same over train AND test at k = 5..45, with the grid's
//!   fitted A per rank.
//! * Figure 7: the per-community Δ(H(e) − H(c)) trade-off that motivates
//!   the hybrid (§3.4.1) — positive and negative deltas coexist.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::explain::centrality::Measure;
use xfraud::explain::{topk_hit_rate_expected, CommunityWeights, HybridExplainer};
use xfraud_bench::{scale_from_args, section, trained_study};

const DRAWS: usize = 100;

fn mean_hit(
    comms: &[CommunityWeights],
    weights_of: impl Fn(&CommunityWeights) -> Vec<f64>,
    k: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut total = 0.0;
    for c in comms {
        total += topk_hit_rate_expected(&c.human, &weights_of(c), k, DRAWS, rng);
    }
    total / comms.len().max(1) as f64
}

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Tables 4/12 + Figure 7 — hybrid explainer ({}-sim)",
        scale.name()
    ));
    let (_pipeline, study) = trained_study(scale);
    // Edge betweenness is the centrality arm, as in the paper (best H(c)@5).
    let all = study.to_community_weights(Measure::EdgeBetweenness);
    let (train, test) = study.train_test_split(&all);
    println!(
        "{} communities → {} train / {} test (paper: 21/20)\n",
        all.len(),
        train.len(),
        test.len()
    );

    let mut rng = StdRng::seed_from_u64(77);

    // Figure 7: per-community Δ(H(e) − H(c)) at k = 10.
    section("Figure 7 — per-community Δ(H(e) − H(c)) at top-10");
    let (mut e_wins, mut c_wins) = (0usize, 0usize);
    for (i, c) in all.iter().enumerate() {
        let he = topk_hit_rate_expected(&c.human, &c.explainer, 10, DRAWS, &mut rng);
        let hc = topk_hit_rate_expected(&c.human, &c.centrality, 10, DRAWS, &mut rng);
        let d = he - hc;
        if d > 0.0 {
            e_wins += 1;
        } else if d < 0.0 {
            c_wins += 1;
        }
        println!("community {i:>2}  Δ = {d:+.3}");
    }
    println!(
        "GNNExplainer better on {e_wins}, centrality better on {c_wins} (trade-off ⇔ both > 0)"
    );

    // Alternative centrality arms: the kernel-backed feature sources
    // (GAP PageRank / k-core on the line graph) scored with the same
    // hit-rate protocol as the paper's edge-betweenness arm.
    section("Kernel centrality arms — mean hit rate over all communities");
    println!("{:<24} {:>8} {:>8} {:>8}", "arm", "H@5", "H@10", "H@25");
    for m in [
        Measure::EdgeBetweenness,
        Measure::KernelPageRank,
        Measure::KernelKCore,
    ] {
        let arm = study.to_community_weights(m);
        let row: Vec<f64> = [5usize, 10, 25]
            .iter()
            .map(|&k| mean_hit(&arm, |c| c.centrality.clone(), k, &mut rng))
            .collect();
        println!(
            "{:<24} {:>8.4} {:>8.4} {:>8.4}",
            m.name(),
            row[0],
            row[1],
            row[2]
        );
    }

    // Ridge fit (single coefficient pair across ranks).
    let ridge = HybridExplainer::fit_ridge(&train, &[5, 10, 15, 20, 25], 30, &mut rng);
    println!(
        "\nridge fit: A = {:.4}, B = {:.4} ({:?})  (paper: A=-0.1097, B=0.1064, α=0.99)",
        ridge.a, ridge.b, ridge.fit
    );

    section("Table 12 — train/test hit rates per rank");
    println!(
        "{:<7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "k",
        "c:train",
        "c:test",
        "e:train",
        "e:test",
        "ridge:tr",
        "ridge:te",
        "grid:tr",
        "grid:te",
        "A_grid"
    );
    let ks = [5usize, 10, 15, 20, 25, 30, 35, 40, 45];
    let mut table4: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for &k in &ks {
        let grid = HybridExplainer::fit_grid(&train, k, 30, &mut rng);
        let c_tr = mean_hit(&train, |c| c.centrality.clone(), k, &mut rng);
        let c_te = mean_hit(&test, |c| c.centrality.clone(), k, &mut rng);
        let e_tr = mean_hit(&train, |c| c.explainer.clone(), k, &mut rng);
        let e_te = mean_hit(&test, |c| c.explainer.clone(), k, &mut rng);
        let r_tr = ridge.mean_hit_rate(&train, k, DRAWS, &mut rng);
        let r_te = ridge.mean_hit_rate(&test, k, DRAWS, &mut rng);
        let g_tr = grid.mean_hit_rate(&train, k, DRAWS, &mut rng);
        let g_te = grid.mean_hit_rate(&test, k, DRAWS, &mut rng);
        println!(
            "Top{k:<4} {c_tr:>10.4} {c_te:>10.4} {e_tr:>10.4} {e_te:>10.4} {r_tr:>10.4} {r_te:>10.4} {g_tr:>10.4} {g_te:>10.4} {:>8.2}",
            grid.a
        );
        if k <= 25 {
            table4.push((k, c_te, e_te, r_te, g_te));
        }
    }

    section("Table 4 — test-community summary");
    println!(
        "{:<7} {:>14} {:>14} {:>14} {:>14}",
        "H(_)", "edge betw H(c)", "GNNExpl H(e)", "ridge H(h)", "grid H(h)"
    );
    for (k, c, e, r, g) in table4 {
        println!("Top{k:<4} {c:>14.4} {e:>14.4} {r:>14.4} {g:>14.4}");
    }
    println!("\npaper Table 4 @Top10: 0.78175 / 0.77580 / 0.81115 / 0.78700 — hybrid ≥ both arms.");
}
