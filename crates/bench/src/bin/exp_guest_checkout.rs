//! Appendix G.3's stated system limitation, quantified: guest checkouts.
//!
//! "Guest checkout allows users to make purchases without logging in ...
//! Image a case where ... none of the trivial entities can be linked by
//! this purchase, so that our xFraud detector can hardly retrieve any
//! useful information." Our generator plants both kinds: guest frauds that
//! *reuse* an existing payment token/email (linkable) and fully *fresh*
//! ones (the hard case). The detector's scores should separate the two.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::datagen::FraudMechanism;
use xfraud::gnn::{predict_scores, SageSampler, Sampler};
use xfraud::hetgraph::NodeType;
use xfraud::metrics::roc_auc;
use xfraud_bench::{scale_from_args, section, trained_pipeline};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix G.3 — guest-checkout hard case ({}-sim)",
        scale.name()
    ));
    let pipeline = trained_pipeline(scale, 1);
    let ds = &pipeline.dataset;
    let g = &ds.graph;

    // Guest frauds in the held-out set, split by entity linkage: "linked"
    // = its payment token or email serves other transactions too.
    let mut linked = Vec::new();
    let mut fresh = Vec::new();
    for &v in &pipeline.test_nodes {
        if ds.node_mechanism[v] != Some(FraudMechanism::GuestCheckout) {
            continue;
        }
        let shares_entity = g
            .neighbors(v)
            .any(|u| matches!(g.node_type(u), NodeType::Pmt | NodeType::Email) && g.degree(u) > 1);
        if shares_entity {
            linked.push(v);
        } else {
            fresh.push(v);
        }
    }
    println!(
        "held-out guest frauds: {} linked to reused entities, {} fully fresh",
        linked.len(),
        fresh.len()
    );
    if fresh.is_empty() {
        println!("(zero fresh guests is itself the finding: a fully fresh guest checkout");
        println!(" forms an isolated 4-node component, and the Appendix-B construction");
        println!(" filter drops such neighbourhoods before the GNN ever sees them —");
        println!(" matching GEM's practice of pre-filtering isolated transactions.)");
    }
    println!();

    let sampler = SageSampler::new(2, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let score_of = |nodes: &[usize], rng: &mut StdRng| -> Vec<f32> {
        nodes
            .chunks(256)
            .flat_map(|chunk| {
                let batch = sampler.sample(g, chunk, rng);
                predict_scores(&pipeline.detector, &batch, rng)
            })
            .collect()
    };
    let linked_scores = score_of(&linked, &mut rng);
    let fresh_scores = score_of(&fresh, &mut rng);
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "mean fraud score — linked guests: {:.3}",
        mean(&linked_scores)
    );
    println!(
        "mean fraud score — fresh guests : {:.3}",
        mean(&fresh_scores)
    );

    // Detection quality of each class against the benign held-out stream.
    let benign: Vec<usize> = pipeline
        .test_nodes
        .iter()
        .copied()
        .filter(|&v| g.label(v) == Some(false))
        .collect();
    let benign_scores = score_of(&benign, &mut rng);
    for (name, scores) in [("linked", &linked_scores), ("fresh", &fresh_scores)] {
        if scores.is_empty() {
            continue;
        }
        let mut all = scores.clone();
        all.extend_from_slice(&benign_scores);
        let mut labels = vec![true; scores.len()];
        labels.extend(std::iter::repeat_n(false, benign_scores.len()));
        println!(
            "AUC({name} guest frauds vs benign) = {:.4}",
            roc_auc(&all, &labels)
        );
    }
    println!("\npaper: fully fresh guest checkouts 'remain a difficult use case' — the");
    println!("linked class should be clearly more detectable than the fresh class.");
}
