//! Tables 14–19 (Appendix H): TPR / FNR / TNR / FPR and precision / recall
//! for GAT, GEM and detector+ across the paper's three threshold grids
//! (0.1–0.9, 0.95–0.977, 0.978–0.987), seeds A and B.
//!
//! `-` marks thresholds no score reaches, exactly as the paper prints.

use xfraud::datagen::Dataset;
use xfraud::gnn::{
    train_test_split, DetectorConfig, GatModel, GemModel, Model, SageSampler, TrainConfig, Trainer,
    XFraudDetector,
};
use xfraud::hetgraph::HetGraph;
use xfraud::metrics::{Confusion, ThresholdReport};
use xfraud_bench::{scale_from_args, section, Scale, SEEDS};

#[allow(clippy::too_many_arguments)]
fn sweep_model<M: Model + Sync>(
    name: &str,
    seed_name: char,
    mut model: M,
    g: &HetGraph,
    train: &[usize],
    test: &[usize],
    epochs: usize,
    seed: u64,
) {
    let sampler = SageSampler::new(2, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs,
        seed,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, g, &sampler, train, test);
    let (scores, labels) = trainer.evaluate(&model, g, &sampler, test, seed ^ 0xfe);

    println!("\n## {name}, seed {seed_name}");
    for (gi, grid) in ThresholdReport::paper_grids().iter().enumerate() {
        let rep = ThresholdReport::sweep(&scores, &labels, grid);
        let ths: Vec<String> = grid.iter().map(|t| format!("{t}")).collect();
        println!("grid {gi}: thresholds {}", ths.join(" "));
        println!("  TPR       {}", rep.row(Confusion::tpr));
        println!("  FNR       {}", rep.row(Confusion::fnr));
        println!("  TNR       {}", rep.row(Confusion::tnr));
        println!("  FPR       {}", rep.row(Confusion::fpr));
        println!("  precision {}", rep.row(Confusion::precision));
        println!("  recall    {}", rep.row(Confusion::recall));
    }
}

fn main() {
    let scale: Scale = scale_from_args();
    section(&format!(
        "Tables 14–19 — threshold sweeps ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    let fd = g.feature_dim();
    let epochs = scale.epochs();

    for (s, seed) in SEEDS {
        sweep_model(
            "GAT",
            s,
            GatModel::new(DetectorConfig::small(fd, seed)),
            g,
            &train,
            &test,
            epochs,
            seed,
        );
        sweep_model(
            "GEM",
            s,
            GemModel::new(DetectorConfig::small(fd, seed)),
            g,
            &train,
            &test,
            epochs,
            seed,
        );
        sweep_model(
            "xFraud detector+",
            s,
            XFraudDetector::new(DetectorConfig::small(fd, seed)),
            g,
            &train,
            &test,
            epochs,
            seed,
        );
    }
    println!("\npaper shape: detector+ keeps usable recall deep into the 0.95+ grid where");
    println!("GAT/GEM scores cease to exist ('-'); FPR at high thresholds ≈ 0.");
}
