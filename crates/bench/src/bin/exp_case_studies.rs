//! Figures 6, 11, 16, 17: explainer case studies — communities rendered as
//! Graphviz DOT with hybrid-explainer edge weights, classified into
//! TP/TN/FP/FN like Appendix G, plus the simple/complex confusion matrix of
//! Table 13.
//!
//! DOT files land in `target/case_studies/`; render with
//! `dot -Tpng <file> -o <file>.png` (or `neato`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud::explain::centrality::Measure;
use xfraud::explain::{minmax, viz::community_dot, HybridExplainer, HybridFit};
use xfraud::hetgraph::NodeType;
use xfraud_bench::{scale_from_args, section, trained_study};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Figures 6/11/16/17 + Table 13 — case studies ({}-sim)",
        scale.name()
    ));
    let (pipeline, study) = trained_study(scale);
    let out_dir = std::path::Path::new("target/case_studies");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    // Hybrid weights with a fixed mid blend (the case studies use "hybrid
    // learner weights"; the exact coefficients barely move the pictures).
    let hybrid = HybridExplainer {
        a: 0.5,
        b: 0.5,
        fit: HybridFit::Grid,
    };
    let all = study.to_community_weights(Measure::EdgeBetweenness);

    let mut confusion = [[0usize; 2]; 2]; // [simple/complex][TP,TN,FP,FN packed below]
    let mut cells: std::collections::HashMap<(&str, &str), usize> = Default::default();

    let mut rng = StdRng::seed_from_u64(0);
    for (i, (sc, cw)) in study.communities.iter().zip(&all).enumerate() {
        let weights = hybrid.combine(&cw.centrality, &cw.explainer);
        let weights = minmax(&weights);
        let seed_global = sc.community.original_ids[sc.community.seed];
        let score = pipeline
            .score_transaction(seed_global)
            .expect("community seeds are valid transactions");
        let predicted = score >= 0.5;
        let actual = sc.community.seed_label == Some(true);
        let outcome = match (actual, predicted) {
            (true, true) => "TP",
            (false, false) => "TN",
            (false, true) => "FP",
            (true, false) => "FN",
        };
        let n_buyers = (0..sc.community.graph.n_nodes())
            .filter(|&v| sc.community.graph.node_type(v) == NodeType::Buyer)
            .count();
        let complexity = if n_buyers <= 1 { "simple" } else { "complex" };
        *cells.entry((complexity, outcome)).or_default() += 1;
        confusion[usize::from(complexity == "complex")][usize::from(predicted)] += 1;

        let title =
            format!("community {i}: {outcome} ({complexity}, {n_buyers} buyers, score {score:.3})");
        let dot = community_dot(&sc.community, &weights, &title);
        let path = out_dir.join(format!("community_{i:02}_{outcome}.dot"));
        std::fs::write(&path, dot).expect("write dot");
        println!("{title}  →  {}", path.display());
        let _ = &mut rng;
    }

    section("Table 13 — confusion by community complexity");
    println!("{:<10} {:>4} {:>4} {:>4} {:>4}", "", "TP", "TN", "FP", "FN");
    for complexity in ["simple", "complex"] {
        let get = |o: &str| cells.get(&(complexity, o)).copied().unwrap_or(0);
        println!(
            "{complexity:<10} {:>4} {:>4} {:>4} {:>4}",
            get("TP"),
            get("TN"),
            get("FP"),
            get("FN")
        );
    }
    println!("\npaper Table 13: FPs concentrate in simple (single-buyer) communities —");
    println!("none occur in complex ones; FNs are relatively more common in complex ones.");
    let _ = confusion;
}
