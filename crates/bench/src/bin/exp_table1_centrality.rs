//! Table 1: top-k hit rate of every explainability source against the
//! (simulated) human annotations, on all sampled communities — the 13
//! centrality measures of the paper plus the two kernel-backed extras
//! (GAP PageRank / k-core on the line graph), GNNExplainer weights, and
//! random weights.
//!
//! Published shape: all informative measures land close together (≈0.45 @
//! top5 rising to ≈0.92 @ top25) while random weights trail far behind
//! (0.127 @ top5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud::explain::centrality::EXTENDED_MEASURES;
use xfraud::explain::topk_hit_rate_expected;
use xfraud_bench::{fmt_row, scale_from_args, section, trained_study, TOPKS};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Table 1 — top-k hit rate per explainability source ({}-sim)",
        scale.name()
    ));
    let (_pipeline, study) = trained_study(scale);
    let (fraud, legit) = study.seed_label_counts();
    println!(
        "communities: {} ({} fraud-seeded, {} legit-seeded), mean links/community {:.2}",
        study.communities.len(),
        fraud,
        legit,
        study.mean_links()
    );
    println!("(paper: 41 communities — 18 fraud, 23 legit — 81.56 edges/community)\n");

    let header: Vec<String> = TOPKS.iter().map(|k| format!("H@{k}")).collect();
    println!("{:<42} {}", "measure", header.join("   "));

    let mut rng = StdRng::seed_from_u64(1234);
    for m in EXTENDED_MEASURES {
        let weights = study.centrality_weights(m);
        let row: Vec<f64> = TOPKS
            .iter()
            .map(|&k| {
                let mut total = 0.0;
                for (sc, w) in study.communities.iter().zip(&weights) {
                    total += topk_hit_rate_expected(&sc.human, w, k, 100, &mut rng);
                }
                total / study.communities.len() as f64
            })
            .collect();
        println!("{}", fmt_row(m.name(), &row));
    }

    // GNNExplainer weights.
    let row: Vec<f64> = TOPKS
        .iter()
        .map(|&k| {
            let mut total = 0.0;
            for sc in &study.communities {
                total += topk_hit_rate_expected(&sc.human, &sc.explainer, k, 100, &mut rng);
            }
            total / study.communities.len() as f64
        })
        .collect();
    println!("{}", fmt_row("GNNExplainer weights", &row));

    // Random weights, averaged over 10 independent draws (Appendix E).
    let row: Vec<f64> = TOPKS
        .iter()
        .map(|&k| {
            let mut total = 0.0;
            for _ in 0..10 {
                for sc in &study.communities {
                    let w: Vec<f64> = (0..sc.human.len()).map(|_| rng.gen::<f64>()).collect();
                    total += topk_hit_rate_expected(&sc.human, &w, k, 100, &mut rng);
                }
            }
            total / (10 * study.communities.len()) as f64
        })
        .collect();
    println!("{}", fmt_row("random weights", &row));

    println!("\npaper row 1  (edge betweenness): 0.469 0.718 0.812 0.903 0.923");
    println!("paper row 14 (GNNExplainer):     0.445 0.692 0.821 0.898 0.921");
    println!("paper row 15 (random):           0.127 0.454 0.602 0.695 0.791");
}
