//! Tables 8–11 (Appendix E): GNNExplainer vs random edge weights, under the
//! three node→edge aggregations (avg / min / sum), overall and split by
//! community seed label (c1 = fraud-seeded, c0 = legit-seeded).
//!
//! Published shape: GNNExplainer ≈ 0.45 @ top5 → 0.92 @ top25; random ≈
//! 0.13 → 0.79; the Δ shrinks as k grows; no aggregation dominates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud::explain::annotate::EdgeAgg;
use xfraud::explain::topk_hit_rate_expected;
use xfraud_bench::{fmt_row, scale_from_args, section, trained_study, TOPKS};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Tables 8–11 — GNNExplainer vs random, by aggregation and seed label ({}-sim)",
        scale.name()
    ));
    let (_pipeline, study) = trained_study(scale);
    let mut rng = StdRng::seed_from_u64(808);

    for (agg_i, agg) in EdgeAgg::ALL.iter().enumerate() {
        section(&format!("aggregation = {}", agg.name()));
        for filter in ["all", "c0", "c1"] {
            let selected: Vec<usize> = study
                .communities
                .iter()
                .enumerate()
                .filter(|(_, sc)| match filter {
                    "c0" => sc.community.seed_label == Some(false),
                    "c1" => sc.community.seed_label == Some(true),
                    _ => true,
                })
                .map(|(i, _)| i)
                .collect();
            if selected.is_empty() {
                continue;
            }
            let mut expl_row = Vec::new();
            let mut rand_row = Vec::new();
            for &k in &TOPKS {
                let mut e_total = 0.0;
                let mut r_total = 0.0;
                for &i in &selected {
                    let sc = &study.communities[i];
                    let human = &sc.human_by_agg[agg_i];
                    e_total += topk_hit_rate_expected(human, &sc.explainer, k, 100, &mut rng);
                    // 10 random draws, as the appendix averages.
                    for _ in 0..10 {
                        let w: Vec<f64> = (0..human.len()).map(|_| rng.gen::<f64>()).collect();
                        r_total += topk_hit_rate_expected(human, &w, k, 100, &mut rng) / 10.0;
                    }
                }
                expl_row.push(e_total / selected.len() as f64);
                rand_row.push(r_total / selected.len() as f64);
            }
            let delta: Vec<f64> = expl_row.iter().zip(&rand_row).map(|(e, r)| e - r).collect();
            println!("\n[{filter}] ({} communities)", selected.len());
            println!("{}", fmt_row("Random", &rand_row));
            println!("{}", fmt_row("GNNExplainer", &expl_row));
            println!("{}", fmt_row("Δ(GNNExplainer-Random)", &delta));
        }
    }
    println!("\npaper Table 8 (avg, all): random 0.13/0.45/0.60/0.70/0.79;");
    println!("GNNExplainer 0.45/0.69/0.82/0.90/0.92; Δ shrinks with k.");
}
