//! Appendix D's feature-level claim: "node feature masks give high weights
//! to the node feature dimensions influential in prediction".
//!
//! The generator plants its risk signal in the first `dim/4` feature
//! dimensions (see `xfraud-datagen::features`), so we can *score* the
//! explainer's feature masks against known ground truth: how many of the
//! top-ranked mask dimensions are genuinely informative.

use xfraud::explain::{ExplainerConfig, FeatureImportance, GnnExplainer};
use xfraud_bench::{scale_from_args, section, trained_pipeline};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix D — node-feature-mask analysis ({}-sim)",
        scale.name()
    ));
    let pipeline = trained_pipeline(scale, 1);
    let dim = pipeline.dataset.graph.feature_dim();
    // The generator's informative dimensions: signal block + category block.
    let n_signal = (dim / 4).clamp(2, 8);
    let informative: Vec<usize> = (0..n_signal).collect();
    println!("feature dim {dim}; generator's signal dims: 0..{n_signal}\n");

    let communities = pipeline
        .sample_communities(12, 6, 120, 5)
        .expect("sampling from the trained pipeline succeeds");
    let explainer = GnnExplainer::new(&pipeline.detector, ExplainerConfig::default());
    let mut mean_recovery = 0.0;
    let mut dim_totals = vec![0.0f64; dim];
    for (i, community) in communities.iter().enumerate() {
        let (expl, _) = explainer.explain_community(community);
        let fi = FeatureImportance::from_mask(&expl.feature_mask, 0);
        let rec = fi.top_k_recovery(n_signal, &informative);
        mean_recovery += rec;
        for (t, &m) in dim_totals.iter_mut().zip(&fi.mean) {
            *t += m;
        }
        println!(
            "community {i:>2}: top dims {:?}  signal recovery@{n_signal} = {rec:.2}",
            &fi.ranked()[..n_signal.min(6)]
        );
    }
    let n = communities.len() as f64;
    mean_recovery /= n;
    println!("\nmean signal recovery @ top-{n_signal}: {mean_recovery:.3}");
    println!(
        "(random ranking expectation: {:.3})",
        n_signal as f64 / dim as f64
    );

    let mut ranked: Vec<usize> = (0..dim).collect();
    ranked.sort_by(|&a, &b| dim_totals[b].partial_cmp(&dim_totals[a]).unwrap());
    println!("\nglobal mean mask per dimension (top 10):");
    for &d in ranked.iter().take(10) {
        let marker = if d < n_signal { " <- signal dim" } else { "" };
        println!("  dim {d:>2}: {:.3}{marker}", dim_totals[d] / n);
    }
}
