//! Figure 10: the detector vs detector+ ablation (§4.2) — same model, two
//! samplers. HGSampling (HGT's type-balancing sampler) vs GraphSAGE uniform
//! sampling, on small-sim and large-sim: total inference time over the test
//! set and test AUC.
//!
//! Published shape: GraphSAGE sampling is 5–7× faster at equal-or-slightly-
//! better AUC (0.7248→0.7262 small, 0.8683→0.8690 large).

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::gnn::{
    train_test_split, DetectorConfig, HgSampler, SageSampler, Sampler, TrainConfig, Trainer,
    XFraudDetector,
};
use xfraud::hetgraph::GraphView;
use xfraud::metrics::roc_auc;
use xfraud_bench::{rss_mib, section};

fn run(preset: DatasetPreset, epochs: usize) {
    let ds = Dataset::generate(preset, 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    println!(
        "\n{} ({} nodes, {} links, {} test txns)",
        ds.name,
        g.n_nodes(),
        g.n_links(),
        test.len()
    );

    // Train once with the SAGE sampler (the trained weights are shared by
    // both inference paths, isolating the sampler exactly as in §4.2).
    let mut model = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 1));
    let sage = SageSampler::new(2, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, g, &sage, &train, &test);

    // HGSampling runs at pyHGT's defaults: sampled depth 6 (the paper's
    // detector has 6 layers and HGT samples its full receptive field,
    // balancing all node types at every step) — this is precisely the
    // subgraph inflation detector+'s 2-hop uniform sampler removes.
    // Both samplers run through the one shared `Trainer::evaluate` path as
    // trait objects — no per-sampler monomorphized inference loop.
    let hg = HgSampler::new(6, 8);
    let samplers: [&(dyn Sampler + Sync); 2] = [&hg, &sage];
    let mut results = Vec::new();
    for s in samplers {
        let start = std::time::Instant::now();
        let (scores, labels) = trainer.evaluate(&model, g, &s, &test, 99);
        let secs = start.elapsed().as_secs_f64();
        let auc = roc_auc(&scores, &labels);
        println!(
            "  {:<12} total inference {:>8.3} s   AUC {:.4}",
            s.name(),
            secs,
            auc
        );
        results.push((s.name(), secs, auc));
    }
    let speedup = results[0].1 / results[1].1.max(1e-9);
    println!("  speedup (hgsampling / graphsage): {speedup:.2}x (paper: 5-7x)");
}

/// The ablation at paper scale: a ≥1M-node world streamed to disk, graph
/// topology in RAM, feature rows paged in from the out-of-core store.
/// Training and evaluation run on subsamples — the measured quantity is
/// per-sampler inference cost, and HGSampling's budget table spans the
/// whole graph, so its per-batch cost grows with `n` while GraphSAGE stays
/// neighbourhood-local. RSS is printed so the bounded-memory claim is on
/// the record next to the node count.
fn run_million(target_nodes: usize) {
    use xfraud::datagen::{scaled_large_config, stream_dataset_to_dir};

    let dir = std::env::temp_dir().join(format!("xfraud-exp-million-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // The small-neighbourhood filter keeps ~79% of the raw world, so ask
    // for enough raw nodes that the surviving graph clears the target.
    let cfg = scaled_large_config(target_nodes * 100 / 79, 7);
    let start = std::time::Instant::now();
    let ds = stream_dataset_to_dir(&cfg, &dir).expect("streamed build");
    let view = ds.view();
    println!(
        "\nebay-large-sim @ {} nodes ({} links, {} txns) streamed in {:.0}s, RSS {:.0} MiB",
        view.n_nodes(),
        view.n_directed_edges() / 2,
        ds.stats.n_nodes - ds.stats.n_entities,
        start.elapsed().as_secs_f64(),
        rss_mib()
    );

    let (train, test) = train_test_split(&ds.graph, 0.3, 42);
    let n_train = train.len().min(4096);
    let n_eval = test.len().min(1536);
    println!(
        "  (training on {n_train}/{} txns, timing inference on {n_eval}/{} — \
         the measurement is per-sampler cost, not AUC at scale)",
        train.len(),
        test.len()
    );

    let mut model = XFraudDetector::new(DetectorConfig::small(view.feature_dim(), 1));
    let sage = SageSampler::new(2, 8);
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    });
    trainer.fit(
        &mut model,
        &view,
        &sage,
        &train[..n_train],
        &test[..n_eval.min(512)],
    );

    let hg = HgSampler::new(6, 8);
    let samplers: [&(dyn Sampler + Sync); 2] = [&hg, &sage];
    let mut results = Vec::new();
    for s in samplers {
        let start = std::time::Instant::now();
        let (scores, labels) = trainer.evaluate(&model, &view, &s, &test[..n_eval], 99);
        let secs = start.elapsed().as_secs_f64();
        let auc = roc_auc(&scores, &labels);
        println!(
            "  {:<12} total inference {:>8.3} s   AUC {:.4}",
            s.name(),
            secs,
            auc
        );
        results.push((s.name(), secs, auc));
    }
    let speedup = results[0].1 / results[1].1.max(1e-9);
    println!(
        "  speedup (hgsampling / graphsage): {speedup:.2}x (paper: 5-7x, widening with scale)"
    );
    println!("  RSS after evaluation: {:.0} MiB", rss_mib());
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    section("Figure 10 — sampler ablation: xFraud detector (HGSampling) vs detector+ (GraphSAGE)");
    // `million [N]` runs ONLY the out-of-core paper-scale ablation (the
    // in-RAM presets stay the default so the suite remains snappy).
    if std::env::args().nth(1).as_deref() == Some("million") {
        let target = std::env::args()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1_000_000);
        run_million(target);
        return;
    }
    run(DatasetPreset::EbaySmallSim, 6);
    run(DatasetPreset::EbayLargeSim, 4);
    // HGSampling's budget table spans the WHOLE graph, so its overhead
    // grows with graph size while GraphSAGE stays neighbourhood-local —
    // the speedup widens with scale, exactly the paper's motivation. Pass
    // `xlarge` to see it at the largest preset.
    if std::env::args().nth(1).as_deref() == Some("xlarge") {
        run(DatasetPreset::EbayXlargeSim, 3);
    }
    println!("\npaper: small 42.7s→6.1s (7x), large 183.3s→36.9s (5x); AUC unchanged or slightly better.");
}
