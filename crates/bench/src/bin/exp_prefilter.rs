//! Appendix B step 2: the rule-based pre-filter that runs *before* the GNN
//! ("we then use some simple rules to filter out certain low-risk
//! transactions ... consistent with how this model will be used in
//! practice"; footnote 6: skope-rules).
//!
//! Mines threshold rules on the transaction features, filters the stream,
//! and reports the fraud-rate concentration (the paper's 0.016 % → 0.043 %
//! step) plus the recall the filter gives up.

use xfraud::datagen::Dataset;
use xfraud::gnn::train_test_split;
use xfraud::rules::{MinerConfig, RuleMiner};
use xfraud_bench::{scale_from_args, section};

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Appendix B step 2 — rule-based pre-filtering ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);

    let row_of = |v: usize| g.features().row(g.feature_row_of(v).expect("txn"));
    let train_rows: Vec<&[f32]> = train.iter().map(|&v| row_of(v)).collect();
    let train_labels: Vec<bool> = train.iter().map(|&v| g.label(v) == Some(true)).collect();

    // The platform filter aims at *concentration*, not final precision: a
    // kept rule must beat the base rate by 1.5x (the paper's own filter
    // lifts 0.016% → 0.043%, ≈2.7x, with rules unioned for recall).
    let base_rate = train_labels.iter().filter(|&&y| y).count() as f64 / train_labels.len() as f64;
    let miner = RuleMiner::new(MinerConfig {
        min_precision: 1.5 * base_rate,
        min_support: 20,
        max_rules: 20,
        beam: 16,
        ..MinerConfig::default()
    });
    let ruleset = miner.mine(&train_rows, &train_labels);
    println!("mined {} rules:", ruleset.rules.len());
    for r in &ruleset.rules {
        println!("  {r}");
    }

    // Apply to the held-out stream.
    let test_rows: Vec<&[f32]> = test.iter().map(|&v| row_of(v)).collect();
    let test_labels: Vec<bool> = test.iter().map(|&v| g.label(v) == Some(true)).collect();
    let (risky, low) = ruleset.filter(&test_rows);
    let fraud_rate = |ids: &[usize]| {
        if ids.is_empty() {
            0.0
        } else {
            ids.iter().filter(|&&i| test_labels[i]).count() as f64 / ids.len() as f64
        }
    };
    let (precision, recall) = ruleset.evaluate(&test_rows, &test_labels);
    println!(
        "\nheld-out stream: {} transactions, fraud rate {:.2}%",
        test.len(),
        100.0 * test_labels.iter().filter(|&&y| y).count() as f64 / test.len() as f64
    );
    println!(
        "after filter  : {} kept ({:.1}% of stream), fraud rate {:.2}%  ({:.1}x concentration)",
        risky.len(),
        100.0 * risky.len() as f64 / test.len() as f64,
        100.0 * fraud_rate(&risky),
        fraud_rate(&risky) / fraud_rate(&(0..test.len()).collect::<Vec<_>>()).max(1e-12)
    );
    println!(
        "dropped       : {} low-risk ({:.2}% residual fraud = recall loss {:.1}%)",
        low.len(),
        100.0 * fraud_rate(&low),
        100.0 * (1.0 - recall)
    );
    println!("filter flag quality: precision {precision:.3}, recall {recall:.3}");
    println!("\npaper: the platform rules concentrate the stream from 0.016% to 0.043% fraud");
    println!("(≈2.7x) before the GNN ever runs; GEM pre-filters isolated transactions too.");
}
