//! Figure 14: convergence of distributed training — test AUC per epoch for
//! GAT, GEM and detector+ at 8 vs 16 workers, two seeds.
//!
//! Published shape: 16 machines do *not* converge faster and end at lower
//! AUC than 8 (each worker sees a more restrained neighbourhood).

use xfraud::datagen::Dataset;
use xfraud::dist::{DdpConfig, DdpTrainer};
use xfraud::gnn::{
    train_test_split, DetectorConfig, GatModel, GemModel, Model, SageSampler, XFraudDetector,
};
use xfraud::hetgraph::{HetGraph, NodeId};
use xfraud_bench::{scale_from_args, section, SEEDS};

#[allow(clippy::too_many_arguments)]
fn converge<M: Model + Send + Sync>(
    name: &str,
    make: impl Fn() -> M,
    g: &HetGraph,
    train: &[NodeId],
    test: &[NodeId],
    workers: usize,
    seed: u64,
    epochs: usize,
) {
    let cfg = DdpConfig {
        n_workers: workers,
        n_partitions: 128,
        epochs,
        seed,
        ..DdpConfig::default()
    };
    let mut trainer = DdpTrainer::new(g, train, &make, cfg);
    let sampler = SageSampler::new(2, 8);
    let hist = trainer.fit(g, test, &sampler);
    for e in &hist {
        println!(
            "{name} {workers}w epoch {:>2}  loss {:.4}  auc {:.4}",
            e.epoch, e.mean_loss, e.val_auc
        );
    }
}

fn main() {
    let scale = scale_from_args();
    section(&format!(
        "Figure 14 — convergence, 8 vs 16 workers ({}-sim)",
        scale.name()
    ));
    let ds = Dataset::generate(scale.preset(), 7);
    let g = &ds.graph;
    let (train, test) = train_test_split(g, 0.3, 42);
    let fd = g.feature_dim();
    let epochs = scale.epochs().max(6);
    for workers in [8usize, 16] {
        for (s, seed) in SEEDS {
            println!("\n# seed {s}, {workers} workers");
            let det = DetectorConfig::small(fd, seed);
            converge(
                &format!("GAT-{s}"),
                || GatModel::new(det.clone()),
                g,
                &train,
                &test,
                workers,
                seed,
                epochs,
            );
            converge(
                &format!("GEM-{s}"),
                || GemModel::new(det.clone()),
                g,
                &train,
                &test,
                workers,
                seed,
                epochs,
            );
            converge(
                &format!("xFraud-{s}"),
                || XFraudDetector::new(det.clone()),
                g,
                &train,
                &test,
                workers,
                seed,
                epochs,
            );
        }
    }
    println!("\npaper: 16-machine curves sit at or below the 8-machine curves for all models.");
}
