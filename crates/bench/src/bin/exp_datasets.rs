//! Table 2 + Table 6 + Figure 1: dataset statistics and the heterogeneous
//! graph landscape.
//!
//! Prints the simulated datasets' size, sparsity, node-type mix and fraud
//! rate next to the paper's published values, plus the Appendix-A survey
//! data behind Fig. 1 (log-log node/edge landscape).

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::hetgraph::ALL_NODE_TYPES;
use xfraud_bench::section;

/// (name, nodes, edges) of the Appendix-A survey — the scatter of Fig. 1.
const LANDSCAPE: &[(&str, f64, f64)] = &[
    ("BlogCatalog (HNE'15)", 5_196.0, 171_743.0),
    ("PPI (MVE'17)", 16_545.0, 1_098_711.0),
    ("DBLP (HNE'15)", 69_110.0, 1_884_236.0),
    ("Youtube (MVE'17)", 14_901.0, 13_552_130.0),
    ("Twitter (MVE'17)", 304_692.0, 131_151_083.0),
    ("GEM-graph (GEM'18)", 8e6, 10e6),
    ("AMiner CS (metapath2vec'18)", 12_522_027.0, 14_215_558.0),
    ("Alibaba (GATNE'19)", 41_991_048.0, 571_892_183.0),
    ("ogbn-mag (HGT'20)", 179e6, 2e9),
    ("eBay-small (xFraud)", 288_853.0, 612_904.0),
    ("eBay-large (xFraud)", 8_857_866.0, 13_158_984.0),
    ("eBay-xlarge (xFraud)", 1.1e9, 3.7e9),
];

/// Published Table 2 rows for side-by-side comparison.
const PAPER_TABLE2: &[(&str, usize, &str, &str, f64)] = &[
    ("eBay-xlarge", 480, "1.1B", "3.7B", 4.33),
    ("eBay-small", 114, "289K", "613K", 4.30),
    ("eBay-large", 480, "8.9M", "13.2M", 3.57),
];

fn main() {
    section("Figure 1 — heterogeneous graph landscape (log10 nodes, log10 edges)");
    println!(
        "{:<34} {:>12} {:>12} {:>8} {:>8}",
        "dataset", "#nodes", "#edges", "log10 N", "log10 E"
    );
    for &(name, n, e) in LANDSCAPE {
        println!(
            "{name:<34} {n:>12.0} {e:>12.0} {:>8.2} {:>8.2}",
            n.log10(),
            e.log10()
        );
    }

    section("Table 2 (paper) — dataset summary");
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8}",
        "dataset", "features", "#nodes", "#edges", "fraud%"
    );
    for &(name, feat, n, e, fr) in PAPER_TABLE2 {
        println!("{name:<14} {feat:>9} {n:>8} {e:>8} {fr:>7.2}%");
    }

    section("Table 2 / Table 6 (measured) — simulated datasets");
    for preset in [
        DatasetPreset::EbaySmallSim,
        DatasetPreset::EbayLargeSim,
        DatasetPreset::EbayXlargeSim,
    ] {
        let ds = Dataset::generate(preset, 7);
        let s = ds.stats();
        println!("\n{}:", ds.name);
        println!(
            "  features={} nodes={} links={} links/node={:.2} fraud%={:.2}",
            s.feature_dim,
            s.n_nodes,
            s.n_links,
            s.links_per_node(),
            100.0 * s.fraud_rate()
        );
        for t in ALL_NODE_TYPES {
            println!(
                "  {:<6} {:>8} ({:>5.1}%)",
                t.label(),
                s.type_counts[t.index()],
                100.0 * s.type_share(t)
            );
        }
    }
    println!("\npaper Table 6 shares for reference: txn 42-77%, pmt 7-13%, email 6-15%, addr 2-15%, buyer 5-15%");
}
