//! The xFraud explainer (§3.4, §5, Appendices D–G).
//!
//! Three families of edge-importance estimators, plus the machinery to
//! compare them against (simulated) human annotations:
//!
//! * [`GnnExplainer`] — the task-aware learner of Appendix D: optimises a
//!   per-edge mask and a per-node feature mask against the *frozen* detector
//!   with size and entropy regularisers (eq. 11–13).
//! * [`centrality`] — the task-agnostic measures of Table 1: edge
//!   betweenness and edge load on the community graph, and eleven node
//!   centralities computed on its line graph (Appendix F).
//! * [`HybridExplainer`] — the learned combination `A·w(c) + B·w(e)` via
//!   ridge regression or grid search (§3.4.2, Appendix F).
//!
//! Evaluation plumbing:
//!
//! * [`annotate`] — five simulated expert annotators producing node
//!   importance in {0,1,2}, calibrated to the paper's inter-annotator
//!   agreement (~0.53 vs ~0.0 for random), plus the avg/sum/min node→edge
//!   aggregations of Appendix E;
//! * [`topk_hit_rate`] — the agreement metric, with ties broken by
//!   averaging 100 random draws exactly as Appendix E prescribes;
//! * [`viz`] — Graphviz DOT renderings of communities with edge weights
//!   (the Fig. 6/11/16/17 case-study pictures).

pub mod annotate;
pub mod centrality;
mod featmask;
mod gnnexplainer;
mod hitrate;
mod hybrid;
pub(crate) mod linalg;
pub mod viz;

pub use featmask::FeatureImportance;
pub use gnnexplainer::{EdgeWeights, ExplainerConfig, Explanation, GnnExplainer};
pub use hitrate::{topk_hit_rate, topk_hit_rate_expected};
pub use hybrid::{best_polynomial_degree, minmax, CommunityWeights, HybridExplainer, HybridFit};
