//! The top-k hit rate metric (§3.4.1, Appendix E):
//! `H_topk = |topk(human) ∩ topk(explainer)| / k`.
//!
//! Both score vectors routinely contain ties (human scores are averages of
//! five {0,1,2} annotations; centrality measures assign identical weights to
//! symmetric edges), so Appendix E breaks ties by drawing the top-k set
//! uniformly at random among tied candidates and *averaging the hit rate
//! over 100 draws*. [`topk_hit_rate_expected`] implements exactly that;
//! [`topk_hit_rate`] is the deterministic (first-index) variant for tests.

use rand::rngs::StdRng;
use rand::Rng;

/// Indices of the `k` largest values, ties broken by ascending index.
fn topk_deterministic(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k.min(scores.len()));
    idx
}

/// Indices of the `k` largest values with *random* tie-breaking.
fn topk_random(scores: &[f64], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let jitter: Vec<f64> = (0..scores.len()).map(|_| rng.gen::<f64>()).collect();
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then(jitter[b].total_cmp(&jitter[a]))
    });
    idx.truncate(k.min(scores.len()));
    idx
}

fn overlap(a: &[usize], b: &[usize]) -> usize {
    a.iter().filter(|x| b.contains(x)).count()
}

/// Deterministic hit rate (ties broken by index).
pub fn topk_hit_rate(human: &[f64], explainer: &[f64], k: usize) -> f64 {
    assert_eq!(human.len(), explainer.len());
    if k == 0 || human.is_empty() {
        return 0.0;
    }
    let a = topk_deterministic(human, k);
    let b = topk_deterministic(explainer, k);
    overlap(&a, &b) as f64 / k.min(human.len()) as f64
}

/// Hit rate averaged over `draws` random tie-breaks of *both* rankings
/// (Appendix E uses 100 draws; 10 000 gave indistinguishable numbers).
pub fn topk_hit_rate_expected(
    human: &[f64],
    explainer: &[f64],
    k: usize,
    draws: usize,
    rng: &mut StdRng,
) -> f64 {
    assert_eq!(human.len(), explainer.len());
    if k == 0 || human.is_empty() || draws == 0 {
        return 0.0;
    }
    let keff = k.min(human.len());
    let mut total = 0.0;
    for _ in 0..draws {
        let a = topk_random(human, k, rng);
        let b = topk_random(explainer, k, rng);
        total += overlap(&a, &b) as f64 / keff as f64;
    }
    total / draws as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identical_rankings_hit_one() {
        let s = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(topk_hit_rate(&s, &s, 3), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(topk_hit_rate_expected(&s, &s, 3, 50, &mut rng), 1.0);
    }

    #[test]
    fn disjoint_rankings_hit_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(topk_hit_rate(&a, &b, 2), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let a = [9.0, 8.0, 1.0, 0.0];
        let b = [9.0, 0.0, 8.0, 1.0];
        // top2(a) = {0,1}, top2(b) = {0,2} → 1/2.
        assert_eq!(topk_hit_rate(&a, &b, 2), 0.5);
    }

    #[test]
    fn k_larger_than_len_is_clamped() {
        let a = [1.0, 2.0];
        assert_eq!(topk_hit_rate(&a, &a, 10), 1.0);
    }

    #[test]
    fn expected_hit_rate_for_full_ties_matches_hypergeometric_mean() {
        // All scores tied: top-k sets are uniform k-subsets; the expected
        // overlap of two independent uniform k-subsets of n is k²/n.
        let n = 10;
        let k = 4;
        let a = vec![1.0; n];
        let b = vec![1.0; n];
        let mut rng = StdRng::seed_from_u64(2);
        let h = topk_hit_rate_expected(&a, &b, k, 20_000, &mut rng);
        let expected = k as f64 / n as f64; // E[overlap]/k = k/n
        assert!((h - expected).abs() < 0.02, "h={h} expected={expected}");
    }

    #[test]
    fn random_tie_break_only_affects_ties() {
        // Distinct scores: expected == deterministic.
        let a = [3.0, 1.0, 4.0, 1.5, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        let det = topk_hit_rate(&a, &b, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let exp = topk_hit_rate_expected(&a, &b, 2, 200, &mut rng);
        assert!((det - exp).abs() < 1e-12);
    }
}
