//! The thirteen centrality measures of Table 1, implemented from scratch.
//!
//! Per Appendix F the paper computes edge weights two ways:
//!
//! 1. **edge centralities** on the community graph itself — edge
//!    betweenness and edge load;
//! 2. **node centralities on the line graph** — betweenness, closeness,
//!    degree, eigenvector, harmonic, load, subgraph, communicability
//!    betweenness, current-flow betweenness (exact + approximate) and
//!    current-flow closeness — so each line-graph node score becomes the
//!    weight of its underlying edge.
//!
//! All functions take a [`SimpleGraph`] (undirected adjacency lists) and are
//! validated against hand-computed / networkx values on canonical graphs in
//! the tests.

use rand::rngs::StdRng;
use rand::Rng;

use xfraud_hetgraph::{line_graph, HetGraph};
use xfraud_tensor::Tensor;

use crate::linalg::{laplacian_pinv, matrix_exp};

/// A plain undirected graph for centrality computation.
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    pub adj: Vec<Vec<usize>>,
}

impl SimpleGraph {
    pub fn new(n: usize) -> Self {
        SimpleGraph {
            adj: vec![Vec::new(); n],
        }
    }

    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.adj[u].push(v);
        self.adj[v].push(u);
    }

    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Unique undirected edges `(min, max)`, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The undirected view of a heterogeneous community graph.
    pub fn from_het(g: &HetGraph) -> (SimpleGraph, Vec<(usize, usize)>) {
        let mut sg = SimpleGraph::new(g.n_nodes());
        let links = g.undirected_links();
        for &(u, v) in &links {
            sg.add_edge(u, v);
        }
        (sg, links)
    }

    /// The line graph as a [`SimpleGraph`] plus the link each line-node
    /// represents.
    pub fn line_graph_of(g: &HetGraph) -> (SimpleGraph, Vec<(usize, usize)>) {
        let lg = line_graph(g);
        let mut sg = SimpleGraph::new(lg.n_nodes());
        for (u, nbrs) in lg.adj.iter().enumerate() {
            for &v in nbrs {
                if u < v {
                    sg.add_edge(u, v);
                }
            }
        }
        (sg, lg.endpoints)
    }

    fn adjacency_matrix(&self) -> Tensor {
        let n = self.n();
        let mut a = Tensor::zeros(n, n);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                a.set(u, v, 1.0);
            }
        }
        a
    }

    fn laplacian(&self) -> Tensor {
        let n = self.n();
        let mut l = Tensor::zeros(n, n);
        for (u, nbrs) in self.adj.iter().enumerate() {
            l.set(u, u, nbrs.len() as f32);
            for &v in nbrs {
                l.set(u, v, -1.0);
            }
        }
        l
    }

    fn bfs(&self, s: usize) -> Bfs {
        let n = self.n();
        let mut dist = vec![usize::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        dist[s] = 0;
        sigma[s] = 1.0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        Bfs {
            dist,
            sigma,
            preds,
            order,
        }
    }
}

struct Bfs {
    dist: Vec<usize>,
    sigma: Vec<f64>,
    preds: Vec<Vec<usize>>,
    order: Vec<usize>,
}

/// networkx's normalisation for undirected node betweenness/load applied to
/// the Brandes raw sums (which count each unordered pair from both
/// endpoints): `1/((n-1)(n-2))`.
fn node_pair_scale(n: usize) -> f64 {
    if n > 2 {
        1.0 / ((n - 1) as f64 * (n - 2) as f64)
    } else {
        1.0
    }
}

/// networkx's normalisation for undirected *edge* betweenness/load applied
/// to double-counted raw sums: `1/(n(n-1))`.
fn edge_pair_scale(n: usize) -> f64 {
    if n > 1 {
        1.0 / (n as f64 * (n - 1) as f64)
    } else {
        1.0
    }
}

/// Degree centrality `deg / (n-1)`.
pub fn degree(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    let denom = (n.max(2) - 1) as f64;
    g.adj.iter().map(|nb| nb.len() as f64 / denom).collect()
}

/// Closeness with networkx's reachable-fraction scaling:
/// `C(u) = (r-1)/Σd · (r-1)/(n-1)` where `r` counts reachable nodes.
pub fn closeness(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    (0..n)
        .map(|u| {
            let bfs = g.bfs(u);
            let reach: Vec<usize> = (0..n)
                .filter(|&v| v != u && bfs.dist[v] != usize::MAX)
                .collect();
            let total: usize = reach.iter().map(|&v| bfs.dist[v]).sum();
            if reach.is_empty() || total == 0 {
                0.0
            } else {
                let r = reach.len() as f64;
                (r / total as f64) * (r / (n - 1) as f64)
            }
        })
        .collect()
}

/// Harmonic centrality `Σ 1/d(u,v)`.
pub fn harmonic(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    (0..n)
        .map(|u| {
            let bfs = g.bfs(u);
            (0..n)
                .filter(|&v| v != u && bfs.dist[v] != usize::MAX)
                .map(|v| 1.0 / bfs.dist[v] as f64)
                .sum()
        })
        .collect()
}

/// Node betweenness via Brandes, normalised.
pub fn betweenness(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    let mut bc = vec![0.0f64; n];
    for s in 0..n {
        let bfs = g.bfs(s);
        let mut delta = vec![0.0f64; n];
        for &w in bfs.order.iter().rev() {
            for &v in &bfs.preds[w] {
                delta[v] += bfs.sigma[v] / bfs.sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
    }
    let scale = node_pair_scale(n);
    bc.iter_mut().for_each(|b| *b *= scale);
    bc
}

/// Edge betweenness via Brandes' edge accumulation, normalised by
/// `2/(n(n-1))` as networkx does for undirected graphs.
pub fn edge_betweenness(g: &SimpleGraph) -> Vec<((usize, usize), f64)> {
    let n = g.n();
    let edges = g.edges();
    let index: std::collections::HashMap<(usize, usize), usize> =
        edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let mut eb = vec![0.0f64; edges.len()];
    for s in 0..n {
        let bfs = g.bfs(s);
        let mut delta = vec![0.0f64; n];
        for &w in bfs.order.iter().rev() {
            for &v in &bfs.preds[w] {
                let c = bfs.sigma[v] / bfs.sigma[w] * (1.0 + delta[w]);
                let key = (v.min(w), v.max(w));
                eb[index[&key]] += c;
                delta[v] += c;
            }
        }
    }
    let scale = edge_pair_scale(n);
    edges
        .into_iter()
        .zip(eb)
        .map(|(e, b)| (e, b * scale))
        .collect()
}

/// Goh-style load centrality: a unit of "flow" from every source to every
/// other node splits *equally among predecessors* at each branch (this is
/// what distinguishes load from betweenness). Normalised like betweenness.
pub fn load(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    let mut lc = vec![0.0f64; n];
    for s in 0..n {
        let bfs = g.bfs(s);
        let mut b = vec![1.0f64; n];
        for &w in bfs.order.iter().rev() {
            if w == s {
                continue;
            }
            let np = bfs.preds[w].len() as f64;
            if np == 0.0 {
                continue;
            }
            let share = b[w] / np;
            for &v in &bfs.preds[w] {
                b[v] += share;
            }
        }
        for v in 0..n {
            if v != s && bfs.dist[v] != usize::MAX {
                lc[v] += b[v] - 1.0;
            }
        }
    }
    let scale = node_pair_scale(n);
    lc.iter_mut().for_each(|x| *x *= scale);
    lc
}

/// Edge load: the per-edge flow of the same splitting process.
pub fn edge_load(g: &SimpleGraph) -> Vec<((usize, usize), f64)> {
    let n = g.n();
    let edges = g.edges();
    let index: std::collections::HashMap<(usize, usize), usize> =
        edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let mut el = vec![0.0f64; edges.len()];
    for s in 0..n {
        let bfs = g.bfs(s);
        let mut b = vec![1.0f64; n];
        for &w in bfs.order.iter().rev() {
            if w == s {
                continue;
            }
            let np = bfs.preds[w].len() as f64;
            if np == 0.0 {
                continue;
            }
            let share = b[w] / np;
            for &v in &bfs.preds[w] {
                b[v] += share;
                let key = (v.min(w), v.max(w));
                el[index[&key]] += share;
            }
        }
    }
    let scale = edge_pair_scale(n);
    edges
        .into_iter()
        .zip(el)
        .map(|(e, l)| (e, l * scale))
        .collect()
}

/// Eigenvector centrality by power iteration on the adjacency matrix.
pub fn eigenvector(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut x = vec![1.0f64 / (n as f64).sqrt(); n];
    for _ in 0..200 {
        // Iterate on A + I: same eigenvectors, but the +I shift breaks the
        // period-2 oscillation power iteration hits on bipartite graphs.
        let mut next = x.clone();
        for (u, nbrs) in g.adj.iter().enumerate() {
            for &v in nbrs {
                next[u] += x[v];
            }
        }
        let norm: f64 = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return x; // edgeless graph: stay uniform
        }
        next.iter_mut().for_each(|v| *v /= norm);
        x = next;
    }
    x
}

/// Subgraph centrality: `diag(e^A)` (Estrada & Rodríguez-Velázquez).
pub fn subgraph(g: &SimpleGraph) -> Vec<f64> {
    let e = matrix_exp(&g.adjacency_matrix());
    (0..g.n()).map(|i| e.get(i, i) as f64).collect()
}

/// Communicability betweenness (Estrada et al.): how much total
/// communicability drops when a node's edges are removed.
pub fn communicability_betweenness(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    if n < 3 {
        return vec![0.0; n];
    }
    let a = g.adjacency_matrix();
    let ea = matrix_exp(&a);
    let denom = ((n - 1) * (n - 1) - (n - 1)) as f64;
    (0..n)
        .map(|r| {
            // Remove r's edges.
            let mut ar = a.clone();
            for c in 0..n {
                ar.set(r, c, 0.0);
                ar.set(c, r, 0.0);
            }
            let er = matrix_exp(&ar);
            let mut total = 0.0f64;
            for p in 0..n {
                for q in 0..n {
                    if p == q || p == r || q == r {
                        continue;
                    }
                    let gpq = ea.get(p, q) as f64;
                    if gpq.abs() < 1e-12 {
                        continue;
                    }
                    total += (gpq - er.get(p, q) as f64) / gpq;
                }
            }
            total / denom
        })
        .collect()
}

/// Exact current-flow betweenness via the Laplacian pseudo-inverse
/// (Newman's random-walk betweenness). Falls back to zeros on disconnected
/// graphs, which the community extraction rules out in practice.
pub fn current_flow_betweenness(g: &SimpleGraph) -> Vec<f64> {
    cfb_impl(g, None, &mut None)
}

/// Sampling approximation of current-flow betweenness over `k` random
/// source-target pairs (the "approximate current flow betweenness" row of
/// Table 1).
pub fn approx_current_flow_betweenness(g: &SimpleGraph, k: usize, rng: &mut StdRng) -> Vec<f64> {
    cfb_impl(g, Some(k), &mut Some(rng))
}

fn cfb_impl(g: &SimpleGraph, sample: Option<usize>, rng: &mut Option<&mut StdRng>) -> Vec<f64> {
    let n = g.n();
    if n < 3 {
        return vec![0.0; n];
    }
    let Some(gamma) = laplacian_pinv(&g.laplacian()) else {
        return vec![0.0; n];
    };
    let edges = g.edges();
    let pairs: Vec<(usize, usize)> = match sample {
        Some(k) => {
            let rng = rng.as_mut().expect("rng required for sampling");
            (0..k)
                .map(|_| {
                    let s = rng.gen_range(0..n);
                    let mut t = rng.gen_range(0..n - 1);
                    if t >= s {
                        t += 1;
                    }
                    (s.min(t), s.max(t))
                })
                .collect()
        }
        None => {
            let mut v = Vec::with_capacity(n * (n - 1) / 2);
            for s in 0..n {
                for t in s + 1..n {
                    v.push((s, t));
                }
            }
            v
        }
    };
    let total_pairs = (n * (n - 1) / 2) as f64;
    let scale = total_pairs / pairs.len() as f64;
    let mut cfb = vec![0.0f64; n];
    for &(s, t) in &pairs {
        for &(u, v) in &edges {
            // Current through edge (u,v) for unit injection at s, removal at t.
            let i = (gamma.get(u, s) - gamma.get(u, t)) - (gamma.get(v, s) - gamma.get(v, t));
            let flow = (i as f64).abs() / 2.0;
            cfb[u] += flow;
            cfb[v] += flow;
        }
        // Endpoints carry the full unit by convention; networkx then
        // subtracts it via the (·−1) in its closed form — we simply skip
        // adding it, matching rankings.
    }
    let rescale = node_pair_scale(n) * 2.0; // CFB sums unordered pairs once
    cfb.iter_mut().for_each(|x| *x *= rescale * scale);
    cfb
}

/// Current-flow closeness = information centrality:
/// `C(v) = (n-1) / Σ_u (Γ_vv + Γ_uu − 2Γ_uv)`.
pub fn current_flow_closeness(g: &SimpleGraph) -> Vec<f64> {
    let n = g.n();
    if n < 2 {
        return vec![0.0; n];
    }
    let Some(gamma) = laplacian_pinv(&g.laplacian()) else {
        return vec![0.0; n];
    };
    (0..n)
        .map(|v| {
            let total: f64 = (0..n)
                .filter(|&u| u != v)
                .map(|u| (gamma.get(v, v) + gamma.get(u, u) - 2.0 * gamma.get(u, v)) as f64)
                .sum();
            if total <= 0.0 {
                0.0
            } else {
                (n - 1) as f64 / total
            }
        })
        .collect()
}

/// PageRank of the line-graph nodes, computed by the parallel GAP kernel
/// (`xfraud_kernels::pagerank`). Not a Table-1 row — an additional feature
/// source layered on the paper's thirteen.
pub fn kernel_pagerank(g: &SimpleGraph) -> Vec<f64> {
    match xfraud_kernels::FlatCsr::from_adj(&g.adj) {
        Ok(flat) => xfraud_kernels::pagerank(&flat, &xfraud_kernels::KernelConfig::default()),
        Err(_) => vec![0.0; g.n()],
    }
}

/// k-core numbers of the line-graph nodes via the Batagelj–Zaveršnik kernel
/// (`xfraud_kernels::core_numbers`). Not a Table-1 row.
pub fn kernel_kcore(g: &SimpleGraph) -> Vec<f64> {
    match xfraud_kernels::FlatCsr::from_adj(&g.adj) {
        Ok(flat) => xfraud_kernels::core_numbers(&flat)
            .into_iter()
            .map(f64::from)
            .collect(),
        Err(_) => vec![0.0; g.n()],
    }
}

/// The thirteen Table-1 centrality rows, plus two kernel-backed extras
/// ([`Measure::KernelPageRank`], [`Measure::KernelKCore`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    EdgeBetweenness,
    EdgeLoad,
    ApproxCurrentFlowBetweenness,
    Betweenness,
    Closeness,
    CommunicabilityBetweenness,
    CurrentFlowBetweenness,
    CurrentFlowCloseness,
    Degree,
    Eigenvector,
    Harmonic,
    Load,
    Subgraph,
    /// GAP-kernel PageRank on the line graph (extra feature source).
    KernelPageRank,
    /// GAP-kernel k-core numbers on the line graph (extra feature source).
    KernelKCore,
}

/// All measures in the row order of Table 1.
pub const ALL_MEASURES: [Measure; 13] = [
    Measure::EdgeBetweenness,
    Measure::EdgeLoad,
    Measure::ApproxCurrentFlowBetweenness,
    Measure::Betweenness,
    Measure::Closeness,
    Measure::CommunicabilityBetweenness,
    Measure::CurrentFlowBetweenness,
    Measure::CurrentFlowCloseness,
    Measure::Degree,
    Measure::Eigenvector,
    Measure::Harmonic,
    Measure::Load,
    Measure::Subgraph,
];

/// Table 1 plus the kernel-backed extras — the full feature-source sweep the
/// hit-rate harness reports.
pub const EXTENDED_MEASURES: [Measure; 15] = [
    Measure::EdgeBetweenness,
    Measure::EdgeLoad,
    Measure::ApproxCurrentFlowBetweenness,
    Measure::Betweenness,
    Measure::Closeness,
    Measure::CommunicabilityBetweenness,
    Measure::CurrentFlowBetweenness,
    Measure::CurrentFlowCloseness,
    Measure::Degree,
    Measure::Eigenvector,
    Measure::Harmonic,
    Measure::Load,
    Measure::Subgraph,
    Measure::KernelPageRank,
    Measure::KernelKCore,
];

impl Measure {
    pub fn name(self) -> &'static str {
        match self {
            Measure::EdgeBetweenness => "edge betweenness",
            Measure::EdgeLoad => "edge load",
            Measure::ApproxCurrentFlowBetweenness => "approximate current flow betweenness",
            Measure::Betweenness => "betweenness",
            Measure::Closeness => "closeness",
            Measure::CommunicabilityBetweenness => "communicability betweenness",
            Measure::CurrentFlowBetweenness => "current flow betweenness",
            Measure::CurrentFlowCloseness => "current flow closeness",
            Measure::Degree => "degree",
            Measure::Eigenvector => "eigenvector",
            Measure::Harmonic => "harmonic",
            Measure::Load => "load",
            Measure::Subgraph => "subgraph",
            Measure::KernelPageRank => "pagerank (kernel)",
            Measure::KernelKCore => "k-core (kernel)",
        }
    }
}

/// Edge weights of a community under one measure: edge centralities run on
/// the community graph; node centralities run on its line graph (Appendix
/// F). Returned aligned with `g.undirected_links()`.
pub fn community_edge_weights(g: &HetGraph, measure: Measure, rng: &mut StdRng) -> Vec<f64> {
    match measure {
        Measure::EdgeBetweenness | Measure::EdgeLoad => {
            let (sg, links) = SimpleGraph::from_het(g);
            let computed = match measure {
                Measure::EdgeBetweenness => edge_betweenness(&sg),
                _ => edge_load(&sg),
            };
            let map: std::collections::HashMap<(usize, usize), f64> =
                computed.into_iter().collect();
            links
                .iter()
                .map(|&(u, v)| map.get(&(u.min(v), u.max(v))).copied().unwrap_or(0.0))
                .collect()
        }
        _ => {
            let (lg, endpoints) = SimpleGraph::line_graph_of(g);
            let scores = match measure {
                Measure::ApproxCurrentFlowBetweenness => {
                    let k = (lg.n() * 2).max(8);
                    approx_current_flow_betweenness(&lg, k, rng)
                }
                Measure::Betweenness => betweenness(&lg),
                Measure::Closeness => closeness(&lg),
                Measure::CommunicabilityBetweenness => communicability_betweenness(&lg),
                Measure::CurrentFlowBetweenness => current_flow_betweenness(&lg),
                Measure::CurrentFlowCloseness => current_flow_closeness(&lg),
                Measure::Degree => degree(&lg),
                Measure::Eigenvector => eigenvector(&lg),
                Measure::Harmonic => harmonic(&lg),
                Measure::Load => load(&lg),
                Measure::Subgraph => subgraph(&lg),
                Measure::KernelPageRank => kernel_pagerank(&lg),
                Measure::KernelKCore => kernel_kcore(&lg),
                _ => unreachable!("edge measures handled above"),
            };
            // Align line-graph scores with undirected_links() order.
            let links = g.undirected_links();
            let map: std::collections::HashMap<(usize, usize), f64> = endpoints
                .iter()
                .zip(&scores)
                .map(|(&(u, v), &s)| ((u.min(v), u.max(v)), s))
                .collect();
            links
                .iter()
                .map(|&(u, v)| map.get(&(u.min(v), u.max(v))).copied().unwrap_or(0.0))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Path 0-1-2-3.
    fn path4() -> SimpleGraph {
        let mut g = SimpleGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    /// Star with centre 0 and leaves 1..=4.
    fn star5() -> SimpleGraph {
        let mut g = SimpleGraph::new(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        g
    }

    #[test]
    fn degree_matches_networkx() {
        let d = degree(&star5());
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn betweenness_path4_matches_networkx() {
        // networkx: [0, 2/3, 2/3, 0]
        let b = betweenness(&path4());
        assert!(b[0].abs() < 1e-9);
        assert!((b[1] - 2.0 / 3.0).abs() < 1e-9, "b1 = {}", b[1]);
        assert!((b[2] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_star_centre_is_one() {
        let b = betweenness(&star5());
        assert!((b[0] - 1.0).abs() < 1e-9);
        assert!(b[1].abs() < 1e-9);
    }

    #[test]
    fn load_equals_betweenness_on_trees() {
        // With unique shortest paths the split never branches.
        let b = betweenness(&path4());
        let l = load(&path4());
        for (x, y) in b.iter().zip(&l) {
            assert!((x - y).abs() < 1e-9, "{b:?} vs {l:?}");
        }
    }

    #[test]
    fn load_differs_from_betweenness_when_predecessor_counts_are_unequal() {
        // Betweenness weights predecessors by shortest-path counts σ; load
        // splits equally. They diverge when a node's predecessors carry
        // unequal σ: here node 6 is reached via node 3 (σ=2: through 1 or
        // 2) and via node 5 (σ=1), so betweenness gives node 3 weight 2/3
        // of the (0,6) pair while load gives it 1/2.
        let mut g = SimpleGraph::new(7);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 6);
        g.add_edge(0, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        let b = betweenness(&g);
        let l = load(&g);
        let same = b.iter().zip(&l).all(|(x, y)| (x - y).abs() < 1e-9);
        assert!(
            !same,
            "load must differ from betweenness here: {b:?} vs {l:?}"
        );
    }

    #[test]
    fn closeness_path4_matches_networkx() {
        // networkx: [0.5, 0.75, 0.75, 0.5]
        let c = closeness(&path4());
        assert!((c[0] - 0.5).abs() < 1e-9);
        assert!((c[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn harmonic_path4_matches_networkx() {
        // node0: 1 + 1/2 + 1/3 = 1.8333
        let h = harmonic(&path4());
        assert!((h[0] - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_star_centre_dominates() {
        let e = eigenvector(&star5());
        assert!(e[0] > e[1]);
        // networkx: centre ≈ 1/√2, leaves ≈ 0.3536.
        assert!((e[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((e[1] - 0.3536).abs() < 1e-3);
    }

    #[test]
    fn edge_betweenness_path4_matches_networkx() {
        // networkx edge_betweenness_centrality(path_graph(4)):
        // {(0,1): 0.5, (1,2): 2/3, (2,3): 0.5}.
        let eb = edge_betweenness(&path4());
        let get = |u, v| eb.iter().find(|&&(e, _)| e == (u, v)).unwrap().1;
        assert!((get(0, 1) - 0.5).abs() < 1e-9, "{}", get(0, 1));
        assert!((get(1, 2) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn edge_load_on_tree_equals_edge_betweenness() {
        let eb = edge_betweenness(&path4());
        let el = edge_load(&path4());
        for (a, b) in eb.iter().zip(&el) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn subgraph_centrality_ranks_star_centre_highest() {
        let s = subgraph(&star5());
        assert!(s[0] > s[1]);
        assert!((s[1] - s[4]).abs() < 1e-6, "leaves are symmetric");
    }

    #[test]
    fn current_flow_closeness_ranks_path_centre_highest() {
        let c = current_flow_closeness(&path4());
        assert!(c[1] > c[0]);
        assert!((c[1] - c[2]).abs() < 1e-5);
    }

    #[test]
    fn current_flow_betweenness_path_equals_shortest_path_case() {
        // On trees all current flows along the unique path, so rankings
        // match betweenness.
        let cfb = current_flow_betweenness(&path4());
        assert!(cfb[1] > cfb[0]);
        assert!((cfb[1] - cfb[2]).abs() < 1e-5);
    }

    #[test]
    fn approx_cfb_converges_to_exact() {
        let g = star5();
        let exact = current_flow_betweenness(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let approx = approx_current_flow_betweenness(&g, 4000, &mut rng);
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.1, "exact {exact:?} vs approx {approx:?}");
        }
    }

    #[test]
    fn kernel_measures_rank_hubs_like_their_classic_cousins() {
        // PageRank should agree with degree on who the star hub is, and
        // k-core must put the triangle above the tail.
        let pr = kernel_pagerank(&star5());
        assert!(pr[0] > pr[1] && (pr[1] - pr[4]).abs() < 1e-12);

        let mut tri = SimpleGraph::new(5);
        tri.add_edge(0, 1);
        tri.add_edge(1, 2);
        tri.add_edge(2, 0);
        tri.add_edge(2, 3);
        tri.add_edge(3, 4);
        let kc = kernel_kcore(&tri);
        assert_eq!(kc, vec![2.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn communicability_betweenness_star_centre_dominates() {
        let cb = communicability_betweenness(&star5());
        assert!(cb[0] > cb[1] * 2.0, "{cb:?}");
    }

    #[test]
    fn all_measures_run_on_a_community_shaped_graph() {
        use xfraud_hetgraph::{GraphBuilder, NodeType};
        let mut b = GraphBuilder::new(1);
        let p = b.add_entity(NodeType::Pmt);
        let a = b.add_entity(NodeType::Addr);
        for i in 0..4 {
            let t = b.add_txn([i as f32], Some(i % 2 == 0));
            b.link(t, p).unwrap();
            b.link(t, a).unwrap();
        }
        let g = b.finish().unwrap();
        let n_links = g.n_links();
        let mut rng = StdRng::seed_from_u64(2);
        for m in EXTENDED_MEASURES {
            let w = community_edge_weights(&g, m, &mut rng);
            assert_eq!(w.len(), n_links, "{} returned wrong arity", m.name());
            assert!(
                w.iter().all(|x| x.is_finite()),
                "{} emitted non-finite weight",
                m.name()
            );
        }
    }
}
