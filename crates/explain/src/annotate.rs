//! Simulated expert annotators (the Appendix-E substitution).
//!
//! The paper had five eBay risk experts score every node of 41 communities
//! with an importance in {0,1,2} (mean pairwise IAA 0.532; random annotators
//! score ≈ −0.006). We cannot hire eBay's BU, but our generator *knows* the
//! ground truth — which entities carried each planted fraud — so we derive a
//! true importance bucket per node from the generator's risk score and
//! simulate five annotators as noisy observers of it. The noise level is
//! chosen so the mean pairwise Cohen-κ lands near the paper's 0.53.
//!
//! Downstream everything matches Appendix E: node scores are the mean of the
//! five annotations, edge scores aggregate the two endpoint scores by
//! avg/sum/min, and the comparison to explainer weights is the top-k hit
//! rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How to turn two endpoint node scores into an edge score (Appendix E
/// found no significant difference and settled on "avg").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeAgg {
    Avg,
    Sum,
    Min,
}

impl EdgeAgg {
    pub const ALL: [EdgeAgg; 3] = [EdgeAgg::Avg, EdgeAgg::Sum, EdgeAgg::Min];

    pub fn name(self) -> &'static str {
        match self {
            EdgeAgg::Avg => "avg",
            EdgeAgg::Sum => "sum",
            EdgeAgg::Min => "min",
        }
    }

    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            EdgeAgg::Avg => (a + b) / 2.0,
            EdgeAgg::Sum => a + b,
            EdgeAgg::Min => a.min(b),
        }
    }
}

/// Annotator-simulation settings.
#[derive(Debug, Clone)]
pub struct AnnotationConfig {
    pub n_annotators: usize,
    /// Probability that an annotator mis-buckets a node by ±1.
    pub noise: f64,
    pub seed: u64,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        // noise 0.16 calibrates mean pairwise κ to ≈0.6 — between the
        // paper's mean (0.532) and its best pair (0.773). Coarse, largely
        // tied node scores are what the paper's own protocol produced (the
        // average count of edges sharing the *largest* importance is 20.9
        // of 81.6 — Appendix E), and the top-k machinery breaks those ties
        // by averaging random draws.
        AnnotationConfig {
            n_annotators: 5,
            noise: 0.16,
            seed: 17,
        }
    }
}

/// Maps generator risk scores to true importance buckets {0,1,2}.
pub fn true_importance(risk: &[f32]) -> Vec<u8> {
    risk.iter()
        .map(|&r| {
            if r < 0.35 {
                0
            } else if r < 0.6 {
                1
            } else {
                2
            }
        })
        .collect()
}

/// Seed-aware ground truth: the annotation task asks "how important is the
/// node **when the seed node prediction is made**" (Appendix E), so beyond
/// raw riskiness, the seed itself and its directly linked entities carry a
/// floor of importance — an expert always inspects the transaction's own
/// payment token / email / address / buyer first.
pub fn true_importance_for_seed(
    risk: &[f32],
    g: &xfraud_hetgraph::HetGraph,
    seed: xfraud_hetgraph::NodeId,
) -> Vec<u8> {
    let mut t = true_importance(risk);
    t[seed] = 2;
    for u in g.neighbors(seed) {
        t[u] = t[u].max(1);
        // Entities both linked to the seed AND channelling risky traffic
        // are the prime suspects.
        if risk[u] >= 0.35 {
            t[u] = 2;
        }
    }
    // Heavily shared entities (warehouses, common tokens) draw annotator
    // attention regardless of label — they are the evidence one checks
    // (compare Fig. 11's "generic shipping address" discussion). Extreme
    // hubs are rated as important as risky nodes.
    for (v, tv) in t.iter_mut().enumerate() {
        if g.node_type(v).is_entity() {
            let deg = g.degree(v);
            if deg >= 8 {
                *tv = 2;
            } else if deg >= 4 {
                *tv = (*tv).max(1);
            }
        }
    }
    t
}

/// Simulates `cfg.n_annotators` noisy annotators over the true buckets.
///
/// Noise is bucket-dependent: experts are near-unanimous on the obviously
/// important nodes (the paper's own edge-score statistics imply ~21 edges
/// per 81-edge community tied at the *maximum* importance, which requires
/// saturated agreement at the top) and disagree mostly on the mid bucket.
pub fn simulate_annotations(truth: &[u8], cfg: &AnnotationConfig) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.n_annotators)
        .map(|_| {
            truth
                .iter()
                .map(|&t| {
                    let flip_prob = match t {
                        2 => 0.3 * cfg.noise,
                        1 => 2.0 * cfg.noise,
                        _ => 0.8 * cfg.noise,
                    }
                    .clamp(0.0, 0.95);
                    if rng.gen_bool(flip_prob) {
                        // Slip one bucket up or down (clamped).
                        if rng.gen_bool(0.5) {
                            t.saturating_sub(1)
                        } else {
                            (t + 1).min(2)
                        }
                    } else {
                        t
                    }
                })
                .collect()
        })
        .collect()
}

/// Uniform-random annotators — the paper's sanity baseline (IAA ≈ 0).
pub fn random_annotations(n_nodes: usize, cfg: &AnnotationConfig) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbad);
    (0..cfg.n_annotators)
        .map(|_| (0..n_nodes).map(|_| rng.gen_range(0..=2u8)).collect())
        .collect()
}

/// Mean node importance across annotators — the paper's "average node
/// importance score ... Σ annotation_i / 5".
pub fn node_scores(annotations: &[Vec<u8>]) -> Vec<f64> {
    assert!(!annotations.is_empty());
    let n = annotations[0].len();
    let mut scores = vec![0.0f64; n];
    for a in annotations {
        assert_eq!(a.len(), n);
        for (s, &v) in scores.iter_mut().zip(a) {
            *s += v as f64;
        }
    }
    scores
        .iter_mut()
        .for_each(|s| *s /= annotations.len() as f64);
    scores
}

/// Edge importance from node scores over an undirected link list.
pub fn edge_scores(node_scores: &[f64], links: &[(usize, usize)], agg: EdgeAgg) -> Vec<f64> {
    links
        .iter()
        .map(|&(u, v)| agg.apply(node_scores[u], node_scores[v]))
        .collect()
}

/// Cohen's κ between two categorical annotators.
pub fn cohen_kappa(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let k = 3usize;
    let mut conf = vec![vec![0usize; k]; k];
    for (&x, &y) in a.iter().zip(b) {
        conf[x as usize][y as usize] += 1;
    }
    let po: f64 = (0..k).map(|i| conf[i][i]).sum::<usize>() as f64 / n as f64;
    let pe: f64 = (0..k)
        .map(|i| {
            let row: usize = conf[i].iter().sum();
            let col: usize = (0..k).map(|j| conf[j][i]).sum();
            (row as f64 / n as f64) * (col as f64 / n as f64)
        })
        .sum();
    if (1.0 - pe).abs() < 1e-12 {
        return 0.0;
    }
    (po - pe) / (1.0 - pe)
}

/// Mean pairwise Cohen-κ across all annotator pairs — the paper's IAA.
pub fn mean_pairwise_iaa(annotations: &[Vec<u8>]) -> f64 {
    let m = annotations.len();
    if m < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0;
    for i in 0..m {
        for j in i + 1..m {
            total += cohen_kappa(&annotations[i], &annotations[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kappa_perfect_agreement_is_one() {
        let a = vec![0u8, 1, 2, 0, 1, 2];
        assert!((cohen_kappa(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_of_random_annotators_is_near_zero() {
        let cfg = AnnotationConfig {
            seed: 5,
            ..AnnotationConfig::default()
        };
        let anns = random_annotations(3000, &cfg);
        let iaa = mean_pairwise_iaa(&anns);
        assert!(iaa.abs() < 0.05, "random IAA = {iaa} (paper: -0.006)");
    }

    #[test]
    fn simulated_iaa_lands_near_the_papers_value() {
        // A realistic bucket mix: mostly unimportant nodes.
        let truth: Vec<u8> = (0..2000)
            .map(|i| {
                if i % 10 == 0 {
                    2
                } else if i % 5 == 0 {
                    1
                } else {
                    0
                }
            })
            .collect();
        let anns = simulate_annotations(&truth, &AnnotationConfig::default());
        let iaa = mean_pairwise_iaa(&anns);
        assert!(
            (0.35..0.7).contains(&iaa),
            "IAA = {iaa}, paper reports 0.532"
        );
    }

    #[test]
    fn node_scores_average_annotators() {
        let anns = vec![vec![0u8, 2], vec![2, 2], vec![1, 2]];
        let s = node_scores(&anns);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_aggregations_match_definitions() {
        let scores = [2.0, 0.5];
        let links = [(0usize, 1usize)];
        assert_eq!(edge_scores(&scores, &links, EdgeAgg::Avg), vec![1.25]);
        assert_eq!(edge_scores(&scores, &links, EdgeAgg::Sum), vec![2.5]);
        assert_eq!(edge_scores(&scores, &links, EdgeAgg::Min), vec![0.5]);
    }

    #[test]
    fn true_importance_buckets_risk() {
        assert_eq!(true_importance(&[0.1, 0.5, 0.9]), vec![0, 1, 2]);
    }

    #[test]
    fn annotations_are_deterministic_per_seed() {
        let truth = vec![1u8; 50];
        let cfg = AnnotationConfig::default();
        assert_eq!(
            simulate_annotations(&truth, &cfg),
            simulate_annotations(&truth, &cfg)
        );
    }
}
