//! Graphviz DOT rendering of communities with explainer edge weights — the
//! tool behind the paper's case-study figures (6, 11, 16, 17): "the thicker
//! an edge is, the stronger the connection".

use std::fmt::Write as _;

use xfraud_hetgraph::{Community, NodeType};

/// Renders a community as a Graphviz `graph` (undirected, per the paper's
/// footnote 4). Node styling encodes type and ground-truth label:
/// transactions are boxes (red = fraud, green = legit, grey = unlabelled),
/// entities are ellipses labelled by type. Edge pen width scales with the
/// supplied weight (aligned with `community.graph.undirected_links()`).
pub fn community_dot(community: &Community, edge_weights: &[f64], title: &str) -> String {
    let g = &community.graph;
    let links = g.undirected_links();
    assert_eq!(
        links.len(),
        edge_weights.len(),
        "weights must align with undirected links"
    );

    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &w in edge_weights {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    let span = if (hi - lo) > 1e-12 { hi - lo } else { 1.0 };

    let mut out = String::new();
    let _ = writeln!(out, "graph community {{");
    let _ = writeln!(out, "  label=\"{title}\";");
    let _ = writeln!(out, "  layout=neato; overlap=false;");
    for v in 0..g.n_nodes() {
        let ty = g.node_type(v);
        let seed_mark = if v == community.seed {
            ", peripheries=2"
        } else {
            ""
        };
        match ty {
            NodeType::Txn => {
                let color = match g.label(v) {
                    Some(true) => "#d62728",
                    Some(false) => "#2ca02c",
                    None => "#aaaaaa",
                };
                let _ = writeln!(
                    out,
                    "  n{v} [shape=box, style=filled, fillcolor=\"{color}\", label=\"txn {v}\"{seed_mark}];"
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  n{v} [shape=ellipse, label=\"{} {v}\"{seed_mark}];",
                    ty.label()
                );
            }
        }
    }
    for (&(u, v), &w) in links.iter().zip(edge_weights) {
        let width = 0.5 + 4.0 * (w - lo) / span;
        let _ = writeln!(out, "  n{u} -- n{v} [penwidth={width:.2}];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_hetgraph::{community_of, GraphBuilder};

    fn community() -> Community {
        let mut b = GraphBuilder::new(1);
        let t0 = b.add_txn([0.0], Some(true));
        let t1 = b.add_txn([0.0], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        let g = b.finish().unwrap();
        community_of(&g, t0, usize::MAX).unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let c = community();
        let dot = community_dot(&c, &[0.9, 0.1], "tp case");
        assert!(dot.starts_with("graph community {"));
        assert!(dot.contains("tp case"));
        assert!(dot.matches("shape=box").count() == 2);
        assert!(dot.matches(" -- ").count() == 2);
        // Fraud seed is red and double-ringed.
        assert!(dot.contains("#d62728"));
        assert!(dot.contains("peripheries=2"));
        // Unlabelled txn is grey.
        assert!(dot.contains("#aaaaaa"));
    }

    #[test]
    fn heavier_edges_get_wider_pens() {
        let c = community();
        let dot = community_dot(&c, &[1.0, 0.0], "w");
        let heavy = dot.lines().find(|l| l.contains("penwidth=4.50")).is_some();
        let light = dot.lines().find(|l| l.contains("penwidth=0.50")).is_some();
        assert!(heavy && light, "{dot}");
    }

    #[test]
    #[should_panic(expected = "weights must align")]
    fn misaligned_weights_panic() {
        let c = community();
        let _ = community_dot(&c, &[1.0], "bad");
    }
}
