//! Small dense linear-algebra helpers for the centrality measures.
//!
//! Communities average 81.6 edges (so line graphs of ≲200 nodes); plain
//! O(n³) dense algorithms are both simplest and fastest at this scale.

use xfraud_tensor::Tensor;

/// Solves `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. Returns `None` if `A` is (numerically) singular.
#[allow(clippy::needless_range_loop)] // elimination reads two rows of `m` at once
pub fn solve(a: &Tensor, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    // Work in f64 for conditioning.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|r| a.row(r).iter().map(|&v| v as f64).collect())
        .collect();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Pivot.
        let (pivot, &max) = m
            .iter()
            .enumerate()
            .skip(col)
            .map(|(r, row)| (r, &row[col]))
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())?;
        if max.abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        x.swap(col, pivot);
        // Eliminate below.
        for r in col + 1..n {
            let f = m[r][col] / m[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                m[r][c] -= f * m[col][c];
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        x[col] /= m[col][col];
        for r in 0..col {
            x[r] -= m[r][col] * x[col];
        }
    }
    Some(x)
}

/// Moore–Penrose pseudo-inverse of a graph Laplacian, via the classic
/// `pinv(L) = inv(L + J/n) − J/n` identity (valid for connected graphs).
/// Used by the current-flow centralities.
pub fn laplacian_pinv(lap: &Tensor) -> Option<Tensor> {
    let n = lap.rows();
    let shift = 1.0 / n as f32;
    let mut shifted = lap.clone();
    for r in 0..n {
        for c in 0..n {
            shifted.set(r, c, shifted.get(r, c) + shift);
        }
    }
    // Invert column by column.
    let mut inv = Tensor::zeros(n, n);
    for c in 0..n {
        let mut e = vec![0.0f64; n];
        e[c] = 1.0;
        let col = solve(&shifted, &e)?;
        for (r, v) in col.iter().enumerate() {
            inv.set(r, c, (*v as f32) - shift);
        }
    }
    Some(inv)
}

/// Matrix exponential by scaling-and-squaring with a truncated Taylor
/// series. `a` must be square; accurate for the symmetric adjacency
/// matrices the communicability measures use.
pub fn matrix_exp(a: &Tensor) -> Tensor {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    // Scale so the 1-norm is below 0.5, then square back.
    let norm = (0..n)
        .map(|c| (0..n).map(|r| a.get(r, c).abs()).sum::<f32>())
        .fold(0.0f32, f32::max);
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scale = 1.0 / (2.0f32).powi(s as i32);
    let scaled = a.map(|v| v * scale);

    // exp(scaled) ≈ Σ_{k=0}^{K} scaled^k / k!
    let mut result = identity(n);
    let mut term = identity(n);
    for k in 1..=12 {
        term = term.matmul(&scaled).expect("square");
        term.scale_assign(1.0 / k as f32);
        result.add_assign(&term).expect("same shape");
    }
    // Square s times.
    for _ in 0..s {
        result = result.matmul(&result).expect("square");
    }
    result
}

pub fn identity(n: usize) -> Tensor {
    let mut t = Tensor::zeros(n, n);
    for i in 0..n {
        t.set(i, i, 1.0);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Tensor::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn laplacian_pinv_satisfies_l_pinv_l_eq_l() {
        // Path graph 0-1-2.
        let lap = Tensor::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let pinv = laplacian_pinv(&lap).unwrap();
        let lpl = lap.matmul(&pinv).unwrap().matmul(&lap).unwrap();
        assert!(lpl.max_abs_diff(&lap) < 1e-3);
        // Effective resistance 0↔2 on a 2-edge path must be 2.
        let r = pinv.get(0, 0) + pinv.get(2, 2) - 2.0 * pinv.get(0, 2);
        assert!((r - 2.0).abs() < 1e-3, "resistance {r}");
    }

    #[test]
    fn matrix_exp_diagonal() {
        let a = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let e = matrix_exp(&a);
        assert!((e.get(0, 0) - 1.0f32.exp()).abs() < 1e-3);
        assert!((e.get(1, 1) - 2.0f32.exp()).abs() < 1e-2);
        assert!(e.get(0, 1).abs() < 1e-4);
    }

    #[test]
    fn matrix_exp_of_zero_is_identity() {
        let e = matrix_exp(&Tensor::zeros(3, 3));
        assert!(e.max_abs_diff(&identity(3)) < 1e-6);
    }

    #[test]
    fn matrix_exp_known_antisymmetric_rotation() {
        // exp([[0, -t],[t, 0]]) = rotation by t.
        let t = 0.7f32;
        let a = Tensor::from_rows(&[&[0.0, -t], &[t, 0.0]]);
        let e = matrix_exp(&a);
        assert!((e.get(0, 0) - t.cos()).abs() < 1e-4);
        assert!((e.get(1, 0) - t.sin()).abs() < 1e-4);
    }
}
