//! Node-feature-mask analysis (Appendix D): "node feature masks give high
//! weights to the node feature dimensions influential in prediction".
//!
//! The extended GNNExplainer learns one mask row per node; this module
//! aggregates those rows into per-dimension importance so an analyst can
//! read *which features* drove a flag — the feature-level half of the
//! paper's "graph level and feature level information" (§5.2).

use xfraud_tensor::Tensor;

/// Per-dimension feature importance aggregated from a `[n, F]` mask.
#[derive(Debug, Clone)]
pub struct FeatureImportance {
    /// Mean mask value per feature dimension.
    pub mean: Vec<f64>,
    /// Mean mask value per dimension over the *seed* row only.
    pub seed_row: Vec<f64>,
}

impl FeatureImportance {
    /// Aggregates an explanation's feature mask; `seed_local` is the
    /// explained node's row index within the mask.
    pub fn from_mask(mask: &Tensor, seed_local: usize) -> FeatureImportance {
        let f = mask.cols();
        let n = mask.rows().max(1) as f64;
        let mut mean = vec![0.0f64; f];
        for r in 0..mask.rows() {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += mask.get(r, c) as f64 / n;
            }
        }
        let seed_row = if seed_local < mask.rows() {
            mask.row(seed_local).iter().map(|&x| x as f64).collect()
        } else {
            vec![0.0; f]
        };
        FeatureImportance { mean, seed_row }
    }

    /// Dimensions ranked by mean importance, descending.
    pub fn ranked(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.mean.len()).collect();
        idx.sort_by(|&a, &b| self.mean[b].total_cmp(&self.mean[a]));
        idx
    }

    /// Share of the top-`k` ranked dimensions that fall inside
    /// `informative` — the recovery metric the tests and the experiment
    /// binary report (the generator knows which dimensions carry signal).
    pub fn top_k_recovery(&self, k: usize, informative: &[usize]) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let top = self.ranked();
        let hits = top
            .iter()
            .take(k)
            .filter(|d| informative.contains(d))
            .count();
        hits as f64 / k.min(self.mean.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_and_ranking() {
        // dim0 uniformly high, dim1 low, dim2 mixed.
        let mask = Tensor::from_rows(&[&[0.9, 0.1, 0.5], &[0.8, 0.2, 0.1]]);
        let fi = FeatureImportance::from_mask(&mask, 0);
        assert!((fi.mean[0] - 0.85).abs() < 1e-6);
        assert!((fi.mean[1] - 0.15).abs() < 1e-6);
        assert_eq!(fi.ranked()[0], 0);
        assert_eq!(fi.ranked()[2], 1);
        assert_eq!(
            fi.seed_row,
            [0.9f64, 0.1, 0.5]
                .iter()
                .map(|&x| x as f32 as f64)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn recovery_metric() {
        let mask = Tensor::from_rows(&[&[0.9, 0.8, 0.1, 0.2]]);
        let fi = FeatureImportance::from_mask(&mask, 0);
        assert_eq!(fi.top_k_recovery(2, &[0, 1]), 1.0);
        assert_eq!(fi.top_k_recovery(2, &[2, 3]), 0.0);
    }

    #[test]
    fn out_of_range_seed_row_is_zeros() {
        let mask = Tensor::from_rows(&[&[0.5, 0.5]]);
        let fi = FeatureImportance::from_mask(&mask, 7);
        assert_eq!(fi.seed_row, vec![0.0, 0.0]);
    }
}
