use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_gnn::{Masks, Model, SubgraphBatch};
use xfraud_hetgraph::Community;
use xfraud_nn::{AdamW, ParamStore, Session};
use xfraud_tensor::{softmax_rows, Tensor, Var};

/// Undirected edge weights aligned with a community's
/// [`xfraud_hetgraph::HetGraph::undirected_links`] order.
pub type EdgeWeights = Vec<f64>;

/// GNNExplainer hyper-parameters (Appendix D): `epochs = 100, lr = 0.01,
/// β_edge_size = 0.005, β_edge_entropy = 1, β_node_feature_size = 1,
/// β_node_feature_entropy = 0.1`. (The appendix lists
/// "β_node_feature_size" twice — a typo; we follow the reference
/// GNNExplainer defaults it mirrors, reading the second as the entropy
/// coefficient.)
#[derive(Debug, Clone)]
pub struct ExplainerConfig {
    pub epochs: usize,
    pub lr: f32,
    pub beta_edge_size: f32,
    pub beta_edge_entropy: f32,
    pub beta_feat_size: f32,
    pub beta_feat_entropy: f32,
    /// Explanation is restricted to the seed's `hops`-hop computation
    /// subgraph (the detector's receptive field): edges beyond it provably
    /// cannot influence the prediction, so their masks would be pure noise.
    /// Set to the detector's layer count.
    pub hops: usize,
    pub seed: u64,
}

impl Default for ExplainerConfig {
    fn default() -> Self {
        ExplainerConfig {
            epochs: 100,
            lr: 0.01,
            beta_edge_size: 0.005,
            beta_edge_entropy: 1.0,
            beta_feat_size: 1.0,
            beta_feat_entropy: 0.1,
            hops: 2,
            seed: 23,
        }
    }
}

/// The output of one explanation run.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Sigmoid edge-mask value per *directed* batch edge.
    pub directed_edge_mask: Vec<f32>,
    /// Unique undirected links (local min/max id pairs) of the batch.
    pub links: Vec<(usize, usize)>,
    /// Per-link weight: the larger of the two directions' masks (footnote 4
    /// of the paper — annotators can't judge direction, so we collapse).
    pub edge_weights: EdgeWeights,
    /// `[n_nodes, F]` sigmoid node-feature mask (the paper's extension: one
    /// feature mask per node, not one global mask).
    pub feature_mask: Tensor,
    /// The detector's (unmasked) predicted class for the explained node.
    pub predicted_label: usize,
    /// The detector's fraud probability for the explained node.
    pub predicted_score: f32,
}

/// The learner of Appendix D: optimises a sigmoid edge mask and a per-node
/// feature mask so that the *frozen* detector, run on the masked graph,
/// still reproduces its prediction — while the size and entropy penalties
/// push both masks to be small and crisp. "The xFraud detector is not
/// retrained during the explanation process": only the masks receive
/// optimizer steps, the detector store is read-only here.
pub struct GnnExplainer<'m, M: Model> {
    model: &'m M,
    pub cfg: ExplainerConfig,
}

impl<'m, M: Model> GnnExplainer<'m, M> {
    pub fn new(model: &'m M, cfg: ExplainerConfig) -> Self {
        GnnExplainer { model, cfg }
    }

    /// Explains the (single-target) `batch`.
    pub fn explain(&self, batch: &SubgraphBatch) -> Explanation {
        assert_eq!(batch.targets.len(), 1, "explain one node at a time");
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // 1. The detector's own prediction is the explanation target (the
        //    mutual-information view of GNNExplainer).
        let (predicted_label, predicted_score) = {
            let mut sess = Session::new();
            let logits = self
                .model
                .forward(&mut sess, batch, false, &mut rng, &Masks::none());
            let probs = softmax_rows(sess.tape.value(logits));
            let score = probs.get(0, 1);
            (usize::from(score >= 0.5), score)
        };
        let labels = Rc::new(vec![predicted_label]);

        // 2. Mask parameters, random-initialised (Appendix D: "initialized
        //    with a random edge mask 1×|E| and a random node feature mask
        //    |V|×F").
        let e = batch.n_edges();
        let n = batch.n_nodes();
        let f = batch.features.cols();
        // Small random init: ±0.1 keeps the pre-training ranking noise floor
        // well below the learned signal (±0.5 drowned low-gradient edges).
        let mut masks = ParamStore::new();
        let edge_logits = masks.register(
            "edge_mask",
            Tensor::rand_uniform(e.max(1), 1, -0.1, 0.1, &mut rng),
        );
        let feat_logits =
            masks.register("feat_mask", Tensor::rand_uniform(n, f, -0.1, 0.1, &mut rng));
        let mut opt = AdamW::new(self.cfg.lr)
            .with_weight_decay(0.0)
            .with_clip(None);

        for _ in 0..self.cfg.epochs {
            let mut sess = Session::new();
            let el = sess.param(&masks, edge_logits);
            let fl = sess.param(&masks, feat_logits);
            let edge_mask = sess.tape.sigmoid(el);
            let feat_mask = sess.tape.sigmoid(fl);

            let logits = self.model.forward(
                &mut sess,
                batch,
                false,
                &mut rng,
                &Masks {
                    edge_mask: Some(edge_mask),
                    feature_mask: Some(feat_mask),
                },
            );
            // eq. 11: detector loss on the explained node.
            let pred_loss = sess.tape.softmax_cross_entropy(logits, Rc::clone(&labels));

            // eq. 12: edge size + edge entropy.
            let edge_size = sess.tape.sum_all(edge_mask);
            let edge_size = sess.tape.scale(edge_size, self.cfg.beta_edge_size);
            let edge_ent = mean_binary_entropy(&mut sess, edge_mask);
            let edge_ent = sess.tape.scale(edge_ent, self.cfg.beta_edge_entropy);

            // eq. 13: feature size + feature entropy (both mean-normalised).
            let feat_size = sess.tape.mean_all(feat_mask);
            let feat_size = sess.tape.scale(feat_size, self.cfg.beta_feat_size);
            let feat_ent = mean_binary_entropy(&mut sess, feat_mask);
            let feat_ent = sess.tape.scale(feat_ent, self.cfg.beta_feat_entropy);

            let l1 = sess.tape.add(pred_loss, edge_size);
            let l2 = sess.tape.add(l1, edge_ent);
            let l3 = sess.tape.add(l2, feat_size);
            let loss = sess.tape.add(l3, feat_ent);

            let grads = sess.backward(loss);
            // Freeze the detector: only mask parameters are stepped.
            let mask_grads: Vec<_> = grads
                .into_iter()
                .filter(|(id, _)| masks.owns(*id))
                .collect();
            opt.step(&mut masks, &mask_grads);
        }

        // 3. Read out the masks.
        let directed_edge_mask: Vec<f32> = masks
            .value(edge_logits)
            .data()
            .iter()
            .map(|&x| sigmoid(x))
            .collect();
        let feature_mask = masks.value(feat_logits).map(sigmoid);

        // Collapse directions by max (footnote 4). BTreeMap keeps the link
        // list in key order without a separate sort (determinism rule D1).
        let mut link_weight: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (i, (&s, &d)) in batch.edge_src.iter().zip(&batch.edge_dst).enumerate() {
            let key = (s.min(d), s.max(d));
            let w = directed_edge_mask[i] as f64;
            let slot = link_weight.entry(key).or_insert(f64::NEG_INFINITY);
            if w > *slot {
                *slot = w;
            }
        }
        let links: Vec<(usize, usize)> = link_weight.keys().copied().collect();
        let edge_weights = links.iter().map(|k| link_weight[k]).collect();

        Explanation {
            directed_edge_mask,
            links,
            edge_weights,
            feature_mask,
            predicted_label,
            predicted_score,
        }
    }

    /// Explains a community seed, returning weights aligned with
    /// `community.graph.undirected_links()` — the alignment the hit-rate
    /// pipeline and the hybrid explainer rely on. Only the seed's
    /// `cfg.hops`-hop computation subgraph is masked/optimised; links
    /// outside the receptive field get weight 0.
    pub fn explain_community(&self, community: &Community) -> (Explanation, EdgeWeights) {
        let g = &community.graph;
        let hood = xfraud_hetgraph::khop_neighborhood(g, community.seed, self.cfg.hops, usize::MAX);
        let batch = SubgraphBatch::from_nodes(g, &hood, &[community.seed]);
        let explanation = self.explain(&batch);
        // Map batch-local link weights back to community node ids.
        let map: HashMap<(usize, usize), f64> = explanation
            .links
            .iter()
            .zip(&explanation.edge_weights)
            .map(|(&(a, b), &w)| {
                let (u, v) = (batch.global_ids[a], batch.global_ids[b]);
                ((u.min(v), u.max(v)), w)
            })
            .collect();
        let aligned = g
            .undirected_links()
            .iter()
            .map(|&(u, v)| map.get(&(u.min(v), u.max(v))).copied().unwrap_or(0.0))
            .collect();
        (explanation, aligned)
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// `mean( -m·ln(m) - (1-m)·ln(1-m) )` over all mask entries.
fn mean_binary_entropy(sess: &mut Session, mask: Var) -> Var {
    let eps = 1e-6;
    let log_m = sess.tape.log_eps(mask, eps);
    let neg_m = sess.tape.scale(mask, -1.0);
    let one_minus = sess.tape.add_const(neg_m, 1.0);
    let log_1m = sess.tape.log_eps(one_minus, eps);
    let t1 = sess.tape.mul(mask, log_m);
    let t2 = sess.tape.mul(one_minus, log_1m);
    let s = sess.tape.add(t1, t2);
    let s = sess.tape.scale(s, -1.0);
    sess.tape.mean_all(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use xfraud_gnn::{
        predict_scores, train_step, DetectorConfig, FullGraphSampler, Sampler, XFraudDetector,
    };
    use xfraud_hetgraph::{community_of, GraphBuilder, NodeType};
    use xfraud_nn::AdamW as Opt;

    /// A graph where fraud is *entirely* decided by being linked to a bad
    /// payment token — features carry no signal. The explainer must then
    /// put high weight on the seed→bad-pmt edge.
    fn planted_graph() -> xfraud_hetgraph::HetGraph {
        let mut b = GraphBuilder::new(2);
        let mut rng = StdRng::seed_from_u64(11);
        let bad_pmt = b.add_entity(NodeType::Pmt);
        let good_pmt = b.add_entity(NodeType::Pmt);
        let addr = b.add_entity(NodeType::Addr);
        for _ in 0..12 {
            let noise = [rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)];
            let t = b.add_txn(noise, Some(true));
            b.link(t, bad_pmt).unwrap();
            b.link(t, addr).unwrap();
        }
        for _ in 0..12 {
            let noise = [rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)];
            let t = b.add_txn(noise, Some(false));
            b.link(t, good_pmt).unwrap();
            b.link(t, addr).unwrap();
        }
        b.finish().unwrap()
    }

    fn trained_detector(g: &xfraud_hetgraph::HetGraph) -> XFraudDetector {
        let mut det = XFraudDetector::new(DetectorConfig::small(2, 7));
        let mut rng = StdRng::seed_from_u64(1);
        let targets: Vec<usize> = g.labeled_txns().iter().map(|&(v, _)| v).collect();
        let batch = FullGraphSampler.sample(g, &targets, &mut rng);
        let mut opt = Opt::new(5e-3);
        for _ in 0..60 {
            train_step(&mut det, &batch, &mut opt, &mut rng);
        }
        det
    }

    #[test]
    fn explainer_runs_and_emits_weights_in_range() {
        let g = planted_graph();
        let det = trained_detector(&g);
        let community = community_of(&g, 3, usize::MAX).unwrap();
        let explainer = GnnExplainer::new(
            &det,
            ExplainerConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let (expl, aligned) = explainer.explain_community(&community);
        assert_eq!(aligned.len(), community.graph.n_links());
        assert!(expl.edge_weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
        // The feature mask covers the seed's receptive-field subgraph.
        assert!(expl.feature_mask.rows() <= community.graph.n_nodes());
        assert!(expl.feature_mask.rows() > 0);
        assert_eq!(expl.feature_mask.cols(), 2);
    }

    #[test]
    fn explainer_upweights_the_risk_carrying_edge() {
        let g = planted_graph();
        let det = trained_detector(&g);
        // Sanity: the detector actually uses the graph.
        let mut rng = StdRng::seed_from_u64(2);
        let targets: Vec<usize> = g.labeled_txns().iter().map(|&(v, _)| v).collect();
        let batch = FullGraphSampler.sample(&g, &targets, &mut rng);
        let scores = predict_scores(&det, &batch, &mut rng);
        let (mut f_avg, mut b_avg, mut nf, mut nb) = (0.0, 0.0, 0, 0);
        for (s, &(_, y)) in scores.iter().zip(&g.labeled_txns()) {
            if y {
                f_avg += s;
                nf += 1;
            } else {
                b_avg += s;
                nb += 1;
            }
        }
        assert!(
            f_avg / nf as f32 > b_avg / nb as f32 + 0.2,
            "detector failed to learn"
        );

        // Explain a fraud seed; its edge to the bad pmt should outweigh its
        // edge to the shared (uninformative) address.
        let seed = 3; // first fraud txn node id
        let community = community_of(&g, seed, usize::MAX).unwrap();
        let explainer = GnnExplainer::new(
            &det,
            ExplainerConfig {
                epochs: 120,
                ..Default::default()
            },
        );
        let (_, weights) = explainer.explain_community(&community);
        let links = community.graph.undirected_links();
        let local_seed = community.seed;
        let bad_pmt_local = (0..community.graph.n_nodes())
            .find(|&v| {
                community.graph.node_type(v) == NodeType::Pmt
                    && community.graph.neighbors(local_seed).any(|u| u == v)
            })
            .unwrap();
        let addr_local = (0..community.graph.n_nodes())
            .find(|&v| community.graph.node_type(v) == NodeType::Addr)
            .unwrap();
        let w_of = |a: usize, b: usize| {
            links
                .iter()
                .zip(&weights)
                .find(|(&(u, v), _)| (u, v) == (a.min(b), a.max(b)))
                .map(|(_, &w)| w)
                .expect("link exists")
        };
        let w_pmt = w_of(local_seed, bad_pmt_local);
        let w_addr = w_of(local_seed, addr_local);
        assert!(
            w_pmt > w_addr,
            "risk edge ({w_pmt:.3}) should outweigh neutral edge ({w_addr:.3})"
        );
    }

    #[test]
    fn explainer_is_deterministic_per_seed() {
        let g = planted_graph();
        let det = trained_detector(&g);
        let community = community_of(&g, 3, usize::MAX).unwrap();
        let cfg = ExplainerConfig {
            epochs: 10,
            ..Default::default()
        };
        let a = GnnExplainer::new(&det, cfg.clone())
            .explain_community(&community)
            .1;
        let b = GnnExplainer::new(&det, cfg).explain_community(&community).1;
        assert_eq!(a, b);
    }
}
