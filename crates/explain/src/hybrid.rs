//! The hybrid explainer (§3.4.2, Appendix F): a learned combination
//! `A·w(c) + B·w(e)` of task-agnostic centrality weights and task-aware
//! GNNExplainer weights, trained on the first 21 communities and evaluated
//! on the last 20.
//!
//! Two fitting strategies, exactly as the paper runs them:
//!
//! * **grid** — `A ∈ {0.00, 0.01, …, 1.00}`, `B = 1 − A`, maximising the
//!   mean train hit rate (fitted per k, like Table 12's `A_Train` column);
//! * **ridge** — ridge regression of the human edge scores on `(w(c), w(e))`
//!   with the regularisation strength `α` tuned on the train hit rate.
//!
//! Weights are min-max normalised per community before combining — the two
//! families live in different ranges (centralities are graph-normalised,
//! mask weights are sigmoids), and only the ranking matters.

use rand::rngs::StdRng;

use crate::hitrate::topk_hit_rate_expected;

/// One community's aligned edge-weight vectors.
#[derive(Debug, Clone)]
pub struct CommunityWeights {
    /// Human (simulated-annotator) edge importance scores.
    pub human: Vec<f64>,
    /// Centrality edge weights `w(c)`.
    pub centrality: Vec<f64>,
    /// GNNExplainer edge weights `w(e)`.
    pub explainer: Vec<f64>,
}

/// How the coefficients were obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HybridFit {
    Grid,
    Ridge { alpha: f64 },
}

/// Appendix F experiment (1): fit polynomial feature maps of degree
/// `1..=max_degree` — combine `A·w(c)^d + B·w(e)^d` — and report the degree
/// whose grid-fitted combination maximises the mean train hit rate. The
/// paper "obtained d = 1 being the best fit".
pub fn best_polynomial_degree(
    train: &[CommunityWeights],
    max_degree: usize,
    k: usize,
    draws: usize,
    rng: &mut StdRng,
) -> (usize, f64) {
    let mut best = (1usize, f64::NEG_INFINITY);
    for d in 1..=max_degree.max(1) {
        let powered: Vec<CommunityWeights> = train
            .iter()
            .map(|cw| CommunityWeights {
                human: cw.human.clone(),
                centrality: minmax(&cw.centrality)
                    .iter()
                    .map(|x| x.powi(d as i32))
                    .collect(),
                explainer: minmax(&cw.explainer)
                    .iter()
                    .map(|x| x.powi(d as i32))
                    .collect(),
            })
            .collect();
        let fit = HybridExplainer::fit_grid(&powered, k, draws, rng);
        let h = fit.mean_hit_rate(&powered, k, draws, rng);
        // Parsimony margin: a higher degree must win by a clear gap, not by
        // Monte-Carlo jitter in the expected hit rate.
        if h > best.1 + 1e-2 {
            best = (d, h);
        }
    }
    best
}

/// The fitted combination `A·w(c) + B·w(e)`.
#[derive(Debug, Clone, Copy)]
pub struct HybridExplainer {
    pub a: f64,
    pub b: f64,
    pub fit: HybridFit,
}

/// Min-max normalisation to `[0,1]`; constant vectors map to all-zeros.
pub fn minmax(w: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in w {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if !lo.is_finite() || (hi - lo) < 1e-12 {
        return vec![0.0; w.len()];
    }
    w.iter().map(|&x| (x - lo) / (hi - lo)).collect()
}

impl HybridExplainer {
    /// Combined weights for one community.
    pub fn combine(&self, centrality: &[f64], explainer: &[f64]) -> Vec<f64> {
        let c = minmax(centrality);
        let e = minmax(explainer);
        c.iter()
            .zip(&e)
            .map(|(&cw, &ew)| self.a * cw + self.b * ew)
            .collect()
    }

    /// Mean expected top-k hit rate of this hybrid over communities.
    pub fn mean_hit_rate(
        &self,
        communities: &[CommunityWeights],
        k: usize,
        draws: usize,
        rng: &mut StdRng,
    ) -> f64 {
        let mut total = 0.0;
        for cw in communities {
            let h = self.combine(&cw.centrality, &cw.explainer);
            total += topk_hit_rate_expected(&cw.human, &h, k, draws, rng);
        }
        total / communities.len().max(1) as f64
    }

    /// Grid search `A ∈ {0, 0.01, …, 1}`, `B = 1 − A`, maximising the mean
    /// train hit rate at rank `k`.
    pub fn fit_grid(
        train: &[CommunityWeights],
        k: usize,
        draws: usize,
        rng: &mut StdRng,
    ) -> HybridExplainer {
        let mut best = HybridExplainer {
            a: 0.0,
            b: 1.0,
            fit: HybridFit::Grid,
        };
        let mut best_h = f64::NEG_INFINITY;
        for step in 0..=100 {
            let a = step as f64 / 100.0;
            let cand = HybridExplainer {
                a,
                b: 1.0 - a,
                fit: HybridFit::Grid,
            };
            let h = cand.mean_hit_rate(train, k, draws, rng);
            if h > best_h {
                best_h = h;
                best = cand;
            }
        }
        best
    }

    /// Ridge regression of human scores on `(w(c), w(e))` (per-community
    /// normalised, centred, no intercept penalty), with `α` tuned over
    /// `{0.01, …, 0.99}` by mean train hit rate averaged over `ks`.
    pub fn fit_ridge(
        train: &[CommunityWeights],
        ks: &[usize],
        draws: usize,
        rng: &mut StdRng,
    ) -> HybridExplainer {
        // Evaluate α = 0.01 first so `best` is always occupied — same
        // candidate order (and therefore identical rng draw sequence) as
        // folding it into the loop, without a panicking unwrap at the end.
        let evaluate = |alpha: f64, rng: &mut StdRng| {
            let (a, b) = ridge_coeffs(train, alpha);
            let cand = HybridExplainer {
                a,
                b,
                fit: HybridFit::Ridge { alpha },
            };
            let mean: f64 = ks
                .iter()
                .map(|&k| cand.mean_hit_rate(train, k, draws, rng))
                .sum::<f64>()
                / ks.len().max(1) as f64;
            (mean, cand)
        };
        let mut best = evaluate(0.01, rng);
        for step in 2..100 {
            let (mean, cand) = evaluate(step as f64 / 100.0, rng);
            if mean > best.0 {
                best = (mean, cand);
            }
        }
        best.1
    }
}

/// Closed-form 2-feature ridge: solves `(XᵀX + αI) β = Xᵀy` over all train
/// edges with centred features/targets.
fn ridge_coeffs(train: &[CommunityWeights], alpha: f64) -> (f64, f64) {
    let mut xs: Vec<(f64, f64)> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for cw in train {
        let c = minmax(&cw.centrality);
        let e = minmax(&cw.explainer);
        for ((&cv, &ev), &y) in c.iter().zip(&e).zip(&cw.human) {
            xs.push((cv, ev));
            ys.push(y);
        }
    }
    let n = xs.len() as f64;
    if n == 0.0 {
        return (0.5, 0.5);
    }
    let mc = xs.iter().map(|p| p.0).sum::<f64>() / n;
    let me = xs.iter().map(|p| p.1).sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut scc, mut sce, mut see, mut scy, mut sey) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (&(c, e), &y) in xs.iter().zip(&ys) {
        let (dc, de, dy) = (c - mc, e - me, y - my);
        scc += dc * dc;
        sce += dc * de;
        see += de * de;
        scy += dc * dy;
        sey += de * dy;
    }
    // 2x2 solve of [[scc+α, sce], [sce, see+α]] [a b]ᵀ = [scy sey]ᵀ.
    let det = (scc + alpha) * (see + alpha) - sce * sce;
    if det.abs() < 1e-12 {
        return (0.5, 0.5);
    }
    let a = ((see + alpha) * scy - sce * sey) / det;
    let b = ((scc + alpha) * sey - sce * scy) / det;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    /// Communities where the human scores ARE the centrality weights → the
    /// grid must pick A ≈ 1.
    fn centrality_is_truth() -> Vec<CommunityWeights> {
        (0..4)
            .map(|i| {
                let c: Vec<f64> = (0..20).map(|j| ((i * 7 + j * 3) % 13) as f64).collect();
                let e: Vec<f64> = (0..20).map(|j| ((i + j * 11) % 17) as f64).collect();
                CommunityWeights {
                    human: c.clone(),
                    centrality: c,
                    explainer: e,
                }
            })
            .collect()
    }

    #[test]
    fn grid_finds_the_dominant_source() {
        let train = centrality_is_truth();
        let fit = HybridExplainer::fit_grid(&train, 5, 20, &mut rng());
        assert!(fit.a > 0.8, "A = {} should approach 1", fit.a);
        let h = fit.mean_hit_rate(&train, 5, 20, &mut rng());
        assert!(h > 0.95, "hit rate {h}");
    }

    #[test]
    fn ridge_prefers_the_correlated_feature() {
        let train = centrality_is_truth();
        let fit = HybridExplainer::fit_ridge(&train, &[5, 10], 10, &mut rng());
        assert!(fit.a > fit.b, "a={} b={}", fit.a, fit.b);
    }

    #[test]
    fn minmax_is_idempotent_and_bounded() {
        let w = vec![3.0, -1.0, 5.0];
        let n = minmax(&w);
        assert_eq!(n, vec![4.0 / 6.0, 0.0, 1.0]);
        assert_eq!(minmax(&n), n);
        assert_eq!(minmax(&[2.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn combine_interpolates_between_sources() {
        let hx = HybridExplainer {
            a: 1.0,
            b: 0.0,
            fit: HybridFit::Grid,
        };
        let c = vec![0.0, 1.0];
        let e = vec![1.0, 0.0];
        assert_eq!(hx.combine(&c, &e), minmax(&c));
        let hx = HybridExplainer {
            a: 0.0,
            b: 1.0,
            fit: HybridFit::Grid,
        };
        assert_eq!(hx.combine(&c, &e), minmax(&e));
    }

    #[test]
    fn polynomial_degree_one_wins_on_linear_truth() {
        // Human = centrality exactly → any monotone power preserves the
        // ranking, so degree 1 ties the field and is returned first.
        let train = centrality_is_truth();
        let (d, h) = best_polynomial_degree(&train, 4, 5, 300, &mut rng());
        assert_eq!(d, 1, "paper found degree 1 best; got {d} (h={h})");
        assert!(h > 0.9);
    }

    /// The headline property (Table 4): when the two sources err on
    /// *different* communities, the hybrid's mean hit rate is at least as
    /// good as either alone.
    #[test]
    fn hybrid_is_no_worse_than_both_parents_on_mixed_truth() {
        let mut train = Vec::new();
        for i in 0..6 {
            let truth: Vec<f64> = (0..24).map(|j| ((i * 5 + j * 7) % 19) as f64).collect();
            let noise: Vec<f64> = (0..24).map(|j| ((i * 3 + j * 13) % 23) as f64).collect();
            // Alternate which source is informative.
            let (c, e) = if i % 2 == 0 {
                (truth.clone(), noise.clone())
            } else {
                (noise.clone(), truth.clone())
            };
            train.push(CommunityWeights {
                human: truth,
                centrality: c,
                explainer: e,
            });
        }
        let k = 8;
        let fit = HybridExplainer::fit_grid(&train, k, 30, &mut rng());
        let hybrid_h = fit.mean_hit_rate(&train, k, 30, &mut rng());
        let only_c = HybridExplainer {
            a: 1.0,
            b: 0.0,
            fit: HybridFit::Grid,
        }
        .mean_hit_rate(&train, k, 30, &mut rng());
        let only_e = HybridExplainer {
            a: 0.0,
            b: 1.0,
            fit: HybridFit::Grid,
        }
        .mean_hit_rate(&train, k, 30, &mut rng());
        assert!(
            hybrid_h >= only_c.max(only_e) - 0.02,
            "hybrid {hybrid_h} vs c {only_c} / e {only_e}"
        );
    }
}
