//! Cross-module tests inside the explain crate: annotation → hit rate →
//! hybrid plumbing on graphs with known structure.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xfraud_explain::annotate::{
    edge_scores, node_scores, simulate_annotations, true_importance_for_seed, AnnotationConfig,
    EdgeAgg,
};
use xfraud_explain::centrality::{community_edge_weights, Measure, ALL_MEASURES};
use xfraud_explain::{
    best_polynomial_degree, minmax, topk_hit_rate_expected, CommunityWeights, HybridExplainer,
};
use xfraud_hetgraph::{community_of, GraphBuilder, NodeType};

/// A warehouse-style community: one hub address shared by many txns (some
/// fraud), plus a tail of low-degree entities.
fn warehouse_community() -> (xfraud_hetgraph::Community, Vec<f32>) {
    let mut b = GraphBuilder::new(1);
    let warehouse = b.add_entity(NodeType::Addr);
    let mut risks = vec![0.9f32]; // the hub is the culprit
    for i in 0..10 {
        let fraud = i < 6;
        let t = b.add_txn([i as f32], Some(fraud));
        risks.push(if fraud { 0.8 } else { 0.1 });
        b.link(t, warehouse).unwrap();
        let pmt = b.add_entity(NodeType::Pmt);
        risks.push(if fraud { 0.7 } else { 0.05 });
        b.link(t, pmt).unwrap();
    }
    let g = b.finish().unwrap();
    let c = community_of(&g, 1, usize::MAX).unwrap();
    // community_of may reorder: map risks through original_ids.
    let risk_in_c: Vec<f32> = c.original_ids.iter().map(|&v| risks[v]).collect();
    (c, risk_in_c)
}

#[test]
fn annotation_pipeline_produces_aligned_edge_scores() {
    let (c, risk) = warehouse_community();
    let truth = true_importance_for_seed(&risk, &c.graph, c.seed);
    // The hub (degree 10) must be rated maximally important.
    let hub = (0..c.graph.n_nodes())
        .find(|&v| c.graph.degree(v) >= 8)
        .expect("hub exists");
    assert_eq!(truth[hub], 2);
    let anns = simulate_annotations(&truth, &AnnotationConfig::default());
    let nodes = node_scores(&anns);
    let links = c.graph.undirected_links();
    for agg in EdgeAgg::ALL {
        let es = edge_scores(&nodes, &links, agg);
        assert_eq!(es.len(), links.len());
        assert!(es.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn centrality_tops_exactly_the_hub_incident_edges() {
    let (c, _) = warehouse_community();
    let g = &c.graph;
    let mut rng = StdRng::seed_from_u64(3);
    let centrality = community_edge_weights(g, Measure::Degree, &mut rng);
    let links = g.undirected_links();
    let hub = (0..g.n_nodes())
        .find(|&v| g.degree(v) >= 8)
        .expect("hub exists");
    // Every hub-incident link must outrank every non-hub link — the
    // structural property that lets centrality agree with annotators who
    // flag the warehouse pattern (Fig. 11).
    let (mut min_hub, mut max_other) = (f64::INFINITY, f64::NEG_INFINITY);
    for (&(u, v), &w) in links.iter().zip(&centrality) {
        if u == hub || v == hub {
            min_hub = min_hub.min(w);
        } else {
            max_other = max_other.max(w);
        }
    }
    assert!(
        min_hub > max_other,
        "hub edges (min {min_hub}) must dominate non-hub edges (max {max_other})"
    );
    // And the human hit rate against centrality is at least the random
    // floor (k²/n): with 20 links and k=5 the floor is 0.25.
    let (c2, risk) = warehouse_community();
    let truth = true_importance_for_seed(&risk, &c2.graph, c2.seed);
    let anns = simulate_annotations(
        &truth,
        &AnnotationConfig {
            noise: 0.05,
            ..Default::default()
        },
    );
    let human = edge_scores(
        &node_scores(&anns),
        &c2.graph.undirected_links(),
        EdgeAgg::Avg,
    );
    let h = topk_hit_rate_expected(&human, &centrality, 5, 300, &mut rng);
    assert!(h >= 0.2, "agreement collapsed below the random floor: {h}");
}

#[test]
fn every_measure_is_deterministic_except_the_sampled_one() {
    let (c, _) = warehouse_community();
    for m in ALL_MEASURES {
        if m == Measure::ApproxCurrentFlowBetweenness {
            continue; // explicitly stochastic
        }
        let a = community_edge_weights(&c.graph, m, &mut StdRng::seed_from_u64(1));
        let b = community_edge_weights(&c.graph, m, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b, "{} should not depend on the rng", m.name());
    }
}

#[test]
fn hybrid_ridge_and_grid_interpolate_sanely() {
    // Synthetic: human = 0.7*c + 0.3*e (after minmax), so both fits should
    // put the larger coefficient on the centrality arm.
    let mut comms = Vec::new();
    for i in 0..5 {
        let c: Vec<f64> = (0..30).map(|j| ((i * 3 + j * 7) % 23) as f64).collect();
        let e: Vec<f64> = (0..30).map(|j| ((i * 5 + j * 11) % 19) as f64).collect();
        let (cn, en) = (minmax(&c), minmax(&e));
        let human: Vec<f64> = cn
            .iter()
            .zip(&en)
            .map(|(&a, &b)| 0.7 * a + 0.3 * b)
            .collect();
        comms.push(CommunityWeights {
            human,
            centrality: c,
            explainer: e,
        });
    }
    let mut rng = StdRng::seed_from_u64(5);
    let grid = HybridExplainer::fit_grid(&comms, 8, 60, &mut rng);
    assert!(grid.a > grid.b, "grid a={} b={}", grid.a, grid.b);
    let ridge = HybridExplainer::fit_ridge(&comms, &[8], 40, &mut rng);
    assert!(ridge.a > ridge.b, "ridge a={} b={}", ridge.a, ridge.b);
    // And degree-1 polynomial suffices on a linear mixture.
    let (d, _) = best_polynomial_degree(&comms, 3, 8, 200, &mut rng);
    assert_eq!(d, 1);
}
