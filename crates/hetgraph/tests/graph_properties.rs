//! Property tests on the heterogeneous graph structures.

// Hundreds of proptest cases are days of work under the interpreter; the
// Miri job covers the graph internals through the unit tests instead.
#![cfg(not(miri))]

use proptest::prelude::*;
use xfraud_hetgraph::{
    community_of, khop_neighborhood, line_graph, GraphBuilder, GraphStats, NodeType,
};

/// Builds a random bipartite txn↔entity graph from a proptest recipe.
fn build(n_txn: usize, n_entities: usize, links: &[(usize, usize)]) -> xfraud_hetgraph::HetGraph {
    let mut b = GraphBuilder::new(2);
    let txns: Vec<usize> = (0..n_txn)
        .map(|i| b.add_txn([i as f32, 0.0], Some(i % 3 == 0)))
        .collect();
    let kinds = [
        NodeType::Pmt,
        NodeType::Email,
        NodeType::Addr,
        NodeType::Buyer,
    ];
    let ents: Vec<usize> = (0..n_entities)
        .map(|i| b.add_entity(kinds[i % 4]))
        .collect();
    // Dedupe: §3.1's relation is binary ("if a transaction has relation
    // with another node, we put an edge"), so a pair links at most once —
    // matching the builder's documented simple-graph contract.
    let mut seen = std::collections::HashSet::new();
    for &(t, e) in links {
        let pair = (t % n_txn, e % n_entities);
        if seen.insert(pair) {
            b.link(txns[pair.0], ents[pair.1]).unwrap();
        }
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structural_invariants_hold(
        n_txn in 1usize..12,
        n_ent in 1usize..8,
        links in prop::collection::vec((0usize..12, 0usize..8), 0..30),
    ) {
        let g = build(n_txn, n_ent, &links);
        prop_assert!(g.validate());
        // Handshake lemma over the stored double edges.
        let degree_sum: usize = (0..g.n_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.n_directed_edges());
        // Every edge type connects a txn and an entity.
        for e in g.edges() {
            let (s, d) = (g.node_type(e.src), g.node_type(e.dst));
            prop_assert!(s.is_entity() != d.is_entity());
        }
        // Stats are self-consistent.
        let stats = GraphStats::of(&g);
        prop_assert_eq!(stats.n_nodes, g.n_nodes());
        prop_assert_eq!(stats.type_counts.iter().sum::<usize>(), g.n_nodes());
        prop_assert!(stats.fraud_rate() <= 1.0);
    }

    #[test]
    fn khop_is_monotone_in_k_and_budget(
        n_txn in 2usize..10,
        n_ent in 1usize..6,
        links in prop::collection::vec((0usize..10, 0usize..6), 1..25),
        k in 0usize..4,
        budget in 1usize..6,
    ) {
        let g = build(n_txn, n_ent, &links);
        let small = khop_neighborhood(&g, 0, k, budget);
        let bigger_k = khop_neighborhood(&g, 0, k + 1, budget);
        let bigger_b = khop_neighborhood(&g, 0, k, budget + 3);
        prop_assert!(small.len() <= bigger_k.len());
        prop_assert!(small.len() <= bigger_b.len());
        prop_assert_eq!(small[0], 0, "seed comes first");
        // No duplicates.
        let mut sorted = small.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), small.len());
    }

    #[test]
    fn community_is_closed_under_adjacency(
        n_txn in 2usize..10,
        n_ent in 1usize..6,
        links in prop::collection::vec((0usize..10, 0usize..6), 1..25),
    ) {
        let g = build(n_txn, n_ent, &links);
        let c = community_of(&g, 0, usize::MAX).unwrap();
        // Every neighbour (in the original graph) of a community member is
        // itself a member — communities are full connected components.
        let members: std::collections::HashSet<usize> =
            c.original_ids.iter().copied().collect();
        for &v in &c.original_ids {
            for u in g.neighbors(v) {
                prop_assert!(members.contains(&u), "community not closed at {v}→{u}");
            }
        }
    }

    #[test]
    fn line_graph_degree_identity(
        n_txn in 2usize..8,
        n_ent in 1usize..5,
        links in prop::collection::vec((0usize..8, 0usize..5), 1..20),
    ) {
        let g = build(n_txn, n_ent, &links);
        let lg = line_graph(&g);
        prop_assert_eq!(lg.n_nodes(), g.n_links());
        // deg_L(e=(u,v)) = deg(u) + deg(v) - 2 for simple graphs.
        for (i, &(u, v)) in lg.endpoints.iter().enumerate() {
            prop_assert_eq!(lg.degree(i), g.degree(u) + g.degree(v) - 2);
        }
    }
}
