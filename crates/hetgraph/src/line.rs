use crate::graph::HetGraph;
use crate::types::NodeId;

/// The line graph `L(G)` of an undirected view of a [`HetGraph`].
///
/// Appendix F computes *node* centralities (closeness, eigenvector, degree,
/// …) on the line graph so they can serve as *edge* weights of the original
/// community. Line-node `i` corresponds to the undirected link
/// `endpoints[i]`; two line-nodes are adjacent iff their links share an
/// endpoint.
#[derive(Debug, Clone)]
pub struct LineGraph {
    /// Endpoints of the original undirected link behind each line-node.
    pub endpoints: Vec<(NodeId, NodeId)>,
    /// Adjacency lists between line-nodes.
    pub adj: Vec<Vec<usize>>,
}

impl LineGraph {
    pub fn n_nodes(&self) -> usize {
        self.endpoints.len()
    }

    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }
}

/// Builds the line graph of `g`'s undirected link set.
pub fn line_graph(g: &HetGraph) -> LineGraph {
    let endpoints = g.undirected_links();
    // incident[v] = line-node ids of links touching v
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); g.n_nodes()];
    for (i, &(a, b)) in endpoints.iter().enumerate() {
        incident[a].push(i);
        incident[b].push(i);
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); endpoints.len()];
    for links in &incident {
        for (x, &i) in links.iter().enumerate() {
            for &j in &links[x + 1..] {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    // A pair of links can share both endpoints only in multigraphs, which the
    // builder cannot produce, so no dedup is needed; assert in debug builds.
    debug_assert!(adj.iter().all(|l| {
        let mut s = l.clone();
        s.sort_unstable();
        s.windows(2).all(|w| w[0] != w[1])
    }));
    LineGraph { endpoints, adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::NodeType;

    #[test]
    fn path_graph_line_graph_is_a_path() {
        // txn - pmt - txn': a 2-link path whose line graph is a single edge.
        let mut b = GraphBuilder::new(1);
        let t0 = b.add_txn([0.0], None);
        let t1 = b.add_txn([0.0], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        let lg = line_graph(&b.finish().unwrap());
        assert_eq!(lg.n_nodes(), 2);
        assert_eq!(lg.n_edges(), 1);
        assert_eq!(lg.degree(0), 1);
    }

    #[test]
    fn star_line_graph_is_complete() {
        // k links sharing one centre → K_k line graph.
        let mut b = GraphBuilder::new(1);
        let p = {
            let p = b.add_entity(NodeType::Pmt);
            for _ in 0..4 {
                let t = b.add_txn([0.0], None);
                b.link(t, p).unwrap();
            }
            p
        };
        let g = b.finish().unwrap();
        assert_eq!(g.degree(p), 4);
        let lg = line_graph(&g);
        assert_eq!(lg.n_nodes(), 4);
        assert_eq!(lg.n_edges(), 6); // C(4,2)
        assert!(lg.adj.iter().all(|l| l.len() == 3));
    }
}
