use std::collections::HashMap;
use std::sync::Arc;

use crate::builder::GraphBuilder;
use crate::graph::{EdgeRef, HetGraph};
use crate::types::{EdgeType, NodeId, NodeType};
use crate::view::{sealed, GraphSnapshot, GraphView};
use crate::{GraphError, Result};

/// One append-only mutation of the live transaction graph — the unit both
/// the streaming write-ahead log records and [`DeltaGraph::apply`] consumes.
///
/// Events are *event-sourced* construction: replaying a stream of events
/// through a [`DeltaGraph`] (or a [`GraphBuilder`]) always reproduces the
/// same graph, because node ids are assigned by arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphEvent {
    /// A new transaction arrives with its risk-identifier features and an
    /// optional supervision label. Assigned the next node id.
    AddTxn {
        features: Vec<f32>,
        label: Option<bool>,
    },
    /// A new entity (payment token, email, address or buyer) is first seen.
    /// Assigned the next node id.
    AddEntity { ty: NodeType },
    /// A transaction↔entity relation is observed (order-insensitive; both
    /// directed edges are stored, like [`GraphBuilder::link`]).
    Link { a: NodeId, b: NodeId },
    /// A label lands late (chargeback confirmed, investigation closed) or is
    /// retracted (`None`). Only transactions carry labels.
    Label { node: NodeId, label: Option<bool> },
}

impl GraphEvent {
    /// `true` for events that change the graph *structure* (nodes or edges)
    /// rather than only supervision labels. Serving caches keyed on
    /// neighbourhoods must be invalidated on structural events only.
    pub fn is_structural(&self) -> bool {
        !matches!(self, GraphEvent::Label { .. })
    }
}

/// An append-only overlay over an immutable CSR [`HetGraph`] base — the
/// *live* graph of the streaming ingestion path.
///
/// New transactions, entities, links and late labels are appended without
/// touching the frozen base; reads go through [`GraphView`], which presents
/// base + overlay as one graph. Node ids continue the base's id space
/// (`base.n_nodes()..`), directed edge ids continue the base's edge-id space,
/// and adjacency order is *base CSR slice then overlay appends* — which is
/// exactly the edge-id order a from-scratch rebuild produces. That makes
/// [`DeltaGraph::compact`] a pure representation change: the compacted
/// [`HetGraph`] is bit-identical to building every record from scratch, and
/// any sampler walking the view sees identical neighbourhoods before and
/// after compaction.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<HetGraph>,
    /// Type of each overlay node (id = `base.n_nodes() + index`).
    new_node_types: Vec<NodeType>,
    /// Label of each overlay node.
    new_labels: Vec<Option<bool>>,
    /// Late labels applied to *base* transactions.
    base_label_overrides: HashMap<NodeId, Option<bool>>,
    /// Feature rows of overlay transactions, row-major `[n_new_txn, d]`.
    new_features: Vec<f32>,
    /// Overlay node index → row in `new_features` (txns only).
    new_txn_row: Vec<Option<usize>>,
    /// Overlay directed edges (edge id = `base.n_directed_edges() + index`).
    new_edge_src: Vec<NodeId>,
    new_edge_dst: Vec<NodeId>,
    new_edge_types: Vec<EdgeType>,
    /// Per-node overlay adjacency: overlay out-edge ids in append order
    /// (ascending, and all greater than any base edge id), plus the aligned
    /// endpoint arena so neighbour reads stay slice-backed like the base
    /// CSR's.
    overlay_out: HashMap<NodeId, OverlayAdj>,
}

/// One node's overlay adjacency: edge ids and their opposite endpoints,
/// aligned index-for-index (the overlay twin of the base [`crate::Csr`]
/// arenas).
#[derive(Debug, Clone, Default)]
struct OverlayAdj {
    edge_ids: Vec<usize>,
    targets: Vec<NodeId>,
}

impl DeltaGraph {
    /// Starts an empty overlay over `base`. With no events applied the view
    /// is indistinguishable from the base itself.
    pub fn new(base: Arc<HetGraph>) -> Self {
        DeltaGraph {
            base,
            new_node_types: Vec::new(),
            new_labels: Vec::new(),
            base_label_overrides: HashMap::new(),
            new_features: Vec::new(),
            new_txn_row: Vec::new(),
            new_edge_src: Vec::new(),
            new_edge_dst: Vec::new(),
            new_edge_types: Vec::new(),
            overlay_out: HashMap::new(),
        }
    }

    /// Starts an overlay over an empty graph of the given feature width —
    /// event-sourced construction from nothing.
    pub fn empty(feature_dim: usize) -> Self {
        DeltaGraph::new(Arc::new(HetGraph::empty(feature_dim)))
    }

    /// The frozen CSR base under the overlay.
    pub fn base(&self) -> &Arc<HetGraph> {
        &self.base
    }

    /// Nodes appended since the base was frozen.
    pub fn n_overlay_nodes(&self) -> usize {
        self.new_node_types.len()
    }

    /// Directed edges appended since the base was frozen.
    pub fn n_overlay_edges(&self) -> usize {
        self.new_edge_src.len()
    }

    /// `true` iff nothing has been appended (the view equals the base).
    pub fn is_compact(&self) -> bool {
        self.n_overlay_nodes() == 0
            && self.n_overlay_edges() == 0
            && self.base_label_overrides.is_empty()
    }

    fn resolve_type(&self, v: NodeId) -> Result<NodeType> {
        if v < self.base.n_nodes() {
            Ok(self.base.node_type(v))
        } else {
            self.new_node_types
                .get(v - self.base.n_nodes())
                .copied()
                .ok_or(GraphError::UnknownNode(v))
        }
    }

    /// Appends a transaction node; returns its id.
    pub fn add_txn(&mut self, features: &[f32], label: Option<bool>) -> Result<NodeId> {
        if features.len() != self.feature_dim() {
            return Err(GraphError::FeatureDimMismatch {
                expected: self.feature_dim(),
                got: features.len(),
            });
        }
        let id = self.n_nodes();
        self.new_node_types.push(NodeType::Txn);
        self.new_labels.push(label);
        self.new_txn_row
            .push(Some(self.new_features.len() / self.feature_dim().max(1)));
        self.new_features.extend_from_slice(features);
        Ok(id)
    }

    /// Appends an entity node; returns its id.
    pub fn add_entity(&mut self, ty: NodeType) -> Result<NodeId> {
        if !ty.is_entity() {
            return Err(GraphError::InvalidRelation(ty, ty));
        }
        let id = self.n_nodes();
        self.new_node_types.push(ty);
        self.new_labels.push(None);
        self.new_txn_row.push(None);
        Ok(id)
    }

    /// Links a transaction and an entity (order-insensitive), appending both
    /// directed edges — the overlay analogue of [`GraphBuilder::link`].
    /// Either endpoint may live in the base or the overlay.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        let ta = self.resolve_type(a)?;
        let tb = self.resolve_type(b)?;
        let fwd = EdgeType::between(ta, tb).ok_or(GraphError::InvalidRelation(ta, tb))?;
        let first_id = self.base.n_directed_edges() + self.new_edge_src.len();
        self.new_edge_src.push(a);
        self.new_edge_dst.push(b);
        self.new_edge_types.push(fwd);
        self.new_edge_src.push(b);
        self.new_edge_dst.push(a);
        self.new_edge_types.push(fwd.reverse());
        let adj_a = self.overlay_out.entry(a).or_default();
        adj_a.edge_ids.push(first_id);
        adj_a.targets.push(b);
        let adj_b = self.overlay_out.entry(b).or_default();
        adj_b.edge_ids.push(first_id + 1);
        adj_b.targets.push(a);
        Ok(())
    }

    /// Applies (or retracts, with `None`) a transaction label.
    pub fn set_label(&mut self, node: NodeId, label: Option<bool>) -> Result<()> {
        if self.resolve_type(node)? != NodeType::Txn {
            return Err(GraphError::LabelOnEntity(node));
        }
        if node < self.base.n_nodes() {
            self.base_label_overrides.insert(node, label);
        } else {
            self.new_labels[node - self.base.n_nodes()] = label;
        }
        Ok(())
    }

    /// Applies one event; returns the assigned node id for `AddTxn` /
    /// `AddEntity` events. Failed events leave the overlay untouched.
    pub fn apply(&mut self, event: &GraphEvent) -> Result<Option<NodeId>> {
        match event {
            GraphEvent::AddTxn { features, label } => self.add_txn(features, *label).map(Some),
            GraphEvent::AddEntity { ty } => self.add_entity(*ty).map(Some),
            GraphEvent::Link { a, b } => self.link(*a, *b).map(|()| None),
            GraphEvent::Label { node, label } => self.set_label(*node, *label).map(|()| None),
        }
    }

    /// Folds the overlay into a fresh frozen [`HetGraph`].
    ///
    /// The result is **bit-identical** to building the same records from
    /// scratch through [`GraphBuilder`]: nodes are replayed in id order,
    /// links in edge-id order, so ids, CSR arrays, feature rows and labels
    /// all coincide — and because [`GraphView`] adjacency order matches,
    /// sampling over the compacted graph matches sampling over the overlay.
    pub fn compact(&self) -> Result<HetGraph> {
        let n = self.n_nodes();
        let mut b = GraphBuilder::with_capacity(self.feature_dim(), n, self.n_directed_edges() / 2);
        let mut row = vec![0.0f32; self.feature_dim()];
        for v in 0..n {
            match GraphView::node_type(self, v) {
                NodeType::Txn => {
                    self.copy_features_into(v, &mut row);
                    b.add_txn(&row, GraphView::label(self, v));
                }
                ty => {
                    b.add_entity(ty);
                }
            }
        }
        // Links are stored as (forward, reverse) pairs; replaying every
        // forward edge in id order reproduces the original link sequence.
        for e in (0..self.n_directed_edges()).step_by(2) {
            let edge = GraphView::edge(self, e);
            b.link(edge.src, edge.dst)?;
        }
        b.finish()
    }
}

impl GraphView for DeltaGraph {
    fn n_nodes(&self) -> usize {
        self.base.n_nodes() + self.new_node_types.len()
    }

    fn n_directed_edges(&self) -> usize {
        self.base.n_directed_edges() + self.new_edge_src.len()
    }

    fn node_type(&self, v: NodeId) -> NodeType {
        if v < self.base.n_nodes() {
            self.base.node_type(v)
        } else {
            self.new_node_types[v - self.base.n_nodes()]
        }
    }

    fn label(&self, v: NodeId) -> Option<bool> {
        if v < self.base.n_nodes() {
            match self.base_label_overrides.get(&v) {
                Some(&label) => label,
                None => self.base.label(v),
            }
        } else {
            self.new_labels[v - self.base.n_nodes()]
        }
    }

    fn feature_dim(&self) -> usize {
        self.base.feature_dim()
    }

    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool {
        if v < self.base.n_nodes() {
            return self.base.copy_features_into(v, out);
        }
        match self.new_txn_row[v - self.base.n_nodes()] {
            Some(r) => {
                let d = self.feature_dim();
                out.copy_from_slice(&self.new_features[r * d..(r + 1) * d]);
                true
            }
            None => {
                out.fill(0.0);
                false
            }
        }
    }

    fn edge(&self, id: usize) -> EdgeRef {
        if id < self.base.n_directed_edges() {
            self.base.edge(id)
        } else {
            let i = id - self.base.n_directed_edges();
            EdgeRef {
                id,
                src: self.new_edge_src[i],
                dst: self.new_edge_dst[i],
                ty: self.new_edge_types[i],
            }
        }
    }

    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]) {
        let base = if v < self.base.n_nodes() {
            self.base.outgoing().edge_ids(v)
        } else {
            &[]
        };
        let overlay = self
            .overlay_out
            .get(&v)
            .map(|adj| adj.edge_ids.as_slice())
            .unwrap_or(&[]);
        (base, overlay)
    }

    fn neighbor_parts(&self, v: NodeId) -> (&[NodeId], &[NodeId]) {
        let base = if v < self.base.n_nodes() {
            self.base.neighbor_slice(v)
        } else {
            &[]
        };
        let overlay = self
            .overlay_out
            .get(&v)
            .map(|adj| adj.targets.as_slice())
            .unwrap_or(&[]);
        (base, overlay)
    }

    fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::new(Arc::new(self.clone()), 0)
    }
}

impl sealed::Sealed for DeltaGraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::GraphViewExt;

    fn base_graph() -> Arc<HetGraph> {
        let mut b = GraphBuilder::new(2);
        let t0 = b.add_txn([1.0, 0.0], Some(true));
        let t1 = b.add_txn([0.0, 1.0], None);
        let p = b.add_entity(NodeType::Pmt);
        let a = b.add_entity(NodeType::Addr);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.link(t1, a).unwrap();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn empty_overlay_equals_base() {
        let base = base_graph();
        let d = DeltaGraph::new(Arc::clone(&base));
        assert!(d.is_compact());
        assert_eq!(GraphView::n_nodes(&d), base.n_nodes());
        let compacted = d.compact().unwrap();
        assert!(compacted.validate());
        assert_eq!(&compacted, base.as_ref());
    }

    #[test]
    fn overlay_appends_continue_the_id_spaces() {
        let base = base_graph();
        let mut d = DeltaGraph::new(Arc::clone(&base));
        let t = d.add_txn(&[0.5, 0.5], None).unwrap();
        assert_eq!(t, base.n_nodes());
        let e = d.add_entity(NodeType::Email).unwrap();
        assert_eq!(e, base.n_nodes() + 1);
        d.link(t, e).unwrap();
        d.link(t, 2).unwrap(); // reuse the base pmt entity
        assert_eq!(GraphView::n_directed_edges(&d), base.n_directed_edges() + 4);

        // New txn sees both its links, in append order.
        let nbrs: Vec<NodeId> = d.neighbors(t).collect();
        assert_eq!(nbrs, vec![e, 2]);
        // The base pmt keeps its CSR neighbours first, then the new txn.
        let nbrs: Vec<NodeId> = d.neighbors(2).collect();
        assert_eq!(nbrs, vec![0, 1, t]);
    }

    #[test]
    fn compact_matches_from_scratch_build() {
        let base = base_graph();
        let mut d = DeltaGraph::new(base);
        let t = d.add_txn(&[0.3, 0.7], Some(false)).unwrap();
        let buyer = d.add_entity(NodeType::Buyer).unwrap();
        d.link(t, buyer).unwrap();
        d.link(t, 3).unwrap();
        d.set_label(1, Some(true)).unwrap();

        let compacted = d.compact().unwrap();
        assert!(compacted.validate());

        // The same records through a fresh builder, in the same order.
        let mut b = GraphBuilder::new(2);
        b.add_txn([1.0, 0.0], Some(true));
        b.add_txn([0.0, 1.0], Some(true)); // late label applied
        b.add_entity(NodeType::Pmt);
        b.add_entity(NodeType::Addr);
        b.link(0, 2).unwrap();
        b.link(1, 2).unwrap();
        b.link(1, 3).unwrap();
        b.add_txn([0.3, 0.7], Some(false));
        b.add_entity(NodeType::Buyer);
        b.link(4, 5).unwrap();
        b.link(4, 3).unwrap();
        let scratch = b.finish().unwrap();
        assert_eq!(compacted, scratch);
    }

    #[test]
    fn overlay_view_matches_compacted_view() {
        let base = base_graph();
        let mut d = DeltaGraph::new(base);
        let t = d.add_txn(&[0.2, 0.8], None).unwrap();
        d.link(t, 2).unwrap();
        d.link(0, 3).unwrap(); // new link between two base nodes
        let c = d.compact().unwrap();
        assert_eq!(GraphView::n_nodes(&d), c.n_nodes());
        assert_eq!(GraphView::n_directed_edges(&d), c.n_directed_edges());
        for v in 0..c.n_nodes() {
            assert_eq!(GraphView::node_type(&d, v), c.node_type(v));
            assert_eq!(GraphView::label(&d, v), c.label(v));
            assert_eq!(
                d.neighbors(v).collect::<Vec<_>>(),
                c.neighbors(v).collect::<Vec<_>>(),
                "adjacency order must survive compaction (node {v})"
            );
            let mut dr = vec![0.0; 2];
            let mut cr = vec![0.0; 2];
            d.copy_features_into(v, &mut dr);
            c.copy_features_into(v, &mut cr);
            assert_eq!(dr, cr);
        }
        for e in 0..c.n_directed_edges() {
            assert_eq!(GraphView::edge(&d, e), c.edge(e));
        }
    }

    #[test]
    fn events_route_to_the_right_mutations() {
        let mut d = DeltaGraph::empty(1);
        let t = d
            .apply(&GraphEvent::AddTxn {
                features: vec![0.9],
                label: None,
            })
            .unwrap()
            .unwrap();
        let p = d
            .apply(&GraphEvent::AddEntity { ty: NodeType::Pmt })
            .unwrap()
            .unwrap();
        assert_eq!(d.apply(&GraphEvent::Link { a: t, b: p }).unwrap(), None);
        d.apply(&GraphEvent::Label {
            node: t,
            label: Some(true),
        })
        .unwrap();
        assert_eq!(GraphView::label(&d, t), Some(true));
        assert_eq!(d.degree(t), 1);
        assert!(GraphEvent::AddEntity { ty: NodeType::Pmt }.is_structural());
        assert!(!GraphEvent::Label {
            node: 0,
            label: None
        }
        .is_structural());
    }

    #[test]
    fn invalid_events_are_rejected_and_leave_the_overlay_untouched() {
        let mut d = DeltaGraph::empty(2);
        assert!(matches!(
            d.add_txn(&[1.0], None),
            Err(GraphError::FeatureDimMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            d.add_entity(NodeType::Txn),
            Err(GraphError::InvalidRelation(_, _))
        ));
        let t = d.add_txn(&[0.0, 0.0], None).unwrap();
        assert!(matches!(d.link(t, 99), Err(GraphError::UnknownNode(99))));
        let u = d.add_txn(&[1.0, 1.0], None).unwrap();
        assert!(matches!(
            d.link(t, u),
            Err(GraphError::InvalidRelation(NodeType::Txn, NodeType::Txn))
        ));
        let p = d.add_entity(NodeType::Pmt).unwrap();
        assert!(matches!(
            d.set_label(p, Some(true)),
            Err(GraphError::LabelOnEntity(_))
        ));
        assert_eq!(d.n_overlay_edges(), 0);
        assert!(d.compact().unwrap().validate());
    }
}
