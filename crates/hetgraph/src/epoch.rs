//! Epoch-based reclamation for shared graph snapshots.
//!
//! [`EpochCell<T>`] holds one logically-current value and lets any number of
//! reader threads access it **without taking a lock**: a reader *pins* the
//! cell ([`EpochCell::pin`]), which announces the global epoch in a reader
//! slot and hands back a [`Pinned`] guard dereferencing straight into the
//! current value. Writers ([`EpochCell::update`] / [`EpochCell::set`])
//! build a replacement off to the side, swap the current pointer, advance
//! the epoch and *retire* the old value; a retired value is freed only once
//! every reader slot has announced an epoch at or past the retire epoch —
//! i.e. after the last reader that could possibly still hold it unpins.
//!
//! The protocol (a hand-rolled, allocation-per-publish flavour of classic
//! EBR, in the spirit of crossbeam-epoch):
//!
//! * **Pin:** claim a slot, store the global epoch into it (`SeqCst`), then
//!   re-check the global epoch and re-announce until it is stable. Only then
//!   load the current pointer. This closes the race where a reader loads a
//!   pointer that a concurrent writer retires before the reader's
//!   announcement becomes visible.
//! * **Publish:** swap the pointer first, *then* advance the epoch to `E`,
//!   then retire the old pointer at `E`. Any reader that announced an epoch
//!   `>= E` necessarily loaded the *new* pointer (the swap is ordered before
//!   the epoch bump under `SeqCst`), so holders of the old pointer all sit
//!   in slots announcing `< E`.
//! * **Reclaim:** free every retired `(epoch, ptr)` with
//!   `epoch <= min(active announcements)`; with no active readers,
//!   everything retired is freed. Reclamation is attempted at each publish
//!   and can be forced with [`EpochCell::try_reclaim`].
//!
//! Readers therefore never block writers and writers never block readers;
//! writers serialize among themselves on one internal mutex. Guards are
//! intentionally `!Send` (they hold a raw pointer and a slot claim) and
//! cheap: a pin is two atomic stores and two loads, no allocation.

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use parking_lot::Mutex;

/// A reader slot is free (claimable) when it announces this sentinel.
const QUIESCENT: u64 = u64::MAX;

/// Fixed reader-slot table. Pins outnumbering slots spin-wait for a free
/// slot; 128 comfortably covers every thread the serving stack spawns.
const SLOTS: usize = 128;

struct Slot {
    /// The epoch this slot's reader pinned at, or [`QUIESCENT`].
    active: AtomicU64,
}

/// An epoch-reclaimed shared cell: lock-free pinned reads of the current
/// value, serialized copy-on-write publication.
pub struct EpochCell<T> {
    current: AtomicPtr<T>,
    epoch: AtomicU64,
    slots: Box<[Slot]>,
    /// Retired values awaiting the readers that might still hold them:
    /// `(retire epoch, pointer)`.
    retired: Mutex<Vec<(u64, *mut T)>>,
    /// Serializes writers so `update` closures read a stable current value.
    writer: Mutex<()>,
}

// SAFETY: the cell hands `&T` to many threads (so `T: Sync` is required)
// and frees `T` on whichever thread reclaims it (so `T: Send`). The raw
// pointers in `current`/`retired` are owned by the cell and only ever freed
// once, guarded by the epoch protocol above.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
// SAFETY: shared access is `pin`/`read` handing out `&T` (sound because
// `T: Sync`) plus the atomics and mutex-guarded retire list; the raw
// pointers are never exposed, so `&EpochCell` is safe to share.
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    pub fn new(value: T) -> Self {
        let slots: Vec<Slot> = (0..SLOTS)
            .map(|_| Slot {
                active: AtomicU64::new(QUIESCENT),
            })
            .collect();
        EpochCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(value))),
            epoch: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            retired: Mutex::new(Vec::new()),
            writer: Mutex::new(()),
        }
    }

    /// Pins the current value for reading. Never blocks on writers; may
    /// spin briefly when more than `SLOTS` readers are pinned at once.
    pub fn pin(&self) -> Pinned<'_, T> {
        // Claim a free slot by CASing its announcement away from QUIESCENT.
        let slot = 'claim: loop {
            for slot in self.slots.iter() {
                let e = self.epoch.load(Ordering::SeqCst);
                if slot
                    .active
                    .compare_exchange(QUIESCENT, e, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    break 'claim slot;
                }
            }
            std::thread::yield_now();
        };
        // Re-announce until the global epoch is stable: once our
        // announcement of epoch `e` is visible *and* the global epoch still
        // reads `e`, any later publish retires at an epoch > e and will keep
        // whatever pointer we now load alive until we unpin.
        loop {
            let announced = slot.active.load(Ordering::SeqCst);
            let now = self.epoch.load(Ordering::SeqCst);
            if announced == now {
                break;
            }
            slot.active.store(now, Ordering::SeqCst);
        }
        let ptr = self.current.load(Ordering::SeqCst);
        Pinned { slot, ptr }
    }

    /// Publishes `next(current)` as the new value, retiring the old one.
    /// Writers serialize; readers keep reading the old value until they
    /// unpin. Returns the closure's second output.
    pub fn update<R>(&self, next: impl FnOnce(&T) -> (T, R)) -> R {
        let guard = self.writer.lock();
        // SAFETY: only writers replace `current`, and we hold the writer
        // lock, so the pointee is stable for the closure's duration.
        let cur = unsafe { &*self.current.load(Ordering::SeqCst) };
        let (value, out) = next(cur);
        self.publish_locked(value);
        drop(guard);
        out
    }

    /// Replaces the value unconditionally (a non-reading [`Self::update`]).
    pub fn set(&self, value: T) {
        let guard = self.writer.lock();
        self.publish_locked(value);
        drop(guard);
    }

    /// Swap → epoch bump → retire → reclaim. Caller holds the writer lock.
    fn publish_locked(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.retired.lock().push((retire_epoch, old));
        self.try_reclaim();
    }

    /// Frees every retired value no pinned reader can still hold; returns
    /// how many were freed. Safe to call from any thread at any time.
    pub fn try_reclaim(&self) -> usize {
        let mut retired = self.retired.lock();
        if retired.is_empty() {
            return 0;
        }
        let min_active = self
            .slots
            .iter()
            .map(|s| s.active.load(Ordering::SeqCst))
            .min()
            .unwrap_or(QUIESCENT);
        let before = retired.len();
        retired.retain(|&(epoch, ptr)| {
            if epoch <= min_active {
                // SAFETY: every reader holding this pointer announced an
                // epoch < `epoch` (see the publish ordering); `min_active >=
                // epoch` means no such announcement remains, and retired
                // entries are popped exactly once under the `retired` lock.
                drop(unsafe { Box::from_raw(ptr) });
                false
            } else {
                true
            }
        });
        before - retired.len()
    }

    /// Retired-but-not-yet-freed values (observability for tests/metrics).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }

    /// Epoch advances since creation — equals the number of publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers or writers remain.
        let cur = *self.current.get_mut();
        // SAFETY: sole owner; `cur` was leaked by `new`/`publish_locked`
        // and never freed (it is not in `retired`).
        drop(unsafe { Box::from_raw(cur) });
        for (_, ptr) in self.retired.lock().drain(..) {
            // SAFETY: retired pointers are distinct from `cur` and from
            // each other, each leaked exactly once.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// A pinned read guard: dereferences to the value that was current when
/// [`EpochCell::pin`] ran. Holding it keeps that value alive (the cell will
/// not free it) but never blocks writers from publishing successors.
///
/// Deliberately `!Send`: the slot claim is released on drop from the
/// pinning thread.
pub struct Pinned<'a, T> {
    slot: &'a Slot,
    ptr: *const T,
}

impl<T> Deref for Pinned<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the epoch protocol keeps `ptr` alive while this guard's
        // slot announcement is active.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Pinned<'_, T> {
    fn drop(&mut self) {
        self.slot.active.store(QUIESCENT, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pin_reads_current_and_update_publishes() {
        let cell = EpochCell::new(1u64);
        assert_eq!(*cell.pin(), 1);
        let out = cell.update(|&cur| (cur + 10, cur));
        assert_eq!(out, 1);
        assert_eq!(*cell.pin(), 11);
        cell.set(99);
        assert_eq!(*cell.pin(), 99);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn pinned_reader_keeps_old_value_alive_until_unpin() {
        let cell = EpochCell::new(String::from("old"));
        let pinned = cell.pin();
        cell.set(String::from("new"));
        // The old value is retired but must not be freed: we still read it.
        assert_eq!(&*pinned, "old");
        assert_eq!(cell.retired_len(), 1);
        assert_eq!(cell.try_reclaim(), 0, "reader still pinned");
        drop(pinned);
        assert_eq!(cell.try_reclaim(), 1, "last reader gone ⇒ freed");
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(&*cell.pin(), "new");
    }

    #[test]
    fn publish_reclaims_when_no_readers_are_pinned() {
        let cell = EpochCell::new(0usize);
        for i in 1..=10 {
            cell.set(i);
        }
        // Each publish retires the predecessor and immediately reclaims it.
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(*cell.pin(), 10);
    }

    #[test]
    fn drop_frees_retired_and_current() {
        // Counts live instances to prove Drop releases everything.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let cell = EpochCell::new(Counted::new());
        let pinned = cell.pin();
        cell.set(Counted::new());
        cell.set(Counted::new());
        assert_eq!(LIVE.load(Ordering::SeqCst), 3, "two retired + current");
        drop(pinned);
        drop(cell);
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_readers_and_writer_never_observe_torn_values() {
        // The value is a pair that must stay internally consistent; readers
        // pin while a writer churns publishes. Miri runs the same interleaving
        // shape at a fraction of the churn — it checks the unsafe epoch
        // machinery, not throughput.
        let iters: u64 = if cfg!(miri) { 64 } else { 2000 };
        let cell = EpochCell::new((0u64, 0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..iters {
                        let p = cell.pin();
                        let (a, b) = *p;
                        assert_eq!(a * 2, b, "reader saw a torn snapshot");
                    }
                });
            }
            scope.spawn(|| {
                for i in 1..=iters {
                    cell.update(|_| ((i, i * 2), ()));
                }
            });
        });
        let p = cell.pin();
        assert_eq!(*p, (iters, iters * 2));
        drop(p);
        cell.try_reclaim();
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn many_pins_on_one_thread_share_the_slot_table() {
        let cell = EpochCell::new(7u32);
        let pins: Vec<_> = (0..64).map(|_| cell.pin()).collect();
        assert!(pins.iter().all(|p| **p == 7));
        drop(pins);
        cell.set(8);
        assert_eq!(cell.retired_len(), 0, "all slots released");
    }
}
