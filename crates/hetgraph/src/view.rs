use crate::graph::{EdgeRef, HetGraph};
use crate::types::{NodeId, NodeType};

/// Read-only view of a heterogeneous transaction graph — the abstraction
/// that lets subgraph sampling and scoring run over *both* representations
/// of the live graph:
///
/// * [`HetGraph`] — the frozen CSR image produced by
///   [`crate::GraphBuilder::finish`];
/// * [`crate::DeltaGraph`] — an append-only overlay of streamed-in nodes,
///   links and feature rows over an immutable CSR base.
///
/// The trait is object-safe (serving engines hold `&dyn GraphView`), and its
/// accessors are designed so that a `DeltaGraph` and the [`HetGraph`] it
/// [`compact`](crate::DeltaGraph::compact)s into are observationally
/// identical: same node ids, same edge ids, same adjacency *order*. That
/// order guarantee is what makes sampling over the overlay bit-identical to
/// sampling over the compacted graph — samplers walk adjacency in edge-id
/// order, and [`GraphView::out_edge_parts`] exposes exactly that order as
/// `(base CSR slice, overlay slice)`.
pub trait GraphView {
    fn n_nodes(&self) -> usize;

    /// Number of *directed* edges (twice the number of undirected links).
    fn n_directed_edges(&self) -> usize;

    fn node_type(&self, v: NodeId) -> NodeType;

    /// Fraud label of a node (`None` for entities and unlabelled txns).
    fn label(&self, v: NodeId) -> Option<bool>;

    /// Width of transaction feature rows.
    fn feature_dim(&self) -> usize;

    /// Copies `v`'s feature row into `out` (which must be `feature_dim`
    /// long). Entity nodes read as zeros — "the initial node features are
    /// empty" (§3.2.1). Returns `true` iff `v` is a transaction.
    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool;

    /// Resolves a directed edge id.
    fn edge(&self, id: usize) -> EdgeRef;

    /// Ids of edges pointing out of `v`, split as `(base, overlay)`. For a
    /// frozen [`HetGraph`] the overlay part is always empty. Both slices are
    /// in ascending edge-id order, and every base id precedes every overlay
    /// id, so `base ++ overlay` is the edge-id-ordered adjacency of `v` —
    /// the same order a compacted CSR yields.
    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]);
}

/// Iterator conveniences over any [`GraphView`] (including `dyn GraphView`).
/// A blanket extension trait instead of provided methods so `GraphView`
/// stays object-safe while callers still get `impl Iterator` ergonomics.
pub trait GraphViewExt: GraphView {
    /// Out-edge ids of `v` in edge-id order (base CSR, then overlay).
    fn out_edge_ids(
        &self,
        v: NodeId,
    ) -> std::iter::Copied<std::iter::Chain<std::slice::Iter<'_, usize>, std::slice::Iter<'_, usize>>>
    {
        let (base, overlay) = self.out_edge_parts(v);
        base.iter().chain(overlay.iter()).copied()
    }

    /// Undirected neighbours of `v` (successors; both edge directions are
    /// stored, so this covers every link), in edge-id order.
    fn view_neighbors(&self, v: NodeId) -> ViewNeighbors<'_, Self> {
        let (base, overlay) = self.out_edge_parts(v);
        ViewNeighbors {
            view: self,
            base: base.iter(),
            overlay: overlay.iter(),
        }
    }

    /// Undirected degree of `v`.
    fn view_degree(&self, v: NodeId) -> usize {
        let (base, overlay) = self.out_edge_parts(v);
        base.len() + overlay.len()
    }
}

impl<G: GraphView + ?Sized> GraphViewExt for G {}

/// Iterator of [`GraphViewExt::view_neighbors`].
pub struct ViewNeighbors<'a, G: ?Sized> {
    view: &'a G,
    base: std::slice::Iter<'a, usize>,
    overlay: std::slice::Iter<'a, usize>,
}

impl<'a, G: GraphView + ?Sized> Iterator for ViewNeighbors<'a, G> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let e = match self.base.next() {
            Some(&e) => e,
            None => *self.overlay.next()?,
        };
        Some(self.view.edge(e).dst)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.overlay.len();
        (n, Some(n))
    }
}

impl GraphView for HetGraph {
    fn n_nodes(&self) -> usize {
        HetGraph::n_nodes(self)
    }

    fn n_directed_edges(&self) -> usize {
        HetGraph::n_directed_edges(self)
    }

    fn node_type(&self, v: NodeId) -> NodeType {
        HetGraph::node_type(self, v)
    }

    fn label(&self, v: NodeId) -> Option<bool> {
        HetGraph::label(self, v)
    }

    fn feature_dim(&self) -> usize {
        HetGraph::feature_dim(self)
    }

    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool {
        debug_assert_eq!(out.len(), self.feature_dim());
        match self.feature_row_of(v) {
            Some(row) => {
                out.copy_from_slice(self.features().row(row));
                true
            }
            None => {
                out.fill(0.0);
                false
            }
        }
    }

    fn edge(&self, id: usize) -> EdgeRef {
        HetGraph::edge(self, id)
    }

    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]) {
        (self.out_edges(v), &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> HetGraph {
        let mut b = GraphBuilder::new(2);
        let t0 = b.add_txn([1.0, 2.0], Some(true));
        let t1 = b.add_txn([3.0, 4.0], None);
        let p = b.add_entity(NodeType::Pmt);
        let a = b.add_entity(NodeType::Addr);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.link(t1, a).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn hetgraph_view_agrees_with_inherent_accessors() {
        let g = toy();
        let v: &dyn GraphView = &g;
        assert_eq!(v.n_nodes(), g.n_nodes());
        assert_eq!(v.n_directed_edges(), g.n_directed_edges());
        for node in 0..g.n_nodes() {
            assert_eq!(v.node_type(node), g.node_type(node));
            assert_eq!(v.label(node), g.label(node));
            assert_eq!(
                v.view_neighbors(node).collect::<Vec<_>>(),
                g.neighbors(node).collect::<Vec<_>>()
            );
            assert_eq!(v.view_degree(node), g.degree(node));
            let (base, overlay) = v.out_edge_parts(node);
            assert_eq!(base, g.out_edges(node));
            assert!(overlay.is_empty());
        }
    }

    #[test]
    fn copy_features_into_zeroes_entity_rows() {
        let g = toy();
        let v: &dyn GraphView = &g;
        let mut row = [9.0f32; 2];
        assert!(v.copy_features_into(0, &mut row));
        assert_eq!(row, [1.0, 2.0]);
        assert!(!v.copy_features_into(2, &mut row));
        assert_eq!(row, [0.0, 0.0], "stale contents must be overwritten");
    }
}
