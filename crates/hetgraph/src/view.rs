use std::sync::Arc;

use crate::graph::{EdgeRef, HetGraph};
use crate::types::{NodeId, NodeType};

/// Private supertrait sealing [`GraphView`]: the three implementations
/// ([`HetGraph`], [`crate::DeltaGraph`], [`GraphSnapshot`]) share adjacency
/// invariants (edge-id order, paired directed edges) that external
/// implementors could silently break, so the trait cannot be implemented
/// outside this crate.
pub(crate) mod sealed {
    pub trait Sealed {}
}

/// Read-only view of a heterogeneous transaction graph — the single read
/// abstraction every consumer (samplers, kernels, the explainer, the
/// scoring engine) goes through. It covers all representations of the live
/// graph:
///
/// * [`HetGraph`] — the frozen CSR/arena image produced by
///   [`crate::GraphBuilder::finish`];
/// * [`crate::DeltaGraph`] — an append-only overlay of streamed-in nodes,
///   links and feature rows over an immutable CSR base;
/// * [`GraphSnapshot`] — an owned, immutable, shareable image of either,
///   the currency of lock-free epoch-pinned serving reads.
///
/// The trait is object-safe (serving engines hold `&dyn GraphView`), and its
/// accessors are designed so that a `DeltaGraph` and the [`HetGraph`] it
/// [`compact`](crate::DeltaGraph::compact)s into are observationally
/// identical: same node ids, same edge ids, same adjacency *order*. That
/// order guarantee is what makes sampling over the overlay bit-identical to
/// sampling over the compacted graph — samplers walk adjacency in edge-id
/// order, and [`GraphView::out_edge_parts`] / [`GraphView::neighbor_parts`]
/// expose exactly that order as `(base CSR slice, overlay slice)`.
///
/// The trait is **sealed**: it cannot be implemented outside this crate.
pub trait GraphView: sealed::Sealed {
    fn n_nodes(&self) -> usize;

    /// Number of *directed* edges (twice the number of undirected links).
    fn n_directed_edges(&self) -> usize;

    fn node_type(&self, v: NodeId) -> NodeType;

    /// Fraud label of a node (`None` for entities and unlabelled txns).
    fn label(&self, v: NodeId) -> Option<bool>;

    /// Width of transaction feature rows.
    fn feature_dim(&self) -> usize;

    /// Copies `v`'s feature row into `out` (which must be `feature_dim`
    /// long). Entity nodes read as zeros — "the initial node features are
    /// empty" (§3.2.1). Returns `true` iff `v` is a transaction.
    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool;

    /// Resolves a directed edge id.
    fn edge(&self, id: usize) -> EdgeRef;

    /// Ids of edges pointing out of `v`, split as `(base, overlay)`. For a
    /// frozen [`HetGraph`] the overlay part is always empty. Both slices are
    /// in ascending edge-id order, and every base id precedes every overlay
    /// id, so `base ++ overlay` is the edge-id-ordered adjacency of `v` —
    /// the same order a compacted CSR yields.
    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]);

    /// Neighbour endpoints of `v`, split as `(base, overlay)` and aligned
    /// entry-for-entry with [`GraphView::out_edge_parts`] — the
    /// allocation-free arena slices behind [`GraphViewExt::neighbors`].
    /// No per-neighbour edge resolution happens on this path.
    fn neighbor_parts(&self, v: NodeId) -> (&[NodeId], &[NodeId]);

    /// An owned, immutable, cheaply clonable image of this view, suitable
    /// for handing to other threads (kernels, pinned serving reads). For a
    /// [`GraphSnapshot`] this is a reference-count bump; for `HetGraph` /
    /// `DeltaGraph` it clones the graph once into shared ownership.
    fn snapshot(&self) -> GraphSnapshot;
}

/// Neighbour iterator of [`GraphViewExt::neighbors`]: a copy-free chain of
/// the two arena slices from [`GraphView::neighbor_parts`].
pub type Neighbors<'a> =
    std::iter::Copied<std::iter::Chain<std::slice::Iter<'a, NodeId>, std::slice::Iter<'a, NodeId>>>;

/// Iterator conveniences over any [`GraphView`] (including `dyn GraphView`).
/// A blanket extension trait instead of provided methods so `GraphView`
/// stays object-safe while callers still get `impl Iterator` ergonomics.
pub trait GraphViewExt: GraphView {
    /// Out-edge ids of `v` in edge-id order (base CSR, then overlay).
    fn out_edge_ids(
        &self,
        v: NodeId,
    ) -> std::iter::Copied<std::iter::Chain<std::slice::Iter<'_, usize>, std::slice::Iter<'_, usize>>>
    {
        let (base, overlay) = self.out_edge_parts(v);
        base.iter().chain(overlay.iter()).copied()
    }

    /// Undirected neighbours of `v` (successors; both edge directions are
    /// stored, so this covers every link), in edge-id order. Reads straight
    /// from the CSR target arena — no edge-id indirection.
    fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let (base, overlay) = self.neighbor_parts(v);
        base.iter().chain(overlay.iter()).copied()
    }

    /// Undirected degree of `v`.
    fn degree(&self, v: NodeId) -> usize {
        let (base, overlay) = self.out_edge_parts(v);
        base.len() + overlay.len()
    }

    /// Resolved out-edges of `v` ([`EdgeRef`]s), in edge-id order — the
    /// iterator form batch assembly walks.
    fn edges_of(&self, v: NodeId) -> EdgesOf<'_, Self> {
        let (base, overlay) = self.out_edge_parts(v);
        EdgesOf {
            view: self,
            ids: base.iter().chain(overlay.iter()),
        }
    }
}

impl<G: GraphView + ?Sized> GraphViewExt for G {}

/// Iterator of [`GraphViewExt::edges_of`].
pub struct EdgesOf<'a, G: ?Sized> {
    view: &'a G,
    ids: std::iter::Chain<std::slice::Iter<'a, usize>, std::slice::Iter<'a, usize>>,
}

impl<'a, G: GraphView + ?Sized> Iterator for EdgesOf<'a, G> {
    type Item = EdgeRef;

    fn next(&mut self) -> Option<EdgeRef> {
        Some(self.view.edge(*self.ids.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl<'a, G: GraphView + ?Sized> ExactSizeIterator for EdgesOf<'a, G> {}

/// An owned, immutable image of a graph at a point in time, tagged with the
/// graph version it was taken at. Cloning is a reference-count bump, so a
/// snapshot can be pinned, shipped to worker threads and dropped freely —
/// the shared image lives until the last holder releases it.
///
/// This is the value type the serving engine publishes through
/// [`crate::EpochCell`]: readers pin the cell, get a consistent
/// `(graph, version)` pair and never take a lock.
#[derive(Clone)]
pub struct GraphSnapshot {
    view: Arc<dyn GraphView + Send + Sync>,
    version: u64,
}

impl GraphSnapshot {
    /// Wraps a shared graph image at `version`.
    pub fn new(view: Arc<dyn GraphView + Send + Sync>, version: u64) -> GraphSnapshot {
        GraphSnapshot { view, version }
    }

    /// The graph version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The same image re-tagged with a new version (shares storage).
    pub fn at_version(&self, version: u64) -> GraphSnapshot {
        GraphSnapshot {
            view: Arc::clone(&self.view),
            version,
        }
    }

    /// The underlying shared view.
    pub fn view(&self) -> &(dyn GraphView + Send + Sync) {
        self.view.as_ref()
    }
}

impl std::fmt::Debug for GraphSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphSnapshot")
            .field("version", &self.version)
            .field("n_nodes", &self.view.n_nodes())
            .field("n_directed_edges", &self.view.n_directed_edges())
            .finish()
    }
}

impl sealed::Sealed for GraphSnapshot {}

impl GraphView for GraphSnapshot {
    fn n_nodes(&self) -> usize {
        self.view.n_nodes()
    }

    fn n_directed_edges(&self) -> usize {
        self.view.n_directed_edges()
    }

    fn node_type(&self, v: NodeId) -> NodeType {
        self.view.node_type(v)
    }

    fn label(&self, v: NodeId) -> Option<bool> {
        self.view.label(v)
    }

    fn feature_dim(&self) -> usize {
        self.view.feature_dim()
    }

    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool {
        self.view.copy_features_into(v, out)
    }

    fn edge(&self, id: usize) -> EdgeRef {
        self.view.edge(id)
    }

    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]) {
        self.view.out_edge_parts(v)
    }

    fn neighbor_parts(&self, v: NodeId) -> (&[NodeId], &[NodeId]) {
        self.view.neighbor_parts(v)
    }

    fn snapshot(&self) -> GraphSnapshot {
        self.clone()
    }
}

impl sealed::Sealed for HetGraph {}

impl GraphView for HetGraph {
    fn n_nodes(&self) -> usize {
        HetGraph::n_nodes(self)
    }

    fn n_directed_edges(&self) -> usize {
        HetGraph::n_directed_edges(self)
    }

    fn node_type(&self, v: NodeId) -> NodeType {
        HetGraph::node_type(self, v)
    }

    fn label(&self, v: NodeId) -> Option<bool> {
        HetGraph::label(self, v)
    }

    fn feature_dim(&self) -> usize {
        HetGraph::feature_dim(self)
    }

    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool {
        debug_assert_eq!(out.len(), self.feature_dim());
        match self.feature_row_of(v) {
            Some(row) => {
                out.copy_from_slice(self.features().row(row));
                true
            }
            None => {
                out.fill(0.0);
                false
            }
        }
    }

    fn edge(&self, id: usize) -> EdgeRef {
        HetGraph::edge(self, id)
    }

    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]) {
        (self.outgoing().edge_ids(v), &[])
    }

    fn neighbor_parts(&self, v: NodeId) -> (&[NodeId], &[NodeId]) {
        (self.neighbor_slice(v), &[])
    }

    fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::new(Arc::new(self.clone()), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> HetGraph {
        let mut b = GraphBuilder::new(2);
        let t0 = b.add_txn([1.0, 2.0], Some(true));
        let t1 = b.add_txn([3.0, 4.0], None);
        let p = b.add_entity(NodeType::Pmt);
        let a = b.add_entity(NodeType::Addr);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.link(t1, a).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn hetgraph_view_agrees_with_inherent_accessors() {
        let g = toy();
        let v: &dyn GraphView = &g;
        assert_eq!(v.n_nodes(), g.n_nodes());
        assert_eq!(v.n_directed_edges(), g.n_directed_edges());
        for node in 0..g.n_nodes() {
            assert_eq!(v.node_type(node), g.node_type(node));
            assert_eq!(v.label(node), g.label(node));
            assert_eq!(
                v.neighbors(node).collect::<Vec<_>>(),
                g.neighbors(node).collect::<Vec<_>>()
            );
            assert_eq!(GraphViewExt::degree(v, node), g.degree(node));
            let (base, overlay) = v.out_edge_parts(node);
            assert_eq!(base, g.outgoing().edge_ids(node));
            assert!(overlay.is_empty());
            let (nbase, noverlay) = v.neighbor_parts(node);
            assert_eq!(nbase, g.neighbor_slice(node));
            assert!(noverlay.is_empty());
            // edges_of resolves the same edges the id walk does.
            let via_ids: Vec<EdgeRef> = v.out_edge_ids(node).map(|e| g.edge(e)).collect();
            assert_eq!(v.edges_of(node).collect::<Vec<_>>(), via_ids);
        }
    }

    #[test]
    fn copy_features_into_zeroes_entity_rows() {
        let g = toy();
        let v: &dyn GraphView = &g;
        let mut row = [9.0f32; 2];
        assert!(v.copy_features_into(0, &mut row));
        assert_eq!(row, [1.0, 2.0]);
        assert!(!v.copy_features_into(2, &mut row));
        assert_eq!(row, [0.0, 0.0], "stale contents must be overwritten");
    }

    #[test]
    fn snapshots_share_storage_and_delegate_reads() {
        let g = toy();
        let snap = GraphView::snapshot(&g);
        assert_eq!(snap.version(), 0);
        let retagged = snap.at_version(7);
        assert_eq!(retagged.version(), 7);
        assert_eq!(snap.n_nodes(), g.n_nodes());
        for node in 0..g.n_nodes() {
            assert_eq!(
                snap.neighbors(node).collect::<Vec<_>>(),
                g.neighbors(node).collect::<Vec<_>>()
            );
        }
        // snapshot-of-snapshot is a cheap rc bump, same image.
        let again = GraphView::snapshot(&retagged);
        assert_eq!(again.version(), 7);
        assert_eq!(again.n_directed_edges(), g.n_directed_edges());
    }
}
