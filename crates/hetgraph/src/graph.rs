use xfraud_tensor::Tensor;

use crate::types::{EdgeType, NodeId, NodeType};

/// One directed edge, resolved for convenient pattern matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    pub id: usize,
    pub src: NodeId,
    pub dst: NodeId,
    pub ty: EdgeType,
}

/// An immutable heterogeneous transaction graph.
///
/// Storage is flat and CSR-indexed (Performance-Book style: no per-node
/// allocations on hot paths):
///
/// * `edge_src/edge_dst/edge_types` — one entry per *directed* edge. Links
///   are stored in both directions so message passing can aggregate into
///   either endpoint.
/// * `in_offsets/in_edge_ids` — CSR over incoming edges per node (the
///   detector aggregates messages into targets, eq. 1).
/// * `out_offsets/out_edge_ids` — CSR over outgoing edges (used by samplers
///   and BFS).
///
/// Only `txn` nodes have feature rows; `txn_row[v]` maps a node to its row in
/// the `[n_txn, d]` feature matrix. Labels are `Option<bool>`: the
/// construction protocol leaves most benign transactions unlabelled after
/// down-sampling (Appendix B step 3), exactly like the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct HetGraph {
    pub(crate) node_types: Vec<NodeType>,
    pub(crate) edge_src: Vec<NodeId>,
    pub(crate) edge_dst: Vec<NodeId>,
    pub(crate) edge_types: Vec<EdgeType>,
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_edge_ids: Vec<usize>,
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_edge_ids: Vec<usize>,
    pub(crate) features: Tensor,
    pub(crate) txn_row: Vec<Option<usize>>,
    pub(crate) txn_nodes: Vec<NodeId>,
    pub(crate) labels: Vec<Option<bool>>,
}

impl HetGraph {
    pub fn n_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of *directed* edges (twice the number of links).
    pub fn n_directed_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Number of undirected links, as reported in the paper's Table 2.
    pub fn n_links(&self) -> usize {
        self.edge_src.len() / 2
    }

    pub fn node_type(&self, v: NodeId) -> NodeType {
        self.node_types[v]
    }

    pub fn node_types(&self) -> &[NodeType] {
        &self.node_types
    }

    pub fn edge(&self, id: usize) -> EdgeRef {
        EdgeRef {
            id,
            src: self.edge_src[id],
            dst: self.edge_dst[id],
            ty: self.edge_types[id],
        }
    }

    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.edge_src.len()).map(move |id| self.edge(id))
    }

    pub fn edge_sources(&self) -> &[NodeId] {
        &self.edge_src
    }

    pub fn edge_targets(&self) -> &[NodeId] {
        &self.edge_dst
    }

    pub fn edge_types(&self) -> &[EdgeType] {
        &self.edge_types
    }

    /// Ids of edges pointing *into* `v`.
    pub fn in_edges(&self, v: NodeId) -> &[usize] {
        &self.in_edge_ids[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Ids of edges pointing *out of* `v`.
    pub fn out_edges(&self, v: NodeId) -> &[usize] {
        &self.out_edge_ids[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Undirected neighbours of `v` (successors; the graph stores both
    /// directions so this covers every link).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(v).iter().map(move |&e| self.edge_dst[e])
    }

    /// Undirected degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// The `[n_txn, d]` transaction feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Feature row of a node, if it is a transaction.
    pub fn feature_row_of(&self, v: NodeId) -> Option<usize> {
        self.txn_row.get(v).copied().flatten()
    }

    /// Node ids of all transactions, in feature-row order.
    pub fn txn_nodes(&self) -> &[NodeId] {
        &self.txn_nodes
    }

    /// Fraud label of a node (`None` for entities and unlabelled txns).
    pub fn label(&self, v: NodeId) -> Option<bool> {
        self.labels[v]
    }

    /// All labelled transactions as `(node, is_fraud)` pairs.
    pub fn labeled_txns(&self) -> Vec<(NodeId, bool)> {
        self.txn_nodes
            .iter()
            .filter_map(|&v| self.labels[v].map(|y| (v, y)))
            .collect()
    }

    /// Unique undirected links as `(min_endpoint, max_endpoint)` pairs, in
    /// the id order of their forward directed edge.
    pub fn undirected_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut links = Vec::with_capacity(self.n_links());
        for e in self.edges() {
            if e.src < e.dst {
                links.push((e.src, e.dst));
            }
        }
        links
    }

    /// Induced subgraph over `keep` (need not be sorted; duplicates are a
    /// programmer error). Returns the subgraph and the old→new id mapping as
    /// a `Vec<Option<usize>>` over original ids.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (HetGraph, Vec<Option<NodeId>>) {
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; self.n_nodes()];
        for (new, &old) in keep.iter().enumerate() {
            debug_assert!(old_to_new[old].is_none(), "duplicate node in subgraph set");
            old_to_new[old] = Some(new);
        }

        let node_types: Vec<NodeType> = keep.iter().map(|&v| self.node_types[v]).collect();
        let labels: Vec<Option<bool>> = keep.iter().map(|&v| self.labels[v]).collect();

        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_types = Vec::new();
        for e in self.edges() {
            if let (Some(s), Some(d)) = (old_to_new[e.src], old_to_new[e.dst]) {
                edge_src.push(s);
                edge_dst.push(d);
                edge_types.push(e.ty);
            }
        }

        // Gather feature rows for retained transactions.
        let mut txn_row = vec![None; keep.len()];
        let mut txn_nodes = Vec::new();
        let mut rows: Vec<usize> = Vec::new();
        for (new, &old) in keep.iter().enumerate() {
            if let Some(r) = self.txn_row[old] {
                txn_row[new] = Some(rows.len());
                txn_nodes.push(new);
                rows.push(r);
            }
        }
        let mut features = Tensor::zeros(rows.len(), self.features.cols());
        for (dst, &src) in rows.iter().enumerate() {
            features
                .row_mut(dst)
                .copy_from_slice(self.features.row(src));
        }

        let (in_offsets, in_edge_ids) = build_csr(keep.len(), &edge_dst);
        let (out_offsets, out_edge_ids) = build_csr(keep.len(), &edge_src);

        let sub = HetGraph {
            node_types,
            edge_src,
            edge_dst,
            edge_types,
            in_offsets,
            in_edge_ids,
            out_offsets,
            out_edge_ids,
            features,
            txn_row,
            txn_nodes,
            labels,
        };
        (sub, old_to_new)
    }

    /// Checks the structural invariants (CSR consistency, paired directed
    /// edges, features only on txns). Used by tests and `debug_assert`ed by
    /// the builder.
    pub fn validate(&self) -> bool {
        let n = self.n_nodes();
        if self.in_offsets.len() != n + 1 || self.out_offsets.len() != n + 1 {
            return false;
        }
        if self.in_offsets.last().copied() != Some(self.edge_src.len()) {
            return false;
        }
        for (v, w) in self.in_offsets.iter().zip(self.in_offsets.iter().skip(1)) {
            if v > w {
                return false;
            }
        }
        for v in 0..n {
            for &e in self.in_edges(v) {
                if self.edge_dst[e] != v {
                    return false;
                }
            }
            for &e in self.out_edges(v) {
                if self.edge_src[e] != v {
                    return false;
                }
            }
        }
        for (v, &row) in self.txn_row.iter().enumerate() {
            match (self.node_types[v], row) {
                (NodeType::Txn, Some(_)) => {}
                (NodeType::Txn, None) => return false,
                (_, Some(_)) => return false,
                (_, None) => {}
            }
        }
        self.features.rows() == self.txn_nodes.len()
    }
}

/// Builds offsets + edge-id lists for a CSR keyed by `key_per_edge`.
pub(crate) fn build_csr(n_nodes: usize, key_per_edge: &[NodeId]) -> (Vec<usize>, Vec<usize>) {
    let mut counts = vec![0usize; n_nodes + 1];
    for &k in key_per_edge {
        counts[k + 1] += 1;
    }
    for i in 0..n_nodes {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut ids = vec![0usize; key_per_edge.len()];
    for (e, &k) in key_per_edge.iter().enumerate() {
        ids[cursor[k]] = e;
        cursor[k] += 1;
    }
    (offsets, ids)
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::types::NodeType;
    use xfraud_tensor::Tensor;

    fn toy() -> crate::HetGraph {
        // txn0 - pmt, txn0 - buyer, txn1 - pmt (shared token), txn1 - addr
        let mut b = GraphBuilder::new(3);
        let t0 = b.add_txn([1.0, 0.0, 0.0], Some(true));
        let t1 = b.add_txn([0.0, 1.0, 0.0], Some(false));
        let pmt = b.add_entity(NodeType::Pmt);
        let buyer = b.add_entity(NodeType::Buyer);
        let addr = b.add_entity(NodeType::Addr);
        b.link(t0, pmt).unwrap();
        b.link(t0, buyer).unwrap();
        b.link(t1, pmt).unwrap();
        b.link(t1, addr).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn toy_graph_counts() {
        let g = toy();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_links(), 4);
        assert_eq!(g.n_directed_edges(), 8);
        assert!(g.validate());
    }

    #[test]
    fn csr_in_and_out_edges_agree_with_edge_list() {
        let g = toy();
        for v in 0..g.n_nodes() {
            for &e in g.in_edges(v) {
                assert_eq!(g.edge(e).dst, v);
            }
            for &e in g.out_edges(v) {
                assert_eq!(g.edge(e).src, v);
            }
        }
        // Shared payment token has two incoming txn edges.
        let pmt = 2;
        assert_eq!(g.node_type(pmt), NodeType::Pmt);
        assert_eq!(g.in_edges(pmt).len(), 2);
    }

    #[test]
    fn features_only_on_txns() {
        let g = toy();
        assert_eq!(g.features().shape(), (2, 3));
        assert_eq!(g.feature_row_of(0), Some(0));
        assert_eq!(g.feature_row_of(2), None);
        assert_eq!(g.label(0), Some(true));
        assert_eq!(g.label(2), None);
    }

    #[test]
    fn induced_subgraph_remaps_everything() {
        let g = toy();
        // Keep txn0, pmt, txn1: drops buyer and addr plus their links.
        let (sub, map) = g.induced_subgraph(&[0, 2, 1]);
        assert!(sub.validate());
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.n_links(), 2);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[2], Some(1));
        assert_eq!(map[3], None);
        // txn1 became node 2 and kept its feature row + label.
        assert_eq!(sub.node_type(2), NodeType::Txn);
        assert_eq!(sub.label(2), Some(false));
        let row = sub.feature_row_of(2).unwrap();
        assert_eq!(sub.features().row(row), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn undirected_links_unique() {
        let g = toy();
        let links = g.undirected_links();
        assert_eq!(links.len(), 4);
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn labeled_txns_lists_only_labeled() {
        let mut b = GraphBuilder::new(1);
        let t0 = b.add_txn([0.5], Some(true));
        let _t1 = b.add_txn([0.5], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.labeled_txns(), vec![(t0, true)]);
    }

    #[test]
    fn empty_feature_graph_is_valid() {
        let b = GraphBuilder::new(4);
        let g = b.finish().unwrap();
        assert!(g.validate());
        assert_eq!(g.features(), &Tensor::zeros(0, 4));
    }
}
