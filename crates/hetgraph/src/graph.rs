use xfraud_tensor::Tensor;

use crate::csr::{Csr, FeatureIndex};
use crate::types::{EdgeType, NodeId, NodeType};

/// One directed edge, resolved for convenient pattern matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    pub id: usize,
    pub src: NodeId,
    pub dst: NodeId,
    pub ty: EdgeType,
}

/// An immutable heterogeneous transaction graph.
///
/// Storage is a flat CSR/arena layout (no per-node allocations and no
/// pointer chasing on hot paths):
///
/// * `edge_src/edge_dst/edge_types` — one entry per *directed* edge. Links
///   are stored in both directions so message passing can aggregate into
///   either endpoint. The builder appends links as consecutive
///   `(forward, reverse)` pairs, so forward edges always carry even ids —
///   an invariant `induced_subgraph` and `DeltaGraph::compact` exploit.
/// * `incoming` — [`Csr`] over incoming edges per node (the detector
///   aggregates messages into targets, eq. 1).
/// * `outgoing` — [`Csr`] over outgoing edges; its target arena is the
///   allocation-free neighbour slice samplers and kernels iterate.
///
/// Only `txn` nodes have feature rows; the [`FeatureIndex`] maps a node to
/// its row in the `[n_txn, d]` feature matrix. Labels are `Option<bool>`:
/// the construction protocol leaves most benign transactions unlabelled
/// after down-sampling (Appendix B step 3), exactly like the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct HetGraph {
    pub(crate) node_types: Vec<NodeType>,
    pub(crate) edge_src: Vec<NodeId>,
    pub(crate) edge_dst: Vec<NodeId>,
    pub(crate) edge_types: Vec<EdgeType>,
    pub(crate) incoming: Csr,
    pub(crate) outgoing: Csr,
    pub(crate) features: Tensor,
    pub(crate) feature_row: FeatureIndex,
    pub(crate) txn_nodes: Vec<NodeId>,
    pub(crate) labels: Vec<Option<bool>>,
}

impl HetGraph {
    /// The empty graph of the given feature width — infallible, unlike
    /// freezing an empty [`crate::GraphBuilder`], so callers that need a
    /// blank base (event-sourced overlays) have a total construction path.
    pub fn empty(feature_dim: usize) -> HetGraph {
        HetGraph {
            node_types: Vec::new(),
            edge_src: Vec::new(),
            edge_dst: Vec::new(),
            edge_types: Vec::new(),
            incoming: Csr::build(0, &[], &[]),
            outgoing: Csr::build(0, &[], &[]),
            features: Tensor::zeros(0, feature_dim),
            feature_row: FeatureIndex::with_capacity(0),
            txn_nodes: Vec::new(),
            labels: Vec::new(),
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of *directed* edges (twice the number of links).
    pub fn n_directed_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Number of undirected links, as reported in the paper's Table 2.
    pub fn n_links(&self) -> usize {
        self.edge_src.len() / 2
    }

    pub fn node_type(&self, v: NodeId) -> NodeType {
        self.node_types[v]
    }

    pub fn node_types(&self) -> &[NodeType] {
        &self.node_types
    }

    pub fn edge(&self, id: usize) -> EdgeRef {
        EdgeRef {
            id,
            src: self.edge_src[id],
            dst: self.edge_dst[id],
            ty: self.edge_types[id],
        }
    }

    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.edge_src.len()).map(move |id| self.edge(id))
    }

    pub fn edge_sources(&self) -> &[NodeId] {
        &self.edge_src
    }

    pub fn edge_targets(&self) -> &[NodeId] {
        &self.edge_dst
    }

    pub fn edge_types(&self) -> &[EdgeType] {
        &self.edge_types
    }

    /// Incoming CSR (edge ids + source arena) — the message-passing index.
    #[inline]
    pub fn incoming(&self) -> &Csr {
        &self.incoming
    }

    /// Outgoing CSR (edge ids + target arena) — the sampler/kernel index.
    #[inline]
    pub fn outgoing(&self) -> &Csr {
        &self.outgoing
    }

    /// Undirected neighbours of `v` as one contiguous arena slice — the
    /// allocation-free fast path behind [`HetGraph::neighbors`].
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[NodeId] {
        self.outgoing.targets(v)
    }

    /// Undirected neighbours of `v` (successors; the graph stores both
    /// directions so this covers every link).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbor_slice(v).iter().copied()
    }

    /// Undirected degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.outgoing.degree(v)
    }

    /// The `[n_txn, d]` transaction feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Feature row of a node, if it is a transaction.
    pub fn feature_row_of(&self, v: NodeId) -> Option<usize> {
        self.feature_row.get(v)
    }

    /// Node ids of all transactions, in feature-row order.
    pub fn txn_nodes(&self) -> &[NodeId] {
        &self.txn_nodes
    }

    /// Fraud label of a node (`None` for entities and unlabelled txns).
    pub fn label(&self, v: NodeId) -> Option<bool> {
        self.labels[v]
    }

    /// All labelled transactions as `(node, is_fraud)` pairs.
    pub fn labeled_txns(&self) -> Vec<(NodeId, bool)> {
        self.txn_nodes
            .iter()
            .filter_map(|&v| self.labels[v].map(|y| (v, y)))
            .collect()
    }

    /// Unique undirected links as `(min_endpoint, max_endpoint)` pairs, in
    /// the id order of their forward directed edge.
    pub fn undirected_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut links = Vec::with_capacity(self.n_links());
        for e in self.edges() {
            if e.src < e.dst {
                links.push((e.src, e.dst));
            }
        }
        links
    }

    /// Induced subgraph over `keep` (need not be sorted; duplicates are a
    /// programmer error). Returns the subgraph and the old→new id mapping as
    /// a `Vec<Option<usize>>` over original ids.
    ///
    /// Cost is `O(keep + incident edges)` — kept nodes' adjacency lists are
    /// walked through the CSR and feature rows resolved through the
    /// [`FeatureIndex`]; the full edge list and `txn_nodes` are never
    /// scanned, so extracting a small community from a huge graph no longer
    /// pays `O(E_total)`.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (HetGraph, Vec<Option<NodeId>>) {
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; self.n_nodes()];
        for (new, &old) in keep.iter().enumerate() {
            debug_assert!(old_to_new[old].is_none(), "duplicate node in subgraph set");
            old_to_new[old] = Some(new);
        }

        let node_types: Vec<NodeType> = keep.iter().map(|&v| self.node_types[v]).collect();
        let labels: Vec<Option<bool>> = keep.iter().map(|&v| self.labels[v]).collect();

        // Candidate links: forward edge ids incident to any kept node.
        // Links are stored as consecutive (forward, reverse) pairs, so the
        // forward id of any incident directed edge is `e & !1`. Sorting +
        // deduping restores global edge-id order, which makes the emitted
        // directed-edge sequence bit-identical to a full edge-list scan.
        let mut fwd_candidates: Vec<usize> = Vec::new();
        for &old in keep {
            for &e in self.outgoing.edge_ids(old) {
                fwd_candidates.push(e & !1);
            }
        }
        fwd_candidates.sort_unstable();
        fwd_candidates.dedup();

        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_types = Vec::new();
        for f in fwd_candidates {
            for e in [f, f + 1] {
                if let (Some(s), Some(d)) =
                    (old_to_new[self.edge_src[e]], old_to_new[self.edge_dst[e]])
                {
                    edge_src.push(s);
                    edge_dst.push(d);
                    edge_types.push(self.edge_types[e]);
                }
            }
        }

        // Gather feature rows for retained transactions via the row index.
        let mut feature_row = FeatureIndex::with_capacity(keep.len());
        let mut txn_nodes = Vec::new();
        let mut rows: Vec<usize> = Vec::new();
        for (new, &old) in keep.iter().enumerate() {
            match self.feature_row.get(old) {
                Some(r) => {
                    feature_row.push(Some(rows.len()));
                    txn_nodes.push(new);
                    rows.push(r);
                }
                None => feature_row.push(None),
            }
        }
        let mut features = Tensor::zeros(rows.len(), self.features.cols());
        for (dst, &src) in rows.iter().enumerate() {
            features
                .row_mut(dst)
                .copy_from_slice(self.features.row(src));
        }

        let incoming = Csr::build(keep.len(), &edge_dst, &edge_src);
        let outgoing = Csr::build(keep.len(), &edge_src, &edge_dst);

        let sub = HetGraph {
            node_types,
            edge_src,
            edge_dst,
            edge_types,
            incoming,
            outgoing,
            features,
            feature_row,
            txn_nodes,
            labels,
        };
        (sub, old_to_new)
    }

    /// Checks the structural invariants (CSR/arena consistency, paired
    /// directed edges, features only on txns). Used by tests and
    /// `debug_assert`ed by the builder.
    pub fn validate(&self) -> bool {
        let n = self.n_nodes();
        if !self.incoming.is_consistent(n, &self.edge_src) {
            return false;
        }
        if !self.outgoing.is_consistent(n, &self.edge_dst) {
            return false;
        }
        for v in 0..n {
            for &e in self.incoming.edge_ids(v) {
                if self.edge_dst[e] != v {
                    return false;
                }
            }
            for (&e, &t) in self
                .outgoing
                .edge_ids(v)
                .iter()
                .zip(self.outgoing.targets(v))
            {
                if self.edge_src[e] != v || self.edge_dst[e] != t {
                    return false;
                }
            }
        }
        for v in 0..n {
            match (self.node_types[v], self.feature_row.get(v)) {
                (NodeType::Txn, Some(_)) => {}
                (NodeType::Txn, None) => return false,
                (_, Some(_)) => return false,
                (_, None) => {}
            }
        }
        self.feature_row.len() == n && self.features.rows() == self.txn_nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::types::NodeType;
    use xfraud_tensor::Tensor;

    fn toy() -> crate::HetGraph {
        // txn0 - pmt, txn0 - buyer, txn1 - pmt (shared token), txn1 - addr
        let mut b = GraphBuilder::new(3);
        let t0 = b.add_txn([1.0, 0.0, 0.0], Some(true));
        let t1 = b.add_txn([0.0, 1.0, 0.0], Some(false));
        let pmt = b.add_entity(NodeType::Pmt);
        let buyer = b.add_entity(NodeType::Buyer);
        let addr = b.add_entity(NodeType::Addr);
        b.link(t0, pmt).unwrap();
        b.link(t0, buyer).unwrap();
        b.link(t1, pmt).unwrap();
        b.link(t1, addr).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn toy_graph_counts() {
        let g = toy();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_links(), 4);
        assert_eq!(g.n_directed_edges(), 8);
        assert!(g.validate());
    }

    #[test]
    fn csr_in_and_out_edges_agree_with_edge_list() {
        let g = toy();
        for v in 0..g.n_nodes() {
            for &e in g.incoming().edge_ids(v) {
                assert_eq!(g.edge(e).dst, v);
            }
            for &e in g.outgoing().edge_ids(v) {
                assert_eq!(g.edge(e).src, v);
            }
            // The arena slice is the edge-id walk's endpoints, in order.
            let via_edges: Vec<_> = g
                .outgoing()
                .edge_ids(v)
                .iter()
                .map(|&e| g.edge(e).dst)
                .collect();
            assert_eq!(g.neighbor_slice(v), &via_edges[..]);
        }
        // Shared payment token has two incoming txn edges.
        let pmt = 2;
        assert_eq!(g.node_type(pmt), NodeType::Pmt);
        assert_eq!(g.incoming().degree(pmt), 2);
    }

    #[test]
    fn features_only_on_txns() {
        let g = toy();
        assert_eq!(g.features().shape(), (2, 3));
        assert_eq!(g.feature_row_of(0), Some(0));
        assert_eq!(g.feature_row_of(2), None);
        assert_eq!(g.label(0), Some(true));
        assert_eq!(g.label(2), None);
    }

    #[test]
    fn induced_subgraph_remaps_everything() {
        let g = toy();
        // Keep txn0, pmt, txn1: drops buyer and addr plus their links.
        let (sub, map) = g.induced_subgraph(&[0, 2, 1]);
        assert!(sub.validate());
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.n_links(), 2);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[2], Some(1));
        assert_eq!(map[3], None);
        // txn1 became node 2 and kept its feature row + label.
        assert_eq!(sub.node_type(2), NodeType::Txn);
        assert_eq!(sub.label(2), Some(false));
        let row = sub.feature_row_of(2).unwrap();
        assert_eq!(sub.features().row(row), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn induced_subgraph_matches_full_scan_reference() {
        // Regression for the O(E_total) edge scan: the incident-edge walk
        // must emit exactly what filtering the whole edge list does, on a
        // graph big enough to have plenty of non-incident edges.
        let mut b = GraphBuilder::new(1);
        let mut txns = Vec::new();
        let mut pmts = Vec::new();
        for i in 0..40 {
            txns.push(b.add_txn([i as f32], if i % 3 == 0 { Some(i % 2 == 0) } else { None }));
        }
        for _ in 0..10 {
            pmts.push(b.add_entity(NodeType::Pmt));
        }
        for (i, &t) in txns.iter().enumerate() {
            b.link(t, pmts[i % pmts.len()]).unwrap();
            b.link(t, pmts[(i * 7 + 3) % pmts.len()]).unwrap();
        }
        let g = b.finish().unwrap();

        let keep: Vec<usize> = vec![txns[0], txns[3], pmts[0], pmts[3], txns[9], pmts[1]];
        let (sub, map) = g.induced_subgraph(&keep);
        assert!(sub.validate());

        // Reference: scan every directed edge in id order.
        let mut want_src = Vec::new();
        let mut want_dst = Vec::new();
        let mut want_ty = Vec::new();
        for e in g.edges() {
            if let (Some(s), Some(d)) = (map[e.src], map[e.dst]) {
                want_src.push(s);
                want_dst.push(d);
                want_ty.push(e.ty);
            }
        }
        assert_eq!(sub.edge_sources(), &want_src[..]);
        assert_eq!(sub.edge_targets(), &want_dst[..]);
        assert_eq!(sub.edge_types(), &want_ty[..]);
        assert!(sub.n_links() >= 3, "kept nodes share links");
    }

    #[test]
    fn undirected_links_unique() {
        let g = toy();
        let links = g.undirected_links();
        assert_eq!(links.len(), 4);
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn labeled_txns_lists_only_labeled() {
        let mut b = GraphBuilder::new(1);
        let t0 = b.add_txn([0.5], Some(true));
        let _t1 = b.add_txn([0.5], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.labeled_txns(), vec![(t0, true)]);
    }

    #[test]
    fn empty_feature_graph_is_valid() {
        let b = GraphBuilder::new(4);
        let g = b.finish().unwrap();
        assert!(g.validate());
        assert_eq!(g.features(), &Tensor::zeros(0, 4));
    }
}
