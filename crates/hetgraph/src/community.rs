use std::collections::VecDeque;

use crate::graph::HetGraph;
use crate::types::NodeId;
use crate::{GraphError, Result};

/// The connected neighbourhood around a seed transaction (§5.1 of the
/// paper): the explainer and the annotation study both operate on these.
#[derive(Debug, Clone)]
pub struct Community {
    /// Induced subgraph over the community's nodes.
    pub graph: HetGraph,
    /// The seed transaction's id *within* [`Community::graph`].
    pub seed: NodeId,
    /// For each subgraph node, its id in the original graph.
    pub original_ids: Vec<NodeId>,
    /// Ground-truth label of the seed in the original graph.
    pub seed_label: Option<bool>,
}

impl Community {
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    pub fn n_links(&self) -> usize {
        self.graph.n_links()
    }
}

/// Extracts the community of `seed`: the entire connected component,
/// optionally capped at `max_nodes` by truncating the BFS frontier (the
/// paper's sampled datasets keep components small; the cap guards against
/// pathological giant components in synthetic data).
pub fn community_of(g: &HetGraph, seed: NodeId, max_nodes: usize) -> Result<Community> {
    if seed >= g.n_nodes() {
        return Err(GraphError::UnknownNode(seed));
    }
    // `max_nodes.max(1)` keeps the seed itself even under a zero cap, so
    // the BFS always includes it and the induced map always covers it.
    let nodes = bfs_collect(g, seed, usize::MAX, max_nodes.max(1));
    let (sub, map) = g.induced_subgraph(&nodes);
    let Some(new_seed) = map[seed] else {
        return Err(GraphError::UnknownNode(seed));
    };
    Ok(Community {
        graph: sub,
        seed: new_seed,
        original_ids: nodes,
        seed_label: g.label(seed),
    })
}

/// The k-hop neighbourhood of `seed`, keeping at most `per_hop` *new*
/// neighbours per hop (the Appendix-B sampling step: "each seed is expanded
/// to its k-hop neighbors, and at each hop, no more than N neighbors are
/// picked"). Deterministic: neighbours are visited in edge order.
pub fn khop_neighborhood(g: &HetGraph, seed: NodeId, k: usize, per_hop: usize) -> Vec<NodeId> {
    let mut visited = vec![false; g.n_nodes()];
    visited[seed] = true;
    let mut result = vec![seed];
    let mut frontier = vec![seed];
    for _ in 0..k {
        let mut next = Vec::new();
        'hop: for &v in &frontier {
            for u in g.neighbors(v) {
                if !visited[u] {
                    visited[u] = true;
                    next.push(u);
                    if next.len() >= per_hop {
                        break 'hop;
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        result.extend_from_slice(&next);
        frontier = next;
    }
    result
}

fn bfs_collect(g: &HetGraph, seed: NodeId, max_depth: usize, max_nodes: usize) -> Vec<NodeId> {
    let mut visited = vec![false; g.n_nodes()];
    visited[seed] = true;
    let mut out = vec![seed];
    let mut queue = VecDeque::new();
    queue.push_back((seed, 0usize));
    while let Some((v, d)) = queue.pop_front() {
        if d >= max_depth {
            continue;
        }
        for u in g.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                out.push(u);
                if out.len() >= max_nodes {
                    return out;
                }
                queue.push_back((u, d + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::NodeType;

    /// Two disconnected communities: {t0,t1,pmt} and {t2,addr}.
    fn two_components() -> HetGraph {
        let mut b = GraphBuilder::new(1);
        let t0 = b.add_txn([0.1], Some(true));
        let t1 = b.add_txn([0.2], Some(false));
        let t2 = b.add_txn([0.3], Some(false));
        let pmt = b.add_entity(NodeType::Pmt);
        let addr = b.add_entity(NodeType::Addr);
        b.link(t0, pmt).unwrap();
        b.link(t1, pmt).unwrap();
        b.link(t2, addr).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn community_is_the_connected_component() {
        let g = two_components();
        let c = community_of(&g, 0, usize::MAX).unwrap();
        assert_eq!(c.n_nodes(), 3);
        assert_eq!(c.seed_label, Some(true));
        assert!(c.original_ids.contains(&1));
        assert!(!c.original_ids.contains(&2));
        assert!(c.graph.validate());
    }

    #[test]
    fn community_respects_node_cap() {
        let g = two_components();
        let c = community_of(&g, 0, 2).unwrap();
        assert_eq!(c.n_nodes(), 2);
        assert_eq!(c.graph.node_type(c.seed), NodeType::Txn);
    }

    #[test]
    fn community_of_unknown_seed_errors() {
        let g = two_components();
        assert!(community_of(&g, 999, 10).is_err());
    }

    #[test]
    fn khop_respects_hop_budget() {
        // star: pmt at centre with 5 txns
        let mut b = GraphBuilder::new(1);
        let pmt = {
            let txns: Vec<_> = (0..5).map(|i| b.add_txn([i as f32], None)).collect();
            let pmt = b.add_entity(NodeType::Pmt);
            for t in txns {
                b.link(t, pmt).unwrap();
            }
            pmt
        };
        let g = b.finish().unwrap();
        let hood = khop_neighborhood(&g, pmt, 1, 3);
        assert_eq!(hood.len(), 4); // pmt + 3 of 5 txns
        let hood_all = khop_neighborhood(&g, pmt, 1, 100);
        assert_eq!(hood_all.len(), 6);
    }

    #[test]
    fn khop_zero_hops_is_just_the_seed() {
        let g = two_components();
        assert_eq!(khop_neighborhood(&g, 0, 0, 10), vec![0]);
    }
}
