use std::fmt;

/// Identifier of a node within one [`crate::HetGraph`].
pub type NodeId = usize;

/// The five node types of the eBay transaction graph (§3.1):
/// `A := {txn, pmt, email, addr, buyer}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeType {
    /// A transaction record (the only featured + labelled type).
    Txn,
    /// A payment token (credit card, payment slip, ...).
    Pmt,
    /// A billing/contact email address.
    Email,
    /// A shipping address.
    Addr,
    /// A buyer account.
    Buyer,
}

/// All node types, in the order used for one-hot type encodings.
pub const ALL_NODE_TYPES: [NodeType; 5] = [
    NodeType::Txn,
    NodeType::Pmt,
    NodeType::Email,
    NodeType::Addr,
    NodeType::Buyer,
];

impl NodeType {
    /// Stable dense index into `ALL_NODE_TYPES` (used for type embeddings).
    pub fn index(self) -> usize {
        match self {
            NodeType::Txn => 0,
            NodeType::Pmt => 1,
            NodeType::Email => 2,
            NodeType::Addr => 3,
            NodeType::Buyer => 4,
        }
    }

    /// `true` for the entity (non-transaction) types.
    pub fn is_entity(self) -> bool {
        self != NodeType::Txn
    }

    pub fn label(self) -> &'static str {
        match self {
            NodeType::Txn => "txn",
            NodeType::Pmt => "pmt",
            NodeType::Email => "email",
            NodeType::Addr => "addr",
            NodeType::Buyer => "buyer",
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Directed relation types `φ(e)`. The graph-construction protocol only
/// creates txn↔entity edges, so there are 4 forward relations (txn→entity)
/// and 4 reverse ones (entity→txn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeType {
    TxnPmt,
    TxnEmail,
    TxnAddr,
    TxnBuyer,
    PmtTxn,
    EmailTxn,
    AddrTxn,
    BuyerTxn,
}

/// All edge types, in the order used for edge-type embeddings.
pub const ALL_EDGE_TYPES: [EdgeType; 8] = [
    EdgeType::TxnPmt,
    EdgeType::TxnEmail,
    EdgeType::TxnAddr,
    EdgeType::TxnBuyer,
    EdgeType::PmtTxn,
    EdgeType::EmailTxn,
    EdgeType::AddrTxn,
    EdgeType::BuyerTxn,
];

impl EdgeType {
    /// Stable dense index into `ALL_EDGE_TYPES`.
    pub fn index(self) -> usize {
        match self {
            EdgeType::TxnPmt => 0,
            EdgeType::TxnEmail => 1,
            EdgeType::TxnAddr => 2,
            EdgeType::TxnBuyer => 3,
            EdgeType::PmtTxn => 4,
            EdgeType::EmailTxn => 5,
            EdgeType::AddrTxn => 6,
            EdgeType::BuyerTxn => 7,
        }
    }

    /// The relation type of a `src → dst` edge, if the pair is one the
    /// construction protocol produces (exactly one endpoint must be a txn).
    pub fn between(src: NodeType, dst: NodeType) -> Option<EdgeType> {
        use NodeType::*;
        Some(match (src, dst) {
            (Txn, Pmt) => EdgeType::TxnPmt,
            (Txn, Email) => EdgeType::TxnEmail,
            (Txn, Addr) => EdgeType::TxnAddr,
            (Txn, Buyer) => EdgeType::TxnBuyer,
            (Pmt, Txn) => EdgeType::PmtTxn,
            (Email, Txn) => EdgeType::EmailTxn,
            (Addr, Txn) => EdgeType::AddrTxn,
            (Buyer, Txn) => EdgeType::BuyerTxn,
            _ => return None,
        })
    }

    /// The same relation viewed from the other endpoint.
    pub fn reverse(self) -> EdgeType {
        match self {
            EdgeType::TxnPmt => EdgeType::PmtTxn,
            EdgeType::TxnEmail => EdgeType::EmailTxn,
            EdgeType::TxnAddr => EdgeType::AddrTxn,
            EdgeType::TxnBuyer => EdgeType::BuyerTxn,
            EdgeType::PmtTxn => EdgeType::TxnPmt,
            EdgeType::EmailTxn => EdgeType::TxnEmail,
            EdgeType::AddrTxn => EdgeType::TxnAddr,
            EdgeType::BuyerTxn => EdgeType::TxnBuyer,
        }
    }
}

impl fmt::Display for EdgeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeType::TxnPmt => "txn->pmt",
            EdgeType::TxnEmail => "txn->email",
            EdgeType::TxnAddr => "txn->addr",
            EdgeType::TxnBuyer => "txn->buyer",
            EdgeType::PmtTxn => "pmt->txn",
            EdgeType::EmailTxn => "email->txn",
            EdgeType::AddrTxn => "addr->txn",
            EdgeType::BuyerTxn => "buyer->txn",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_type_indices_match_order() {
        for (i, t) in ALL_NODE_TYPES.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn edge_type_indices_match_order() {
        for (i, t) in ALL_EDGE_TYPES.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn reverse_is_an_involution() {
        for t in ALL_EDGE_TYPES {
            assert_eq!(t.reverse().reverse(), t);
        }
    }

    #[test]
    fn between_rejects_entity_entity_and_txn_txn() {
        assert_eq!(EdgeType::between(NodeType::Pmt, NodeType::Email), None);
        assert_eq!(EdgeType::between(NodeType::Txn, NodeType::Txn), None);
        assert_eq!(
            EdgeType::between(NodeType::Txn, NodeType::Buyer),
            Some(EdgeType::TxnBuyer)
        );
    }
}
