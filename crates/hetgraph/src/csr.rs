//! The flat CSR/arena adjacency core.
//!
//! [`Csr`] is the storage behind every frozen [`crate::HetGraph`]: one
//! offsets array plus two parallel arenas — edge ids and the opposite
//! endpoint of each edge — laid out contiguously so a node's adjacency is a
//! pair of cache-friendly slices. Keeping the *endpoint arena* next to the
//! edge-id arena is what makes neighbour iteration allocation-free and
//! pointer-chase-free: samplers and kernels read `targets(v)` straight out
//! of one contiguous run instead of mapping every edge id through the edge
//! list.
//!
//! [`FeatureIndex`] is the companion node→feature-row index: a dense `u32`
//! array with a sentinel for featureless (entity) nodes, replacing the old
//! `Vec<Option<usize>>` (half the memory, no niche lookups on the serve
//! path, and O(1) row resolution inside `induced_subgraph`).

use crate::types::NodeId;

/// Compressed-sparse-row adjacency over one edge direction.
///
/// For each node `v`, `edge_ids(v)` are the ids of `v`'s incident directed
/// edges (in ascending edge-id order — the order every sampler and the
/// [`crate::DeltaGraph`] overlay contract depend on) and `targets(v)` are
/// the opposite endpoints of those edges, aligned index-for-index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csr {
    offsets: Vec<usize>,
    edge_ids: Vec<usize>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds the CSR keyed by `key_per_edge` (one entry per directed edge:
    /// the endpoint the edge is filed under), recording `other_per_edge` as
    /// the arena of opposite endpoints. Counting sort, so `edge_ids(v)` is
    /// ascending for every `v`.
    pub fn build(n_nodes: usize, key_per_edge: &[NodeId], other_per_edge: &[NodeId]) -> Csr {
        debug_assert_eq!(key_per_edge.len(), other_per_edge.len());
        let mut counts = vec![0usize; n_nodes + 1];
        for &k in key_per_edge {
            counts[k + 1] += 1;
        }
        for i in 0..n_nodes {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut edge_ids = vec![0usize; key_per_edge.len()];
        let mut targets = vec![0 as NodeId; key_per_edge.len()];
        for (e, &k) in key_per_edge.iter().enumerate() {
            edge_ids[cursor[k]] = e;
            targets[cursor[k]] = other_per_edge[e];
            cursor[k] += 1;
        }
        Csr {
            offsets,
            edge_ids,
            targets,
        }
    }

    /// Number of nodes indexed.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total directed edges in the arena.
    pub fn n_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// Ids of `v`'s incident edges, ascending.
    #[inline]
    pub fn edge_ids(&self, v: NodeId) -> &[usize] {
        &self.edge_ids[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Opposite endpoints of `v`'s incident edges, aligned with
    /// [`Csr::edge_ids`] — the allocation-free neighbour slice.
    #[inline]
    pub fn targets(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Incident-edge count of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Structural consistency against the flat edge list this CSR indexes:
    /// offsets are monotone and exhaustive, and for every position the
    /// recorded target matches `other_per_edge[edge_id]`.
    pub fn is_consistent(&self, n_nodes: usize, other_per_edge: &[NodeId]) -> bool {
        if self.offsets.len() != n_nodes + 1 {
            return false;
        }
        if self.offsets.first().copied() != Some(0)
            || self.offsets.last().copied() != Some(self.edge_ids.len())
            || self.edge_ids.len() != self.targets.len()
            || self.edge_ids.len() != other_per_edge.len()
        {
            return false;
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        self.edge_ids
            .iter()
            .zip(self.targets.iter())
            .all(|(&e, &t)| other_per_edge.get(e) == Some(&t))
    }
}

/// Sentinel marking a node with no feature row (entities).
const NO_ROW: u32 = u32::MAX;

/// Dense node → feature-row index (`u32` with a sentinel), the CSR-era
/// replacement for `Vec<Option<usize>>`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureIndex {
    rows: Vec<u32>,
}

impl FeatureIndex {
    pub fn with_capacity(nodes: usize) -> FeatureIndex {
        FeatureIndex {
            rows: Vec::with_capacity(nodes),
        }
    }

    /// Appends the next node's row (`None` for featureless nodes).
    pub fn push(&mut self, row: Option<usize>) {
        self.rows.push(match row {
            // Graphs stay far below u32::MAX feature rows; debug-checked.
            Some(r) => {
                debug_assert!(r < NO_ROW as usize, "feature-row index overflow");
                r as u32
            }
            None => NO_ROW,
        });
    }

    /// Feature row of node `v`, if any. Out-of-range ids read as `None`.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<usize> {
        match self.rows.get(v) {
            Some(&r) if r != NO_ROW => Some(r as usize),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_build_orders_edges_and_aligns_targets() {
        // Directed edges: 0->1, 1->0, 0->2, 2->0 (two links on node 0).
        let src = vec![0usize, 1, 0, 2];
        let dst = vec![1usize, 0, 2, 0];
        let out = Csr::build(3, &src, &dst);
        assert_eq!(out.n_nodes(), 3);
        assert_eq!(out.n_edges(), 4);
        assert_eq!(out.edge_ids(0), &[0, 2]);
        assert_eq!(out.targets(0), &[1, 2]);
        assert_eq!(out.edge_ids(1), &[1]);
        assert_eq!(out.targets(1), &[0]);
        assert_eq!(out.degree(2), 1);
        assert!(out.is_consistent(3, &dst));
        assert!(!out.is_consistent(3, &src), "targets keyed to dst, not src");
    }

    #[test]
    fn feature_index_roundtrips_options() {
        let mut idx = FeatureIndex::with_capacity(3);
        idx.push(Some(0));
        idx.push(None);
        idx.push(Some(7));
        assert_eq!(idx.get(0), Some(0));
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.get(2), Some(7));
        assert_eq!(idx.get(99), None, "out of range reads as featureless");
        assert_eq!(idx.len(), 3);
    }
}
