//! Out-of-core feature serving: a [`GraphView`] whose topology lives in RAM
//! but whose transaction feature rows come from an external store (a
//! memory-mapped disk segment, a KV store, …).
//!
//! At paper scale (§3.3.3, Fig. 12/13) the feature matrix is the part of the
//! graph that does not fit in memory — eBay-large is ~1.1 B nodes with
//! hundreds of float features per transaction, while the topology (CSR
//! offsets + targets) is comparatively small. [`ExternalFeatureGraph`] splits
//! the two: it wraps any graph for its adjacency/labels/types and delegates
//! [`GraphView::copy_features_into`] to a [`FeatureSource`], so samplers,
//! batch assembly and the trainer run unchanged over a graph whose features
//! are paged in on demand.
//!
//! `GraphView` stays sealed: external crates implement the *open*
//! [`FeatureSource`] trait (a pure row-fetch contract with no adjacency
//! invariants to break), and this module provides the one sealed wrapper.

use std::sync::Arc;

use crate::graph::EdgeRef;
use crate::types::{NodeId, NodeType};
use crate::view::{sealed, GraphSnapshot, GraphView};

/// A source of dense per-node feature rows, independent of graph topology.
///
/// Implementations must be cheap to call concurrently (`&self` from many
/// loader threads) and total: `fill_features` reports via its return value
/// whether a row was present, and must leave `out` fully overwritten either
/// way (stored bytes or zeros).
pub trait FeatureSource: Send + Sync {
    /// Width of the rows this source serves.
    fn feature_dim(&self) -> usize;

    /// Overwrites `out` (which is `feature_dim` long) with `v`'s row.
    /// Returns `true` iff the source had a stored row for `v`; on `false`,
    /// `out` must be zeroed.
    fn fill_features(&self, v: NodeId, out: &mut [f32]) -> bool;
}

impl<T: FeatureSource + ?Sized> FeatureSource for Arc<T> {
    fn feature_dim(&self) -> usize {
        (**self).feature_dim()
    }

    fn fill_features(&self, v: NodeId, out: &mut [f32]) -> bool {
        (**self).fill_features(v, out)
    }
}

/// A [`GraphView`] that reads topology/labels/types from `graph` and
/// transaction feature rows from `features` — the out-of-core training and
/// scoring view. Entity nodes read as zeros without consulting the source,
/// preserving the §3.2.1 "initial node features are empty" contract.
///
/// The wrapped graph is normally built with `feature_dim == 0` (topology
/// only); this wrapper reports the source's dimension instead.
pub struct ExternalFeatureGraph<G, F> {
    graph: G,
    features: F,
}

impl<G: GraphView, F: FeatureSource> ExternalFeatureGraph<G, F> {
    pub fn new(graph: G, features: F) -> Self {
        ExternalFeatureGraph { graph, features }
    }

    /// The wrapped topology graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The external feature source.
    pub fn features(&self) -> &F {
        &self.features
    }
}

impl<G, F> sealed::Sealed for ExternalFeatureGraph<G, F> {}

impl<G, F> GraphView for ExternalFeatureGraph<G, F>
where
    G: GraphView + Clone + Send + Sync + 'static,
    F: FeatureSource + Clone + Send + Sync + 'static,
{
    fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    fn n_directed_edges(&self) -> usize {
        self.graph.n_directed_edges()
    }

    fn node_type(&self, v: NodeId) -> NodeType {
        self.graph.node_type(v)
    }

    fn label(&self, v: NodeId) -> Option<bool> {
        self.graph.label(v)
    }

    fn feature_dim(&self) -> usize {
        self.features.feature_dim()
    }

    fn copy_features_into(&self, v: NodeId, out: &mut [f32]) -> bool {
        debug_assert_eq!(out.len(), self.feature_dim());
        if self.graph.node_type(v) != NodeType::Txn {
            out.fill(0.0);
            return false;
        }
        self.features.fill_features(v, out);
        true
    }

    fn edge(&self, id: usize) -> EdgeRef {
        self.graph.edge(id)
    }

    fn out_edge_parts(&self, v: NodeId) -> (&[usize], &[usize]) {
        self.graph.out_edge_parts(v)
    }

    fn neighbor_parts(&self, v: NodeId) -> (&[NodeId], &[NodeId]) {
        self.graph.neighbor_parts(v)
    }

    fn snapshot(&self) -> GraphSnapshot {
        let clone = ExternalFeatureGraph {
            graph: self.graph.clone(),
            features: self.features.clone(),
        };
        GraphSnapshot::new(Arc::new(clone), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::HetGraph;
    use crate::view::GraphViewExt;

    #[derive(Clone)]
    struct ConstSource {
        dim: usize,
    }

    impl FeatureSource for ConstSource {
        fn feature_dim(&self) -> usize {
            self.dim
        }

        fn fill_features(&self, v: NodeId, out: &mut [f32]) -> bool {
            for (i, o) in out.iter_mut().enumerate() {
                *o = (v * 10 + i) as f32;
            }
            true
        }
    }

    fn topology_only() -> HetGraph {
        // dim-0 builder: txns carry labels but no stored features.
        let mut b = GraphBuilder::new(0);
        let t0 = b.add_txn([0.0f32; 0], Some(true));
        let t1 = b.add_txn([0.0f32; 0], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn topology_delegates_and_features_come_from_source() {
        let g = topology_only();
        let ext = ExternalFeatureGraph::new(g.clone(), ConstSource { dim: 3 });
        assert_eq!(ext.n_nodes(), g.n_nodes());
        assert_eq!(ext.n_directed_edges(), g.n_directed_edges());
        assert_eq!(ext.feature_dim(), 3);
        for v in 0..g.n_nodes() {
            assert_eq!(ext.label(v), g.label(v));
            assert_eq!(
                ext.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>()
            );
        }
        let mut row = [0.0f32; 3];
        assert!(ext.copy_features_into(0, &mut row));
        assert_eq!(row, [0.0, 1.0, 2.0]);
        assert!(ext.copy_features_into(1, &mut row));
        assert_eq!(row, [10.0, 11.0, 12.0]);
    }

    #[test]
    fn entity_rows_are_zero_without_touching_the_source() {
        let g = topology_only();
        let ext = ExternalFeatureGraph::new(g, ConstSource { dim: 2 });
        let mut row = [9.0f32; 2];
        assert!(!ext.copy_features_into(2, &mut row), "pmt is an entity");
        assert_eq!(row, [0.0, 0.0]);
    }

    #[test]
    fn snapshot_is_a_shared_image_of_the_wrapper() {
        let g = topology_only();
        let ext = ExternalFeatureGraph::new(g.clone(), ConstSource { dim: 2 });
        let snap = ext.snapshot();
        assert_eq!(snap.n_nodes(), g.n_nodes());
        assert_eq!(snap.feature_dim(), 2);
        let mut row = [0.0f32; 2];
        assert!(snap.copy_features_into(0, &mut row));
        assert_eq!(row, [0.0, 1.0]);
    }
}
