use std::fmt;

use crate::types::NodeType;

/// Errors from graph construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    UnknownNode(usize),
    /// An edge was requested between two types the schema forbids
    /// (both endpoints entities, or both transactions).
    InvalidRelation(NodeType, NodeType),
    /// The feature matrix row count disagrees with the number of txn nodes.
    FeatureRowMismatch {
        txn_nodes: usize,
        feature_rows: usize,
    },
    /// A label was supplied for a non-transaction node.
    LabelOnEntity(usize),
    /// A streamed-in feature row had the wrong width for this graph.
    FeatureDimMismatch { expected: usize, got: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::InvalidRelation(a, b) => {
                write!(f, "no relation allowed between node types {a} and {b}")
            }
            GraphError::FeatureRowMismatch {
                txn_nodes,
                feature_rows,
            } => write!(
                f,
                "feature matrix has {feature_rows} rows but the graph has {txn_nodes} txn nodes"
            ),
            GraphError::LabelOnEntity(id) => {
                write!(f, "node {id} is not a transaction and cannot carry a label")
            }
            GraphError::FeatureDimMismatch { expected, got } => {
                write!(
                    f,
                    "feature row has {got} values but the graph expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}
