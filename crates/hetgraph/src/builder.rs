use xfraud_tensor::Tensor;

use crate::csr::{Csr, FeatureIndex};
use crate::graph::HetGraph;
use crate::types::{EdgeType, NodeId, NodeType};
use crate::{GraphError, Result};

/// Incremental constructor for [`HetGraph`] (the "graph constructor" stage of
/// the xFraud pipeline, Fig. 2).
///
/// Nodes are appended with [`GraphBuilder::add_txn`] /
/// [`GraphBuilder::add_entity`]; transaction↔entity links with
/// [`GraphBuilder::link`], which stores both directed edges so downstream
/// message passing reaches both endpoints. [`GraphBuilder::finish`] freezes
/// everything into CSR form.
pub struct GraphBuilder {
    feature_dim: usize,
    node_types: Vec<NodeType>,
    labels: Vec<Option<bool>>,
    feature_rows: Vec<f32>,
    txn_row: Vec<Option<usize>>,
    txn_nodes: Vec<NodeId>,
    edge_src: Vec<NodeId>,
    edge_dst: Vec<NodeId>,
    edge_types: Vec<EdgeType>,
}

impl GraphBuilder {
    /// Starts a builder for graphs whose transactions carry `feature_dim`
    /// features (480 for eBay-large/xlarge, 114 for eBay-small).
    pub fn new(feature_dim: usize) -> Self {
        GraphBuilder {
            feature_dim,
            node_types: Vec::new(),
            labels: Vec::new(),
            feature_rows: Vec::new(),
            txn_row: Vec::new(),
            txn_nodes: Vec::new(),
            edge_src: Vec::new(),
            edge_dst: Vec::new(),
            edge_types: Vec::new(),
        }
    }

    /// Pre-allocates for an expected size (keeps big builds realloc-free).
    pub fn with_capacity(feature_dim: usize, nodes: usize, links: usize) -> Self {
        let mut b = GraphBuilder::new(feature_dim);
        b.node_types.reserve(nodes);
        b.labels.reserve(nodes);
        b.txn_row.reserve(nodes);
        b.edge_src.reserve(links * 2);
        b.edge_dst.reserve(links * 2);
        b.edge_types.reserve(links * 2);
        b
    }

    pub fn n_nodes(&self) -> usize {
        self.node_types.len()
    }

    pub fn n_links(&self) -> usize {
        self.edge_src.len() / 2
    }

    /// Adds a transaction node with its risk-identifier features and an
    /// optional supervision label (`None` = in the graph but unlabelled,
    /// like the non-sampled benign transactions of Appendix B).
    ///
    /// # Panics
    /// Panics if the feature slice length differs from the builder's
    /// `feature_dim` — that is a programming error in the generator.
    pub fn add_txn(&mut self, features: impl AsRef<[f32]>, label: Option<bool>) -> NodeId {
        let features = features.as_ref();
        assert_eq!(
            features.len(),
            self.feature_dim,
            "transaction feature length must equal the builder feature_dim"
        );
        let id = self.node_types.len();
        self.node_types.push(NodeType::Txn);
        self.labels.push(label);
        self.txn_row.push(Some(self.txn_nodes.len()));
        self.txn_nodes.push(id);
        self.feature_rows.extend_from_slice(features);
        id
    }

    /// Adds an entity node (payment token, email, address or buyer).
    ///
    /// # Panics
    /// Panics if called with [`NodeType::Txn`]; use [`Self::add_txn`].
    pub fn add_entity(&mut self, ty: NodeType) -> NodeId {
        assert!(ty.is_entity(), "use add_txn for transaction nodes");
        let id = self.node_types.len();
        self.node_types.push(ty);
        self.labels.push(None);
        self.txn_row.push(None);
        id
    }

    /// Links a transaction and an entity (order-insensitive), adding both
    /// directed edges with their relation types.
    ///
    /// The relation of §3.1 is binary ("if a transaction has relation with
    /// another node, we put an edge"), so callers must not link the same
    /// pair twice — the builder does not dedupe, and downstream consumers
    /// (notably the line-graph transform) assume a simple graph.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        let ta = *self.node_types.get(a).ok_or(GraphError::UnknownNode(a))?;
        let tb = *self.node_types.get(b).ok_or(GraphError::UnknownNode(b))?;
        let fwd = EdgeType::between(ta, tb).ok_or(GraphError::InvalidRelation(ta, tb))?;
        self.edge_src.push(a);
        self.edge_dst.push(b);
        self.edge_types.push(fwd);
        self.edge_src.push(b);
        self.edge_dst.push(a);
        self.edge_types.push(fwd.reverse());
        Ok(())
    }

    /// Freezes the builder into an immutable CSR graph.
    pub fn finish(self) -> Result<HetGraph> {
        let n = self.node_types.len();
        let n_txn = self.txn_nodes.len();
        let features =
            Tensor::from_vec(n_txn, self.feature_dim, self.feature_rows).map_err(|_| {
                GraphError::FeatureRowMismatch {
                    txn_nodes: n_txn,
                    feature_rows: usize::MAX,
                }
            })?;
        let incoming = Csr::build(n, &self.edge_dst, &self.edge_src);
        let outgoing = Csr::build(n, &self.edge_src, &self.edge_dst);
        let mut feature_row = FeatureIndex::with_capacity(n);
        for row in &self.txn_row {
            feature_row.push(*row);
        }
        let g = HetGraph {
            node_types: self.node_types,
            edge_src: self.edge_src,
            edge_dst: self.edge_dst,
            edge_types: self.edge_types,
            incoming,
            outgoing,
            features,
            feature_row,
            txn_nodes: self.txn_nodes,
            labels: self.labels,
        };
        debug_assert!(g.validate(), "builder produced an inconsistent graph");
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_rejects_entity_entity() {
        let mut b = GraphBuilder::new(2);
        let p = b.add_entity(NodeType::Pmt);
        let e = b.add_entity(NodeType::Email);
        assert!(matches!(
            b.link(p, e),
            Err(GraphError::InvalidRelation(_, _))
        ));
    }

    #[test]
    fn link_rejects_unknown_node() {
        let mut b = GraphBuilder::new(2);
        let t = b.add_txn([0.0, 0.0], None);
        assert!(matches!(b.link(t, 99), Err(GraphError::UnknownNode(99))));
    }

    #[test]
    fn link_is_order_insensitive() {
        let mut b = GraphBuilder::new(1);
        let t = b.add_txn([1.0], None);
        let p = b.add_entity(NodeType::Pmt);
        b.link(p, t).unwrap();
        let g = b.finish().unwrap();
        let tys: Vec<_> = g.edges().map(|e| e.ty).collect();
        assert!(tys.contains(&EdgeType::PmtTxn));
        assert!(tys.contains(&EdgeType::TxnPmt));
    }

    #[test]
    #[should_panic(expected = "feature length")]
    fn wrong_feature_length_panics() {
        let mut b = GraphBuilder::new(3);
        b.add_txn([1.0], None);
    }
}
