use std::fmt;

use crate::graph::HetGraph;
use crate::types::{NodeType, ALL_NODE_TYPES};

/// Dataset statistics in the shape of the paper's Table 2 (sizes, sparsity,
/// fraud rate) and Table 6 (node-type mix).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub n_nodes: usize,
    pub n_links: usize,
    pub feature_dim: usize,
    /// Node counts per type, indexed by [`NodeType::index`].
    pub type_counts: [usize; 5],
    pub labeled_txns: usize,
    pub fraud_txns: usize,
}

impl GraphStats {
    pub fn of(g: &HetGraph) -> Self {
        let mut type_counts = [0usize; 5];
        for &t in g.node_types() {
            type_counts[t.index()] += 1;
        }
        let labeled = g.labeled_txns();
        let fraud = labeled.iter().filter(|&&(_, y)| y).count();
        GraphStats {
            n_nodes: g.n_nodes(),
            n_links: g.n_links(),
            feature_dim: g.feature_dim(),
            type_counts,
            labeled_txns: labeled.len(),
            fraud_txns: fraud,
        }
    }

    /// Links per node — the sparsity column of Table 5 (eBay graphs sit at
    /// 1.49–3.36, far below e.g. OAG's 11.17, which motivates detector+).
    pub fn links_per_node(&self) -> f64 {
        if self.n_nodes == 0 {
            0.0
        } else {
            self.n_links as f64 / self.n_nodes as f64
        }
    }

    /// Fraud share among *labelled* transactions (the paper's "Fraud%").
    pub fn fraud_rate(&self) -> f64 {
        if self.labeled_txns == 0 {
            0.0
        } else {
            self.fraud_txns as f64 / self.labeled_txns as f64
        }
    }

    /// Share of nodes of a given type, as in Table 6's "Node type%".
    pub fn type_share(&self, t: NodeType) -> f64 {
        if self.n_nodes == 0 {
            0.0
        } else {
            self.type_counts[t.index()] as f64 / self.n_nodes as f64
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nodes={} links={} links/node={:.2} features={} fraud%={:.2}",
            self.n_nodes,
            self.n_links,
            self.links_per_node(),
            self.feature_dim,
            100.0 * self.fraud_rate()
        )?;
        for t in ALL_NODE_TYPES {
            writeln!(
                f,
                "  {:<6} {:>10} ({:.1}%)",
                t.label(),
                self.type_counts[t.index()],
                100.0 * self.type_share(t)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_count_types_links_and_fraud() {
        let mut b = GraphBuilder::new(2);
        let t0 = b.add_txn([0.0, 0.0], Some(true));
        let t1 = b.add_txn([0.0, 0.0], Some(false));
        let t2 = b.add_txn([0.0, 0.0], None);
        let p = b.add_entity(NodeType::Pmt);
        let e = b.add_entity(NodeType::Email);
        b.link(t0, p).unwrap();
        b.link(t1, p).unwrap();
        b.link(t2, e).unwrap();
        let s = GraphStats::of(&b.finish().unwrap());
        assert_eq!(s.n_nodes, 5);
        assert_eq!(s.n_links, 3);
        assert_eq!(s.type_counts[NodeType::Txn.index()], 3);
        assert_eq!(s.labeled_txns, 2);
        assert_eq!(s.fraud_txns, 1);
        assert!((s.fraud_rate() - 0.5).abs() < 1e-12);
        assert!((s.links_per_node() - 0.6).abs() < 1e-12);
        assert!((s.type_share(NodeType::Txn) - 0.6).abs() < 1e-12);
    }
}
