//! Heterogeneous transaction graphs (§3.1 of the xFraud paper).
//!
//! A transaction log is abstracted as a typed graph: transactions (`txn`) are
//! linked to the entities they share — payment tokens (`pmt`), emails
//! (`email`), shipping addresses (`addr`) and buyers (`buyer`). Only `txn`
//! nodes carry input features (computed upstream by a risk identifier) and a
//! fraud/legit label; entity nodes start featureless and acquire
//! representations through message passing.
//!
//! The central type is [`HetGraph`], an immutable CSR-indexed typed graph
//! produced by [`GraphBuilder`]. Supporting types cover what the paper's
//! pipeline needs downstream:
//!
//! * [`Community`] — the connected neighbourhood around a seed transaction,
//!   used by the explainer experiments (§5.1: "a community is formed around a
//!   transaction seed node, where all connected nodes and edges are taken").
//! * [`line_graph`] — the line-graph transform used to turn node centralities
//!   into edge weights (Appendix F).
//! * [`GraphStats`] — the Table 2/5/6 statistics.

mod builder;
mod community;
mod csr;
mod delta;
mod epoch;
mod error;
mod external;
mod graph;
mod line;
mod stats;
mod types;
mod view;

pub use builder::GraphBuilder;
pub use community::{community_of, khop_neighborhood, Community};
pub use csr::{Csr, FeatureIndex};
pub use delta::{DeltaGraph, GraphEvent};
pub use epoch::{EpochCell, Pinned};
pub use error::GraphError;
pub use external::{ExternalFeatureGraph, FeatureSource};
pub use graph::{EdgeRef, HetGraph};
pub use line::{line_graph, LineGraph};
pub use stats::GraphStats;
pub use types::{EdgeType, NodeId, NodeType, ALL_EDGE_TYPES, ALL_NODE_TYPES};
pub use view::{EdgesOf, GraphSnapshot, GraphView, GraphViewExt, Neighbors};

pub type Result<T> = std::result::Result<T, GraphError>;
