use std::fmt;

/// Comparison direction of a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `feature >= threshold`
    Ge,
    /// `feature <= threshold`
    Le,
}

/// One axis-aligned condition on a feature dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Literal {
    pub feature: usize,
    pub op: Op,
    pub threshold: f32,
}

impl Literal {
    pub fn matches(&self, row: &[f32]) -> bool {
        let v = row[self.feature];
        match self.op {
            Op::Ge => v >= self.threshold,
            Op::Le => v <= self.threshold,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            Op::Ge => ">=",
            Op::Le => "<=",
        };
        write!(f, "x[{}] {} {:.3}", self.feature, op, self.threshold)
    }
}

/// A conjunction of literals with its training-split quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub literals: Vec<Literal>,
    /// Fraud precision on the training split.
    pub precision: f64,
    /// Fraud recall on the training split.
    pub recall: f64,
    /// Number of training rows matched.
    pub support: usize,
}

impl Rule {
    pub fn matches(&self, row: &[f32]) -> bool {
        self.literals.iter().all(|l| l.matches(row))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let conds: Vec<String> = self.literals.iter().map(Literal::to_string).collect();
        write!(
            f,
            "IF {} THEN fraud  (precision {:.2}, recall {:.2}, support {})",
            conds.join(" AND "),
            self.precision,
            self.recall,
            self.support
        )
    }
}

/// The mined rule list; a transaction is *risky* iff any rule fires.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

impl RuleSet {
    pub fn is_risky(&self, row: &[f32]) -> bool {
        self.rules.iter().any(|r| r.matches(row))
    }

    /// Splits row indices into (risky, low-risk) — the paper's pre-GNN
    /// filter: low-risk rows never reach the graph model.
    pub fn filter(&self, rows: &[&[f32]]) -> (Vec<usize>, Vec<usize>) {
        let mut risky = Vec::new();
        let mut low = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if self.is_risky(row) {
                risky.push(i);
            } else {
                low.push(i);
            }
        }
        (risky, low)
    }

    /// Precision/recall of the "any rule fires" flag on labelled rows.
    pub fn evaluate(&self, rows: &[&[f32]], labels: &[bool]) -> (f64, f64) {
        assert_eq!(rows.len(), labels.len());
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for (row, &y) in rows.iter().zip(labels) {
            match (self.is_risky(row), y) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        (precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(feature: usize, op: Op, threshold: f32) -> Rule {
        Rule {
            literals: vec![Literal {
                feature,
                op,
                threshold,
            }],
            precision: 1.0,
            recall: 1.0,
            support: 1,
        }
    }

    #[test]
    fn literal_matching_is_inclusive() {
        let l = Literal {
            feature: 0,
            op: Op::Ge,
            threshold: 1.0,
        };
        assert!(l.matches(&[1.0]));
        assert!(l.matches(&[2.0]));
        assert!(!l.matches(&[0.9]));
        let l = Literal {
            feature: 0,
            op: Op::Le,
            threshold: 1.0,
        };
        assert!(l.matches(&[1.0]));
        assert!(!l.matches(&[1.1]));
    }

    #[test]
    fn conjunction_requires_all_literals() {
        let r = Rule {
            literals: vec![
                Literal {
                    feature: 0,
                    op: Op::Ge,
                    threshold: 1.0,
                },
                Literal {
                    feature: 1,
                    op: Op::Le,
                    threshold: 0.0,
                },
            ],
            precision: 1.0,
            recall: 1.0,
            support: 1,
        };
        assert!(r.matches(&[1.5, -1.0]));
        assert!(!r.matches(&[1.5, 1.0]));
        assert!(!r.matches(&[0.5, -1.0]));
    }

    #[test]
    fn ruleset_filter_partitions_rows() {
        let rs = RuleSet {
            rules: vec![rule(0, Op::Ge, 0.5)],
        };
        let rows: Vec<&[f32]> = vec![&[0.9], &[0.1], &[0.6]];
        let (risky, low) = rs.filter(&rows);
        assert_eq!(risky, vec![0, 2]);
        assert_eq!(low, vec![1]);
    }

    #[test]
    fn evaluate_computes_precision_recall() {
        let rs = RuleSet {
            rules: vec![rule(0, Op::Ge, 0.5)],
        };
        let rows: Vec<&[f32]> = vec![&[0.9], &[0.9], &[0.1], &[0.1]];
        let labels = [true, false, true, false];
        let (p, r) = rs.evaluate(&rows, &labels);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let r = rule(3, Op::Ge, 1.25);
        let s = r.to_string();
        assert!(s.contains("x[3] >= 1.250"), "{s}");
        assert!(s.contains("THEN fraud"));
    }
}
