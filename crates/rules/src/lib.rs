//! Rule mining on tabular transaction features — the production stage that
//! runs *before* the GNN.
//!
//! The paper's pipeline (Appendix B/H) filters the raw stream with "simple
//! rules ... already implemented in the eBay transaction platforms" (fraud
//! rate 0.016 % → 0.043 %), and the business unit consumes explanations
//! through a rule system (footnote 6: skope-rules). This crate implements a
//! small skope-rules-style miner:
//!
//! 1. candidate generation — axis-aligned threshold literals
//!    (`feature_j ≥ t` / `feature_j ≤ t`) scored at quantile cut-points;
//! 2. conjunction growth — the best literals are combined into depth-≤2
//!    AND-rules;
//! 3. selection — rules are kept if they reach a precision and support
//!    floor on the training split, then deduplicated by greedy cover.
//!
//! [`RuleSet::filter`] reproduces the paper's pre-filtering semantics:
//! transactions matched by *no* rule are "low-risk" and can be dropped
//! before the expensive GNN stage, trading a bounded recall loss for a much
//! smaller candidate stream (the Appendix-H.4 arithmetic).

mod miner;
mod rule;

pub use miner::{MinerConfig, RuleMiner};
pub use rule::{Literal, Op, Rule, RuleSet};
