use crate::rule::{Literal, Op, Rule, RuleSet};

/// Mining hyper-parameters.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Quantile cut-points evaluated per feature (skope-rules uses tree
    /// split points; quantiles are the deterministic equivalent).
    pub n_thresholds: usize,
    /// Minimum fraud precision a kept rule must reach on the train split.
    pub min_precision: f64,
    /// Minimum number of matched training rows.
    pub min_support: usize,
    /// Maximum number of rules kept after greedy cover.
    pub max_rules: usize,
    /// Number of top literals expanded into depth-2 conjunctions.
    pub beam: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            n_thresholds: 16,
            min_precision: 0.3,
            min_support: 10,
            max_rules: 12,
            beam: 10,
        }
    }
}

/// skope-rules-style miner: quantile literals → depth-2 conjunctions →
/// precision/support gate → greedy cover.
pub struct RuleMiner {
    pub cfg: MinerConfig,
}

impl RuleMiner {
    pub fn new(cfg: MinerConfig) -> Self {
        RuleMiner { cfg }
    }

    /// Mines a rule set from labelled rows (`true` = fraud).
    pub fn mine(&self, rows: &[&[f32]], labels: &[bool]) -> RuleSet {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return RuleSet::default();
        }
        let dim = rows[0].len();
        let n_pos = labels.iter().filter(|&&y| y).count();
        if n_pos == 0 {
            return RuleSet::default();
        }

        // 1. Candidate literals at per-feature quantiles, both directions.
        let mut literals: Vec<Literal> = Vec::new();
        for feature in 0..dim {
            let mut values: Vec<f32> = rows.iter().map(|r| r[feature]).collect();
            values.sort_by(|a, b| a.total_cmp(b));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            for q in 1..=self.cfg.n_thresholds {
                let idx = q * (values.len() - 1) / (self.cfg.n_thresholds + 1);
                let threshold = values[idx];
                literals.push(Literal {
                    feature,
                    op: Op::Ge,
                    threshold,
                });
                literals.push(Literal {
                    feature,
                    op: Op::Le,
                    threshold,
                });
            }
        }

        // Score a candidate conjunction.
        let score = |lits: &[Literal]| -> Option<Rule> {
            let mut tp = 0usize;
            let mut matched = 0usize;
            for (row, &y) in rows.iter().zip(labels) {
                if lits.iter().all(|l| l.matches(row)) {
                    matched += 1;
                    if y {
                        tp += 1;
                    }
                }
            }
            if matched < self.cfg.min_support {
                return None;
            }
            let precision = tp as f64 / matched as f64;
            if precision < self.cfg.min_precision {
                return None;
            }
            Some(Rule {
                literals: lits.to_vec(),
                precision,
                recall: tp as f64 / n_pos as f64,
                support: matched,
            })
        };

        // 2. Keep the best single literals, then grow depth-2 conjunctions
        //    from the beam.
        let mut singles: Vec<Rule> = literals.iter().filter_map(|&l| score(&[l])).collect();
        singles.sort_by(|a, b| (b.precision * b.recall).total_cmp(&(a.precision * a.recall)));
        singles.truncate(self.cfg.beam);

        let mut candidates = singles.clone();
        for (i, a) in singles.iter().enumerate() {
            for b in &singles[i + 1..] {
                if a.literals[0].feature == b.literals[0].feature {
                    continue;
                }
                let lits = vec![a.literals[0], b.literals[0]];
                if let Some(rule) = score(&lits) {
                    candidates.push(rule);
                }
            }
        }

        // 3. Greedy cover: repeatedly take the rule adding the most *new*
        //    true positives, weighted by precision.
        let mut covered = vec![false; rows.len()];
        let mut kept: Vec<Rule> = Vec::new();
        while kept.len() < self.cfg.max_rules {
            let mut best: Option<(f64, usize)> = None;
            for (ri, rule) in candidates.iter().enumerate() {
                let new_tp = rows
                    .iter()
                    .zip(labels)
                    .zip(&covered)
                    .filter(|((row, &y), &cov)| y && !cov && rule.matches(row))
                    .count();
                if new_tp == 0 {
                    continue;
                }
                let gain = new_tp as f64 * rule.precision;
                if best.as_ref().is_none_or(|&(g, _)| gain > g) {
                    best = Some((gain, ri));
                }
            }
            let Some((_, ri)) = best else { break };
            let rule = candidates.swap_remove(ri);
            for ((row, _), cov) in rows.iter().zip(labels).zip(covered.iter_mut()) {
                if rule.matches(row) {
                    *cov = true;
                }
            }
            kept.push(rule);
        }
        RuleSet { rules: kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic rows where fraud ⇔ (x0 > 1) OR (x1 < -1); x2 is noise.
    fn planted(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f32 = rng.gen_range(-2.0..2.0);
            let x1: f32 = rng.gen_range(-2.0..2.0);
            let x2: f32 = rng.gen_range(-2.0..2.0);
            labels.push(x0 > 1.0 || x1 < -1.0);
            rows.push(vec![x0, x1, x2]);
        }
        (rows, labels)
    }

    #[test]
    fn miner_recovers_planted_rules() {
        let (rows, labels) = planted(2000, 1);
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        let miner = RuleMiner::new(MinerConfig {
            min_precision: 0.8,
            ..Default::default()
        });
        let rs = miner.mine(&refs, &labels);
        assert!(!rs.rules.is_empty());
        let (p, r) = rs.evaluate(&refs, &labels);
        assert!(p > 0.8, "precision {p}");
        assert!(r > 0.7, "recall {r}");
        // The discovered literals involve the signal features, not noise.
        for rule in &rs.rules {
            for lit in &rule.literals {
                assert!(lit.feature != 2, "rule used the noise feature: {rule}");
            }
        }
    }

    #[test]
    fn filter_drops_mostly_benign_rows() {
        let (rows, labels) = planted(2000, 2);
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        let rs = RuleMiner::new(MinerConfig::default()).mine(&refs, &labels);
        let (risky, low) = rs.filter(&refs);
        assert!(!risky.is_empty() && !low.is_empty());
        let fraud_in_low = low.iter().filter(|&&i| labels[i]).count() as f64 / low.len() as f64;
        let fraud_in_risky =
            risky.iter().filter(|&&i| labels[i]).count() as f64 / risky.len() as f64;
        assert!(
            fraud_in_risky > fraud_in_low * 5.0,
            "risky {fraud_in_risky} vs low {fraud_in_low}"
        );
    }

    #[test]
    fn degenerate_inputs_yield_empty_rulesets() {
        let miner = RuleMiner::new(MinerConfig::default());
        assert!(miner.mine(&[], &[]).rules.is_empty());
        let rows: Vec<&[f32]> = vec![&[1.0], &[2.0]];
        assert!(miner.mine(&rows, &[false, false]).rules.is_empty());
    }

    #[test]
    fn support_floor_is_respected() {
        let (rows, labels) = planted(300, 3);
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        let rs = RuleMiner::new(MinerConfig {
            min_support: 25,
            ..Default::default()
        })
        .mine(&refs, &labels);
        for r in &rs.rules {
            assert!(r.support >= 25, "{r}");
        }
    }
}
