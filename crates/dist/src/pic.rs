//! Power Iteration Clustering (Lin & Cohen, ICML 2010), the graph
//! partitioner of §3.3.1 — "effective for graph partition/clustering and
//! well-suited to very large datasets due to its high efficiency".
//!
//! PIC runs a truncated power iteration of the row-normalised affinity
//! matrix on a random vector; the iterate converges *locally* first, so its
//! entries cluster by community long before global convergence. A 1-D
//! k-means over the embedding then yields the partition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud_hetgraph::HetGraph;

/// The 1-D PIC embedding: truncated power iteration of the *lazy* walk
/// `W = (I + D⁻¹A)/2`. The lazy step matters on transaction graphs: they
/// are bipartite (txn ↔ entity), and the plain `D⁻¹A` iteration oscillates
/// with period 2 on bipartite components instead of converging to a
/// per-component constant, which breaks the k-means split downstream.
pub fn pic_embedding(g: &HetGraph, iterations: usize, seed: u64) -> Vec<f64> {
    let n = g.n_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    normalize_l1(&mut v);
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for (u, slot) in next.iter_mut().enumerate() {
            let deg = g.degree(u);
            if deg == 0 {
                // Isolated node: keep its value (self-loop semantics).
                *slot = v[u];
                continue;
            }
            let sum: f64 = g.neighbors(u).map(|w| v[w]).sum();
            *slot = 0.5 * v[u] + 0.5 * (sum / deg as f64);
        }
        std::mem::swap(&mut v, &mut next);
        normalize_l1(&mut v);
    }
    v
}

fn normalize_l1(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x.abs()).sum();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
}

/// Lloyd's k-means on scalar values. Returns a cluster id per value; empty
/// clusters are re-seeded on the farthest point.
pub fn kmeans_1d(values: &[f64], k: usize, iterations: usize, seed: u64) -> Vec<usize> {
    assert!(k > 0);
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // k-means++-ish init: spread quantiles of the sorted values.
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut centers: Vec<f64> = (0..k).map(|i| sorted[(i * (n - 1)) / k.max(1)]).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..iterations {
        // Assign.
        for (i, &x) in values.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &mu) in centers.iter().enumerate() {
                let d = (x - mu).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &x) in values.iter().enumerate() {
            sums[assign[i]] += x;
            counts[assign[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centers[c] = sums[c] / counts[c] as f64;
            } else {
                // Re-seed an empty cluster on a random point.
                centers[c] = values[rng.gen_range(0..n)];
            }
        }
    }
    assign
}

/// Full PIC pipeline: embedding → k-means → partition id per node.
/// `n_parts` caps at the node count.
pub fn pic_partition(g: &HetGraph, n_parts: usize, seed: u64) -> Vec<usize> {
    let k = n_parts.min(g.n_nodes()).max(1);
    let emb = pic_embedding(g, 40, seed);
    kmeans_1d(&emb, k, 30, seed ^ 0x9e37_79b9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_hetgraph::{GraphBuilder, NodeType};

    /// Two dense cliques of transactions around two payment tokens, joined
    /// by nothing: PIC must separate them.
    fn two_communities() -> HetGraph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..2 {
            let p = b.add_entity(NodeType::Pmt);
            let e = b.add_entity(NodeType::Email);
            for _ in 0..6 {
                let t = b.add_txn([0.0], Some(false));
                b.link(t, p).unwrap();
                b.link(t, e).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn pic_separates_disconnected_communities() {
        let g = two_communities();
        let parts = pic_partition(&g, 2, 3);
        // All nodes of community 0 share a partition; likewise community 1;
        // and the two partitions differ.
        let first = parts[0];
        assert!(parts[..8].iter().all(|&p| p == first), "{parts:?}");
        let second = parts[8];
        assert!(parts[8..].iter().all(|&p| p == second), "{parts:?}");
        assert_ne!(first, second);
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let values = [0.01, 0.02, 0.015, 0.9, 0.92, 0.88];
        let assign = kmeans_1d(&values, 2, 20, 1);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[0], assign[2]);
        assert_eq!(assign[3], assign[4]);
        assert_ne!(assign[0], assign[3]);
    }

    #[test]
    fn kmeans_handles_k_greater_than_distinct_values() {
        let values = [1.0, 1.0, 1.0];
        let assign = kmeans_1d(&values, 2, 5, 1);
        assert_eq!(assign.len(), 3);
    }

    #[test]
    fn embedding_is_deterministic_and_l1_normalised() {
        let g = two_communities();
        let a = pic_embedding(&g, 20, 7);
        let b = pic_embedding(&g, 20, 7);
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x.abs()).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partition_count_is_capped_by_nodes() {
        let g = two_communities();
        let parts = pic_partition(&g, 1000, 1);
        assert_eq!(parts.len(), g.n_nodes());
        assert!(parts.iter().all(|&p| p < g.n_nodes()));
    }
}
