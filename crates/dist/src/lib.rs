//! The distributed xFraud detector+ (§3.3, Fig. 5), simulated with threads.
//!
//! The pipeline is exactly the paper's, with "machine" → "worker thread":
//!
//! 1. [`pic_partition`] splits the graph into `n_parts` subgraphs with
//!    Power Iteration Clustering (Lin & Cohen, ICML'10) — §3.3.1;
//! 2. [`group_partitions`] bin-packs the partitions into κ groups of
//!    roughly `⌈|V|/κ⌉` nodes each (footnote 3);
//! 3. [`DdpTrainer`] runs one model replica per worker on its group's
//!    *induced subgraph* (the paper's "restrained field of neighbors" — the
//!    very thing that costs AUC at 16 machines), with synchronous
//!    gradient averaging per step and identical AdamW updates, i.e. the
//!    observable semantics of PyTorch DDP.
//!
//! After every step all replicas hold bit-identical parameters; the unit
//! tests assert it, and [`DdpTrainer::fit`] debug-asserts it each epoch.

mod ddp;
mod partition;
mod pic;

pub use ddp::{DdpConfig, DdpEpoch, DdpTrainer};
pub use partition::{
    group_fraud_counts, group_partitions, group_partitions_ratio_aware, partition_sizes,
};
pub use pic::{kmeans_1d, pic_embedding, pic_partition};
