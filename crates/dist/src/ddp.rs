use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use xfraud_gnn::{average_grads, grad_step, Model, Sampler, TrainConfig, Trainer};
use xfraud_hetgraph::{HetGraph, NodeId};
use xfraud_metrics::roc_auc;
use xfraud_nn::AdamW;
use xfraud_tensor::Tensor;

/// Distributed-training settings.
#[derive(Debug, Clone)]
pub struct DdpConfig {
    /// Number of simulated machines (8 and 16 in the paper).
    pub n_workers: usize,
    /// Number of PIC subgraphs before grouping (128 in the paper).
    pub n_partitions: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub eval_batch_size: usize,
    pub lr: f32,
    pub seed: u64,
    /// Use the Appendix-G.3 fraud-ratio-balancing grouping instead of the
    /// footnote-3 size-only packing.
    pub ratio_aware: bool,
}

impl Default for DdpConfig {
    fn default() -> Self {
        DdpConfig {
            n_workers: 8,
            n_partitions: 128,
            epochs: 10,
            batch_size: 256,
            eval_batch_size: 640,
            lr: 2e-3,
            seed: 0,
            ratio_aware: false,
        }
    }
}

/// Per-epoch record (Fig. 14's convergence series).
#[derive(Debug, Clone, Copy)]
pub struct DdpEpoch {
    pub epoch: usize,
    pub mean_loss: f32,
    pub val_auc: f64,
    pub secs: f64,
}

struct Worker<M> {
    model: M,
    opt: AdamW,
    /// This worker's induced subgraph — its *entire* world during training
    /// (the "restrained field of neighbors" of §4.1).
    graph: HetGraph,
    /// Labelled training transactions, as local subgraph ids.
    train_local: Vec<NodeId>,
    rng: StdRng,
}

/// Thread-based DDP: one replica per worker, synchronous gradient
/// averaging, identical AdamW updates — weights stay bit-identical across
/// replicas, which [`DdpTrainer::max_replica_divergence`] lets tests check.
pub struct DdpTrainer<M: Model + Send + Sync> {
    pub cfg: DdpConfig,
    workers: Vec<Worker<M>>,
}

impl<M: Model + Send + Sync> DdpTrainer<M> {
    /// Partitions `g` (PIC → κ groups) and instantiates one replica per
    /// worker via `make_model` (all replicas must be built identically —
    /// same seed — exactly like DDP's initial broadcast).
    pub fn new(
        g: &HetGraph,
        train_nodes: &[NodeId],
        make_model: impl Fn() -> M,
        cfg: DdpConfig,
    ) -> Self {
        let parts = crate::pic::pic_partition(g, cfg.n_partitions, cfg.seed);
        let groups = if cfg.ratio_aware {
            let fraud: Vec<bool> = (0..g.n_nodes()).map(|v| g.label(v) == Some(true)).collect();
            crate::partition::group_partitions_ratio_aware(&parts, cfg.n_workers, &fraud)
        } else {
            crate::partition::group_partitions(&parts, cfg.n_workers)
        };
        let is_train: std::collections::HashSet<NodeId> = train_nodes.iter().copied().collect();

        // Build all replicas first, then broadcast replica 0's weights —
        // make_model is expected to be seeded, but DDP's initial broadcast
        // makes the invariant robust to caller mistakes.
        let mut models: Vec<M> = (0..cfg.n_workers).map(|_| make_model()).collect();
        let (lead, rest) = models.split_first_mut().expect("n_workers > 0");
        for m in rest {
            m.store_mut().copy_values_from(lead.store());
        }

        let mut workers = Vec::with_capacity(cfg.n_workers);
        for (w, (group, model)) in groups.iter().zip(models).enumerate() {
            let owned: std::collections::HashSet<usize> = group.iter().copied().collect();
            let nodes: Vec<NodeId> = (0..g.n_nodes())
                .filter(|&v| owned.contains(&parts[v]))
                .collect();
            let (sub, map) = g.induced_subgraph(&nodes);
            let train_local: Vec<NodeId> = nodes
                .iter()
                .filter(|&&v| is_train.contains(&v))
                .map(|&v| map[v].expect("kept node"))
                .filter(|&l| sub.label(l).is_some())
                .collect();
            workers.push(Worker {
                model,
                opt: AdamW::new(cfg.lr),
                graph: sub,
                train_local,
                rng: StdRng::seed_from_u64(cfg.seed ^ ((w as u64 + 1) * 0x9e37)),
            });
        }
        DdpTrainer { cfg, workers }
    }

    /// Largest parameter divergence between replica 0 and any other — must
    /// be 0 after every synchronous step.
    pub fn max_replica_divergence(&self) -> f32 {
        let base = self.workers[0].model.store();
        self.workers[1..]
            .iter()
            .map(|w| base.max_param_diff(w.model.store()))
            .fold(0.0, f32::max)
    }

    /// Labelled training transactions available to each worker (diagnostic:
    /// partitioning quality).
    pub fn worker_train_counts(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.train_local.len()).collect()
    }

    /// Runs synchronous DDP training; evaluates replica 0 on `val_nodes` of
    /// the *full* graph after each epoch.
    pub fn fit<S: Sampler + Sync>(
        &mut self,
        full_graph: &HetGraph,
        val_nodes: &[NodeId],
        sampler: &S,
    ) -> Vec<DdpEpoch> {
        let mut history = Vec::with_capacity(self.cfg.epochs);
        let eval = Trainer::new(TrainConfig {
            eval_batch_size: self.cfg.eval_batch_size,
            ..TrainConfig::default()
        });
        for epoch in 0..self.cfg.epochs {
            // xlint: allow(d2, reason = "epoch timing telemetry; gradients and averaging are clock-free")
            let start = Instant::now();
            // Per-worker batch schedules for this epoch.
            let mut schedules: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(self.workers.len());
            for w in &mut self.workers {
                let mut nodes = w.train_local.clone();
                nodes.shuffle(&mut w.rng);
                schedules.push(
                    nodes
                        .chunks(self.cfg.batch_size)
                        .map(<[NodeId]>::to_vec)
                        .collect(),
                );
            }
            let steps = schedules.iter().map(Vec::len).max().unwrap_or(0);
            let mut losses = Vec::new();
            for step in 0..steps {
                // Each worker computes local gradients in parallel.
                type StepResult = Option<(f32, Vec<(xfraud_nn::ParamId, Tensor)>)>;
                let results: Vec<StepResult> = crossbeam::scope(|scope| {
                    let handles: Vec<_> = self
                        .workers
                        .iter_mut()
                        .zip(&schedules)
                        .map(|(w, sched)| {
                            scope.spawn(move |_| {
                                if sched.is_empty() {
                                    return None;
                                }
                                let chunk = &sched[step % sched.len()];
                                let batch = sampler.sample(&w.graph, chunk, &mut w.rng);
                                Some(grad_step(&w.model, &batch, &mut w.rng))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect()
                })
                .expect("scope");

                // All-reduce: average gradients by parameter index.
                let sets: Vec<Vec<(xfraud_nn::ParamId, Tensor)>> = results
                    .into_iter()
                    .flatten()
                    .map(|(loss, grads)| {
                        losses.push(loss);
                        grads
                    })
                    .collect();
                let avg = average_grads(&sets);
                // Identical update on every replica.
                for w in &mut self.workers {
                    let grads: Vec<_> = w
                        .model
                        .store()
                        .ids()
                        .filter_map(|id| avg.get(&id.index()).map(|t| (id, t.clone())))
                        .collect();
                    w.opt.step(w.model.store_mut(), &grads);
                }
            }
            debug_assert!(
                self.max_replica_divergence() == 0.0,
                "replicas diverged — DDP invariant broken"
            );
            let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
            let (scores, labels) = eval.evaluate(
                &self.workers[0].model,
                full_graph,
                sampler,
                val_nodes,
                self.cfg.seed ^ 0xe5a1,
            );
            let val_auc = roc_auc(&scores, &labels);
            history.push(DdpEpoch {
                epoch,
                mean_loss,
                val_auc,
                secs: start.elapsed().as_secs_f64(),
            });
        }
        history
    }

    /// Replica 0, for post-training inference.
    pub fn lead_model(&self) -> &M {
        &self.workers[0].model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_datagen::{Dataset, DatasetPreset};
    use xfraud_gnn::{train_test_split, DetectorConfig, SageSampler, XFraudDetector};

    fn setup() -> (HetGraph, Vec<NodeId>, Vec<NodeId>) {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 9);
        let (train, test) = train_test_split(&ds.graph, 0.3, 1);
        (ds.graph, train, test)
    }

    #[test]
    fn replicas_stay_identical_through_training() {
        let (g, train, test) = setup();
        let cfg = DdpConfig {
            n_workers: 4,
            n_partitions: 16,
            epochs: 1,
            ..Default::default()
        };
        let feature_dim = g.feature_dim();
        let mut trainer = DdpTrainer::new(
            &g,
            &train,
            || XFraudDetector::new(DetectorConfig::small(feature_dim, 42)),
            cfg,
        );
        assert_eq!(trainer.max_replica_divergence(), 0.0, "initial broadcast");
        let sampler = SageSampler::new(2, 6);
        let _ = trainer.fit(&g, &test, &sampler);
        assert_eq!(trainer.max_replica_divergence(), 0.0, "post-training");
    }

    #[test]
    fn every_worker_gets_training_data() {
        let (g, train, _) = setup();
        let cfg = DdpConfig {
            n_workers: 4,
            n_partitions: 16,
            epochs: 1,
            ..Default::default()
        };
        let feature_dim = g.feature_dim();
        let trainer = DdpTrainer::new(
            &g,
            &train,
            || XFraudDetector::new(DetectorConfig::small(feature_dim, 42)),
            cfg,
        );
        let counts = trainer.worker_train_counts();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0), "starved worker: {counts:?}");
    }

    #[test]
    fn ddp_training_learns_the_signal() {
        let (g, train, test) = setup();
        let cfg = DdpConfig {
            n_workers: 2,
            n_partitions: 8,
            epochs: 3,
            ..Default::default()
        };
        let feature_dim = g.feature_dim();
        let mut trainer = DdpTrainer::new(
            &g,
            &train,
            || XFraudDetector::new(DetectorConfig::small(feature_dim, 42)),
            cfg,
        );
        let sampler = SageSampler::new(2, 6);
        let hist = trainer.fit(&g, &test, &sampler);
        let final_auc = hist.last().unwrap().val_auc;
        assert!(final_auc > 0.6, "DDP AUC after 3 epochs = {final_auc}");
    }
}
