//! Worker-group assembly (footnote 3 of the paper): the 128 PIC subgraphs
//! are ordered by node count ascending and packed greedily into κ groups of
//! cumulative size `⌈|V|/κ⌉`, "so that each machine receives a graph
//! partition of similar total number of nodes".

/// Node count per partition id.
pub fn partition_sizes(assignment: &[usize]) -> Vec<usize> {
    let n_parts = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; n_parts];
    for &p in assignment {
        sizes[p] += 1;
    }
    sizes
}

/// Packs partitions into `k` groups following the paper's protocol.
/// Returns, per group, the list of partition ids it owns. Every partition
/// is assigned to exactly one group and no group is left empty when there
/// are at least `k` non-empty partitions.
pub fn group_partitions(assignment: &[usize], k: usize) -> Vec<Vec<usize>> {
    assert!(k > 0);
    let sizes = partition_sizes(assignment);
    let total: usize = sizes.iter().sum();
    let target = total.div_ceil(k);

    // "Order the subgraphs according to the total number of nodes in
    // ascending order."
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&p| sizes[p] > 0).collect();
    order.sort_by_key(|&p| sizes[p]);

    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut fills = vec![0usize; k];
    let mut current = 0usize;
    for &p in &order {
        // "Put the first few subgraphs that cumulatively have ⌈|V|/κ⌉ nodes
        // into the same group, repeat until κ groups."
        if fills[current] >= target && current + 1 < k {
            current += 1;
        }
        groups[current].push(p);
        fills[current] += sizes[p];
    }
    // If trailing groups stayed empty (fewer fat partitions than groups),
    // rebalance by moving the largest partitions out of overfull groups.
    for g in 0..k {
        if groups[g].is_empty() {
            if let Some(donor) = (0..k)
                .filter(|&d| groups[d].len() > 1)
                .max_by_key(|&d| fills[d])
            {
                let moved = groups[donor].pop().expect("donor has >1 partitions");
                fills[donor] -= sizes[moved];
                fills[g] += sizes[moved];
                groups[g].push(moved);
            }
        }
    }
    groups
}

/// Appendix G.3's proposed remedy, implemented: "it is therefore important
/// to enforce a graph partition constraint of benign/fraudulent-ratio, so
/// that the prediction is not strongly influenced by the frequency of
/// cases". Partitions are packed greedily in descending fraud count, each
/// into the group that currently has the *fewest frauds* (ties broken by
/// fewest nodes), which balances both label mass and size.
///
/// `fraud_per_node[v]` is `true` for labelled-fraud nodes.
pub fn group_partitions_ratio_aware(
    assignment: &[usize],
    k: usize,
    fraud_per_node: &[bool],
) -> Vec<Vec<usize>> {
    assert!(k > 0);
    assert_eq!(assignment.len(), fraud_per_node.len());
    let sizes = partition_sizes(assignment);
    let mut frauds = vec![0usize; sizes.len()];
    for (v, &p) in assignment.iter().enumerate() {
        if fraud_per_node[v] {
            frauds[p] += 1;
        }
    }
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&p| sizes[p] > 0).collect();
    // Descending fraud count, then descending size (classic LPT shape).
    order.sort_by(|&a, &b| (frauds[b], sizes[b]).cmp(&(frauds[a], sizes[a])));

    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut group_frauds = vec![0usize; k];
    let mut group_nodes = vec![0usize; k];
    for &p in &order {
        let g = (0..k)
            .min_by_key(|&g| (group_frauds[g], group_nodes[g]))
            .expect("k > 0");
        groups[g].push(p);
        group_frauds[g] += frauds[p];
        group_nodes[g] += sizes[p];
    }
    groups
}

/// Per-group fraud counts for a grouping (diagnostic used by the ablation).
pub fn group_fraud_counts(
    assignment: &[usize],
    groups: &[Vec<usize>],
    fraud_per_node: &[bool],
) -> Vec<usize> {
    let mut part_frauds = vec![0usize; partition_sizes(assignment).len()];
    for (v, &p) in assignment.iter().enumerate() {
        if fraud_per_node[v] {
            part_frauds[p] += 1;
        }
    }
    groups
        .iter()
        .map(|g| g.iter().map(|&p| part_frauds[p]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_aware_grouping_balances_fraud_better_than_size_only() {
        // 8 partitions of equal size; fraud concentrated in partitions 0-1.
        let mut assignment = Vec::new();
        let mut fraud = Vec::new();
        for p in 0..8usize {
            for i in 0..50 {
                assignment.push(p);
                fraud.push(p < 2 && i < 25); // 25 frauds each in p0, p1
            }
        }
        let plain = group_partitions(&assignment, 4);
        let aware = group_partitions_ratio_aware(&assignment, 4, &fraud);
        let spread = |groups: &[Vec<usize>]| {
            let counts = group_fraud_counts(&assignment, groups, &fraud);
            counts.iter().max().unwrap() - counts.iter().min().unwrap()
        };
        assert!(
            spread(&aware) <= spread(&plain),
            "aware spread {} vs plain {}",
            spread(&aware),
            spread(&plain)
        );
        // Ratio-aware must split the two fraud partitions across groups.
        let counts = group_fraud_counts(&assignment, &aware, &fraud);
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 2, "{counts:?}");
        // Still a complete cover.
        let mut all: Vec<usize> = aware.concat();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ratio_aware_handles_no_fraud_at_all() {
        let assignment: Vec<usize> = (0..100).map(|i| i % 10).collect();
        let fraud = vec![false; 100];
        let groups = group_partitions_ratio_aware(&assignment, 4, &fraud);
        let covered: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn sizes_count_assignments() {
        assert_eq!(partition_sizes(&[0, 0, 2, 1, 2, 2]), vec![2, 1, 3]);
    }

    #[test]
    fn every_partition_lands_in_exactly_one_group() {
        let assignment: Vec<usize> = (0..1000).map(|i| i % 16).collect();
        let groups = group_partitions(&assignment, 4);
        let mut seen: Vec<usize> = groups.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn groups_are_balanced_for_uniform_partitions() {
        let assignment: Vec<usize> = (0..1024).map(|i| i % 128).collect();
        let groups = group_partitions(&assignment, 8);
        let sizes = partition_sizes(&assignment);
        let fills: Vec<usize> = groups
            .iter()
            .map(|g| g.iter().map(|&p| sizes[p]).sum())
            .collect();
        let max = *fills.iter().max().unwrap();
        let min = *fills.iter().min().unwrap();
        assert!(max - min <= 128, "imbalanced fills {fills:?}");
    }

    #[test]
    fn no_group_left_empty_when_enough_partitions() {
        // Skewed sizes: one giant partition plus small ones.
        let mut assignment = vec![0usize; 500];
        assignment.extend((1..8).flat_map(|p| std::iter::repeat_n(p, 10)));
        let groups = group_partitions(&assignment, 4);
        assert!(groups.iter().all(|g| !g.is_empty()), "{groups:?}");
    }

    #[test]
    fn single_group_takes_everything() {
        let assignment = vec![0, 1, 2, 1];
        let groups = group_partitions(&assignment, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }
}
