//! A small blocking HTTP/1.1 client for the scoring service — the far end
//! of the wire for the load harness, the equivalence suite and the CLI.
//!
//! One [`ScoreClient`] is one keep-alive connection (plus its reconnect
//! logic): requests on the same client reuse the socket until the server
//! closes it, and a request that fails before any response byte on a
//! *reused* connection is retried once on a fresh one (the server may have
//! legitimately reaped the idle socket between requests). Server-side
//! rejections are not errors here — they come back as
//! [`ScoreOutcome::Rejected`] so callers can count 429/503 shedding.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use xfraud_hetgraph::NodeId;

use crate::error::ClientError;
use crate::http::parse_response_head;
use crate::proto::{decode_error_body, decode_score_response, encode_score_request, ScoreRequest};

/// What the server said to one scoring request.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreOutcome {
    /// `200 OK`: scores positionally aligned with the requested ids.
    Scores(Vec<f32>),
    /// Any non-200: the status and the server's error message.
    Rejected { status: u16, error: String },
}

/// Blocking keep-alive client; see the module docs.
pub struct ScoreClient {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl ScoreClient {
    /// Connects eagerly so a dead server fails fast.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<ScoreClient, ClientError> {
        let mut client = ScoreClient {
            addr,
            timeout,
            stream: None,
        };
        client.stream = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Drops the current connection; the next request dials fresh.
    pub fn reset(&mut self) {
        self.stream = None;
    }

    /// Scores `ids` under `tenant` over `POST /score`.
    pub fn score(&mut self, tenant: &str, ids: &[NodeId]) -> Result<ScoreOutcome, ClientError> {
        let body = encode_score_request(&ScoreRequest {
            tenant: tenant.to_string(),
            ids: ids.to_vec(),
        });
        let (status, resp_body) = self.request("POST", "/score", &body)?;
        if status == 200 {
            let decoded = decode_score_response(&resp_body)?;
            Ok(ScoreOutcome::Scores(decoded.scores))
        } else {
            Ok(ScoreOutcome::Rejected {
                status,
                error: decode_error_body(&resp_body),
            })
        }
    }

    /// A plain `GET` (health, metrics): returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> Result<(u16, Vec<u8>), ClientError> {
        self.request("GET", path, &[])
    }

    /// One request/response round trip with single-retry reconnect for
    /// reused connections that died idle.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let wire = Self::serialize(method, path, body);
        let reused = self.stream.is_some();
        let mut stream = match self.stream.take() {
            Some(s) => s,
            None => self.dial()?,
        };
        match Self::roundtrip(&mut stream, &wire) {
            Ok((status, resp, keep_alive)) => {
                if keep_alive {
                    self.stream = Some(stream);
                }
                Ok((status, resp))
            }
            Err(e) if reused && retriable(&e) => {
                // The server reaped the idle keep-alive socket; one fresh
                // attempt is safe because no response byte arrived.
                let mut stream = self.dial()?;
                let (status, resp, keep_alive) = Self::roundtrip(&mut stream, &wire)?;
                if keep_alive {
                    self.stream = Some(stream);
                }
                Ok((status, resp))
            }
            Err(e) => Err(e),
        }
    }

    fn serialize(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: xfraud\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        let mut out = Vec::with_capacity(head.len() + body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(body);
        out
    }

    fn roundtrip(stream: &mut TcpStream, wire: &[u8]) -> Result<(u16, Vec<u8>, bool), ClientError> {
        stream.write_all(wire)?;
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head) = parse_response_head(&buf)? {
                let total = head.head_len + head.content_length;
                if buf.len() >= total {
                    let body = buf[head.head_len..total].to_vec();
                    return Ok((head.status, body, head.keep_alive));
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::ConnectionClosed),
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// Failures eligible for the one-shot reconnect retry: the write or first
/// read failed outright, so the request cannot have been processed twice.
fn retriable(e: &ClientError) -> bool {
    match e {
        ClientError::ConnectionClosed => true,
        ClientError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}
