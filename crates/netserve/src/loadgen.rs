//! Open-loop load generation for the scoring service.
//!
//! **Open loop** means arrivals are scheduled by a clock, not by
//! responses: the plan of arrival times is drawn up front from a
//! (possibly time-varying) Poisson process, and each request's latency is
//! measured from its *scheduled* arrival — so when the server falls
//! behind, queueing delay lands in the latency distribution instead of
//! silently throttling the offered load, which is exactly the failure
//! mode closed-loop benchmarks hide.
//!
//! The plan is deterministic from the seed: rates above capacity, diurnal
//! curves, bursts and hot-key skew all replay exactly. Senders are a
//! bounded thread pool, each walking its share of the plan; a sender
//! running late still charges the delay to the scheduled arrival time.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud_hetgraph::NodeId;

use crate::client::{ScoreClient, ScoreOutcome};
use crate::error::{ClientError, NetServeError};

/// The shape of the offered-rate curve over the run.
#[derive(Debug, Clone, PartialEq)]
pub enum RatePattern {
    /// Flat `rate_per_sec` for the whole run.
    Constant,
    /// One "day" compressed into the run: the rate follows a raised cosine
    /// from `trough_frac × rate` at the edges up to `rate` mid-run.
    Diurnal {
        /// Rate multiplier at the trough, in `(0, 1]`.
        trough_frac: f64,
    },
    /// A steady baseline at `rate_per_sec` with periodic spikes: for the
    /// first `burst_frac` of every `period`, the rate is multiplied by
    /// `amplitude`.
    Bursts {
        period: Duration,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_frac: f64,
        /// Rate multiplier inside a burst (≥ 1).
        amplitude: f64,
    },
}

impl RatePattern {
    /// Rate multiplier at offset `t` into a run of length `total`.
    fn multiplier(&self, t: Duration, total: Duration) -> f64 {
        match self {
            RatePattern::Constant => 1.0,
            RatePattern::Diurnal { trough_frac } => {
                let x = t.as_secs_f64() / total.as_secs_f64().max(1e-9);
                let wave = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos());
                trough_frac + (1.0 - trough_frac) * wave
            }
            RatePattern::Bursts {
                period,
                burst_frac,
                amplitude,
            } => {
                let p = period.as_secs_f64().max(1e-9);
                let phase = (t.as_secs_f64() / p).fract();
                if phase < *burst_frac {
                    *amplitude
                } else {
                    1.0
                }
            }
        }
    }

    /// The peak multiplier — the envelope rate for Poisson thinning.
    fn peak(&self) -> f64 {
        match self {
            RatePattern::Constant => 1.0,
            RatePattern::Diurnal { .. } => 1.0,
            RatePattern::Bursts { amplitude, .. } => amplitude.max(1.0),
        }
    }

    /// The time-averaged multiplier over a whole run — divide a target
    /// mean rate by this to pick `rate_per_sec`, so "1× capacity" means
    /// the *average* offered load, not the baseline under the bursts.
    pub fn mean(&self) -> f64 {
        match self {
            RatePattern::Constant => 1.0,
            RatePattern::Diurnal { trough_frac } => trough_frac + (1.0 - trough_frac) * 0.5,
            RatePattern::Bursts {
                burst_frac,
                amplitude,
                ..
            } => burst_frac * amplitude + (1.0 - burst_frac),
        }
    }
}

/// One load run's parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Base offered rate (requests/second); patterns modulate around it.
    pub rate_per_sec: f64,
    pub duration: Duration,
    pub pattern: RatePattern,
    /// The id universe requests draw from.
    pub ids: Vec<NodeId>,
    /// Transaction ids per request.
    pub ids_per_request: usize,
    /// Hot-key skew exponent: ids are drawn as `ids[⌊u^gamma·n⌋]`, so
    /// `1.0` is uniform and larger values concentrate traffic on the low
    /// indices (the "hot" transactions every fraud spike revisits).
    pub hotkey_gamma: f64,
    /// Sender threads (each one keep-alive connection).
    pub connections: usize,
    pub tenant: String,
    pub seed: u64,
    /// Per-request client timeout.
    pub request_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rate_per_sec: 100.0,
            duration: Duration::from_secs(5),
            pattern: RatePattern::Constant,
            ids: Vec::new(),
            ids_per_request: 4,
            hotkey_gamma: 2.0,
            connections: 8,
            tenant: "load-bench".into(),
            seed: 42,
            request_timeout: Duration::from_secs(10),
        }
    }
}

impl LoadConfig {
    fn validate(&self) -> Result<(), NetServeError> {
        let bad = |m: &str| Err(NetServeError::InvalidConfig(m.into()));
        if self.ids.is_empty() {
            return bad("load config needs a non-empty id universe");
        }
        if self.rate_per_sec <= 0.0 || !self.rate_per_sec.is_finite() {
            return bad("rate_per_sec must be positive and finite");
        }
        if self.duration.is_zero() {
            return bad("duration must be non-zero");
        }
        if self.ids_per_request == 0 {
            return bad("ids_per_request must be ≥ 1");
        }
        if self.connections == 0 {
            return bad("connections must be ≥ 1");
        }
        if self.hotkey_gamma < 1.0 || !self.hotkey_gamma.is_finite() {
            return bad("hotkey_gamma must be ≥ 1");
        }
        if let RatePattern::Diurnal { trough_frac } = self.pattern {
            if !(trough_frac > 0.0 && trough_frac <= 1.0) {
                return bad("diurnal trough_frac must be in (0, 1]");
            }
        }
        if let RatePattern::Bursts {
            period,
            burst_frac,
            amplitude,
        } = self.pattern
        {
            if period.is_zero() || !(burst_frac > 0.0 && burst_frac < 1.0) || amplitude < 1.0 {
                return bad("bursts need period > 0, burst_frac in (0,1), amplitude ≥ 1");
            }
        }
        Ok(())
    }
}

/// What one load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests the plan scheduled (offered load).
    pub offered: u64,
    pub completed_2xx: u64,
    /// Quota shedding observed (429).
    pub shed_429: u64,
    /// Overload shedding observed (503).
    pub shed_503: u64,
    pub other_4xx: u64,
    pub responses_5xx: u64,
    /// Requests that died in transport (refused connections, timeouts).
    pub transport_errors: u64,
    /// Wall-clock from the first scheduled arrival to the last response.
    pub elapsed: Duration,
    /// Latency of successful requests measured from the *scheduled*
    /// arrival, so server backlog is charged to the server.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
}

impl LoadReport {
    /// Scheduled arrivals per second.
    pub fn offered_rate(&self) -> f64 {
        self.offered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Successful responses per second — the number that stops tracking
    /// the offered rate once the server saturates.
    pub fn goodput(&self) -> f64 {
        self.completed_2xx as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of offered requests shed by admission control (429 + 503).
    pub fn shed_rate(&self) -> f64 {
        (self.shed_429 + self.shed_503) as f64 / (self.offered as f64).max(1.0)
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "offered {} ({:.1}/s)  goodput {:.1}/s  shed {:.1}% ({} quota, {} overload)",
            self.offered,
            self.offered_rate(),
            self.goodput(),
            100.0 * self.shed_rate(),
            self.shed_429,
            self.shed_503,
        )?;
        writeln!(
            f,
            "responses: {} ok, {} 4xx, {} 5xx, {} transport errors",
            self.completed_2xx, self.other_4xx, self.responses_5xx, self.transport_errors
        )?;
        write!(
            f,
            "latency (from scheduled arrival): p50 {:.2} ms  p99 {:.2} ms  p999 {:.2} ms",
            self.p50_ms, self.p99_ms, self.p999_ms
        )
    }
}

/// The deterministic arrival plan: sorted offsets from the run start,
/// drawn by Poisson thinning against the pattern's rate envelope.
pub fn arrival_offsets(cfg: &LoadConfig) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let peak_rate = cfg.rate_per_sec * cfg.pattern.peak();
    let total = cfg.duration.as_secs_f64();
    let mut t = 0.0f64;
    let mut plan = Vec::new();
    loop {
        // Exponential inter-arrival at the envelope rate…
        let u: f64 = rng.gen::<f64>().max(1e-12);
        t += -u.ln() / peak_rate;
        if t >= total {
            break;
        }
        // …thinned down to the instantaneous rate.
        let offset = Duration::from_secs_f64(t);
        let m = cfg.pattern.multiplier(offset, cfg.duration);
        let accept: f64 = rng.gen();
        if accept * cfg.pattern.peak() <= m {
            plan.push(offset);
        }
    }
    plan
}

/// The ids of arrival `index` — deterministic hot-key-skewed draws.
pub fn ids_for_arrival(cfg: &LoadConfig, index: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = cfg.ids.len();
    (0..cfg.ids_per_request)
        .map(|_| {
            let u: f64 = rng.gen();
            let at = ((u.powf(cfg.hotkey_gamma) * n as f64) as usize).min(n - 1);
            cfg.ids[at]
        })
        .collect()
}

#[derive(Default)]
struct Tally {
    completed_2xx: u64,
    shed_429: u64,
    shed_503: u64,
    other_4xx: u64,
    responses_5xx: u64,
    transport_errors: u64,
    latencies_ms: Vec<f64>,
}

/// Runs one open-loop load test against a live server.
///
/// Only a completely unreachable server errors out (the first dial of the
/// first sender); mid-run transport failures are tallied per request.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, NetServeError> {
    cfg.validate()?;
    // Fail fast if nothing is listening before spawning the senders.
    ScoreClient::connect(addr, cfg.request_timeout)
        .map_err(|e| NetServeError::InvalidConfig(format!("server unreachable: {e}")))?;

    let plan = arrival_offsets(cfg);
    let offered = plan.len() as u64;
    let n = cfg.connections;
    let mut shares: Vec<Vec<(Duration, u64)>> = (0..n).map(|_| Vec::new()).collect();
    for (i, &off) in plan.iter().enumerate() {
        shares[i % n].push((off, i as u64));
    }

    // A short settle so every sender is parked before the first arrival.
    let start = Instant::now() + Duration::from_millis(50);
    let tallies: Vec<Tally> = std::thread::scope(|s| {
        let handles: Vec<_> = shares
            .into_iter()
            .map(|share| s.spawn(move || sender(addr, cfg, start, share)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let elapsed = start.elapsed();
    let mut merged = Tally::default();
    for t in tallies {
        merged.completed_2xx += t.completed_2xx;
        merged.shed_429 += t.shed_429;
        merged.shed_503 += t.shed_503;
        merged.other_4xx += t.other_4xx;
        merged.responses_5xx += t.responses_5xx;
        merged.transport_errors += t.transport_errors;
        merged.latencies_ms.extend(t.latencies_ms);
    }
    merged.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| -> f64 {
        if merged.latencies_ms.is_empty() {
            return 0.0;
        }
        let at = ((merged.latencies_ms.len() - 1) as f64 * q).round() as usize;
        merged.latencies_ms[at]
    };
    Ok(LoadReport {
        offered,
        completed_2xx: merged.completed_2xx,
        shed_429: merged.shed_429,
        shed_503: merged.shed_503,
        other_4xx: merged.other_4xx,
        responses_5xx: merged.responses_5xx,
        transport_errors: merged.transport_errors,
        elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
    })
}

/// One sender thread: waits for each scheduled arrival in its share, fires
/// the request, and tallies the outcome.
fn sender(
    addr: SocketAddr,
    cfg: &LoadConfig,
    start: Instant,
    share: Vec<(Duration, u64)>,
) -> Tally {
    let mut tally = Tally::default();
    let mut client: Option<ScoreClient> = None;
    for (off, index) in share {
        let scheduled = start + off;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let ids = ids_for_arrival(cfg, index);
        let c = match client.as_mut() {
            Some(c) => c,
            None => match ScoreClient::connect(addr, cfg.request_timeout) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    tally.transport_errors += 1;
                    continue;
                }
            },
        };
        match c.score(&cfg.tenant, &ids) {
            Ok(ScoreOutcome::Scores(_)) => {
                tally.completed_2xx += 1;
                tally
                    .latencies_ms
                    .push(scheduled.elapsed().as_secs_f64() * 1e3);
            }
            Ok(ScoreOutcome::Rejected { status, .. }) => match status {
                429 => tally.shed_429 += 1,
                503 => tally.shed_503 += 1,
                400..=499 => tally.other_4xx += 1,
                _ => tally.responses_5xx += 1,
            },
            Err(ClientError::Io(_) | ClientError::ConnectionClosed) => {
                tally.transport_errors += 1;
                client = None; // redial on the next arrival
            }
            Err(_) => {
                // Protocol violation by the server — count it against the
                // server like a 5xx.
                tally.responses_5xx += 1;
                client = None;
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> LoadConfig {
        LoadConfig {
            rate_per_sec: 500.0,
            duration: Duration::from_secs(10),
            ids: (0..100).collect(),
            seed: 7,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let cfg = base_cfg();
        let a = arrival_offsets(&cfg);
        let b = arrival_offsets(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t < cfg.duration));
        let mut other = cfg.clone();
        other.seed = 8;
        assert_ne!(a, arrival_offsets(&other), "different seed, different plan");
    }

    #[test]
    fn constant_rate_hits_the_target_on_average() {
        let cfg = base_cfg();
        let n = arrival_offsets(&cfg).len() as f64;
        let want = cfg.rate_per_sec * cfg.duration.as_secs_f64();
        // Poisson sd is sqrt(want) ≈ 71; allow 5 sigma.
        assert!((n - want).abs() < 5.0 * want.sqrt(), "n {n} want {want}");
    }

    #[test]
    fn mean_multiplier_predicts_arrival_counts() {
        for pattern in [
            RatePattern::Diurnal { trough_frac: 0.2 },
            RatePattern::Bursts {
                period: Duration::from_secs(1),
                burst_frac: 0.2,
                amplitude: 4.0,
            },
        ] {
            let cfg = LoadConfig {
                pattern: pattern.clone(),
                ..base_cfg()
            };
            let n = arrival_offsets(&cfg).len() as f64;
            let want = cfg.rate_per_sec * cfg.duration.as_secs_f64() * pattern.mean();
            assert!(
                (n - want).abs() < 6.0 * want.sqrt(),
                "{pattern:?}: n {n} want {want}"
            );
        }
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let cfg = LoadConfig {
            pattern: RatePattern::Bursts {
                period: Duration::from_secs(1),
                burst_frac: 0.2,
                amplitude: 8.0,
            },
            ..base_cfg()
        };
        let plan = arrival_offsets(&cfg);
        let in_burst = plan
            .iter()
            .filter(|t| t.as_secs_f64().fract() < 0.2)
            .count() as f64;
        let frac = in_burst / plan.len() as f64;
        // 20% of the time at 8× vs 80% at 1×: bursts carry 8·0.2/(8·0.2+0.8)
        // ≈ 67% of traffic.
        assert!(frac > 0.55, "burst fraction {frac}");
    }

    #[test]
    fn diurnal_peaks_mid_run() {
        let cfg = LoadConfig {
            pattern: RatePattern::Diurnal { trough_frac: 0.1 },
            ..base_cfg()
        };
        let plan = arrival_offsets(&cfg);
        let total = cfg.duration.as_secs_f64();
        let mid = plan
            .iter()
            .filter(|t| {
                let x = t.as_secs_f64() / total;
                (0.4..0.6).contains(&x)
            })
            .count();
        let edge = plan
            .iter()
            .filter(|t| {
                let x = t.as_secs_f64() / total;
                !(0.1..=0.9).contains(&x)
            })
            .count();
        assert!(
            mid > 2 * edge,
            "mid-run ({mid}) should dominate the edges ({edge})"
        );
    }

    #[test]
    fn hot_keys_dominate_under_skew() {
        let cfg = LoadConfig {
            hotkey_gamma: 4.0,
            ids_per_request: 1,
            ..base_cfg()
        };
        let mut hits = vec![0u64; cfg.ids.len()];
        for i in 0..5000 {
            for id in ids_for_arrival(&cfg, i) {
                hits[id] += 1;
            }
        }
        let hot: u64 = hits[..10].iter().sum();
        let total: u64 = hits.iter().sum();
        // gamma=4 puts P(id<10) = (10/100)^(1/4) ≈ 56% on the hottest 10%.
        assert!(
            hot as f64 > 0.4 * total as f64,
            "hot-10 share {}",
            hot as f64 / total as f64
        );
        // And requests stay deterministic per index.
        assert_eq!(ids_for_arrival(&cfg, 3), ids_for_arrival(&cfg, 3));
    }

    #[test]
    fn config_validation_catches_nonsense() {
        for cfg in [
            LoadConfig {
                ids: vec![],
                ..base_cfg()
            },
            LoadConfig {
                rate_per_sec: 0.0,
                ..base_cfg()
            },
            LoadConfig {
                duration: Duration::ZERO,
                ..base_cfg()
            },
            LoadConfig {
                ids_per_request: 0,
                ..base_cfg()
            },
            LoadConfig {
                connections: 0,
                ..base_cfg()
            },
            LoadConfig {
                hotkey_gamma: 0.5,
                ..base_cfg()
            },
            LoadConfig {
                pattern: RatePattern::Diurnal { trough_frac: 0.0 },
                ..base_cfg()
            },
            LoadConfig {
                pattern: RatePattern::Bursts {
                    period: Duration::ZERO,
                    burst_frac: 0.2,
                    amplitude: 2.0,
                },
                ..base_cfg()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?}");
        }
        assert!(base_cfg().validate().is_ok());
    }

    #[test]
    fn report_arithmetic() {
        let r = LoadReport {
            offered: 1000,
            completed_2xx: 800,
            shed_429: 50,
            shed_503: 100,
            other_4xx: 25,
            responses_5xx: 0,
            transport_errors: 25,
            elapsed: Duration::from_secs(10),
            p50_ms: 1.0,
            p99_ms: 5.0,
            p999_ms: 9.0,
        };
        assert!((r.goodput() - 80.0).abs() < 1e-9);
        assert!((r.offered_rate() - 100.0).abs() < 1e-9);
        assert!((r.shed_rate() - 0.15).abs() < 1e-9);
        assert!(!format!("{r}").is_empty());
    }
}
