//! Typed failures of the server lifecycle (bind/spawn/config) and of the
//! blocking client. Per-request failures never surface here — they become
//! HTTP error responses on the wire.

use std::fmt;
use std::io;

use crate::http::HttpError;
use crate::proto::ProtoError;

/// Server construction/lifecycle failures.
#[derive(Debug)]
pub enum NetServeError {
    /// A [`ServerConfig`](crate::ServerConfig) setting is out of range.
    InvalidConfig(String),
    /// Binding the listen socket failed.
    Bind(io::Error),
    /// The OS refused to spawn a server thread.
    Spawn(io::Error),
}

impl fmt::Display for NetServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetServeError::InvalidConfig(msg) => write!(f, "invalid server config: {msg}"),
            NetServeError::Bind(e) => write!(f, "failed to bind listen socket: {e}"),
            NetServeError::Spawn(e) => write!(f, "failed to spawn server thread: {e}"),
        }
    }
}

impl std::error::Error for NetServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetServeError::InvalidConfig(_) => None,
            NetServeError::Bind(e) | NetServeError::Spawn(e) => Some(e),
        }
    }
}

/// Blocking-client failures: transport problems and protocol violations by
/// the server. HTTP error *responses* are not errors at this layer — they
/// come back as [`ScoreOutcome::Rejected`](crate::client::ScoreOutcome).
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The server's bytes did not parse as an HTTP/1.1 response.
    Http(HttpError),
    /// A `200 OK` body did not decode as a score response.
    Proto(ProtoError),
    /// The connection closed before a complete response arrived.
    ConnectionClosed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Http(e) => write!(f, "unparseable response: {e}"),
            ClientError::Proto(e) => write!(f, "unparseable score body: {e}"),
            ClientError::ConnectionClosed => {
                write!(f, "connection closed before a complete response")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Http(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::ConnectionClosed => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Http(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}
