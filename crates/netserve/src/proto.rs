//! The scoring wire protocol: request/response bodies over
//! `POST /score`, plus the JSON error-body convention every non-200
//! response follows.
//!
//! Request:  `{"tenant":"checkout","ids":[17,203,17]}` (`tenant` optional)
//! Response: `{"scores":[0.0312,0.87,0.0312]}` — scores positionally
//! aligned with the requested ids, serialized with shortest-round-trip
//! `f32` formatting so a decoding client recovers the engine's exact bits
//! (see [`crate::json`]).
//!
//! Every decode failure is a typed [`ProtoError`] carrying its HTTP status;
//! arbitrary bytes can never panic this layer (the protocol-robustness
//! proptests feed it garbage directly and over a live socket).

use std::fmt;

use xfraud_hetgraph::NodeId;

use crate::json::{self, Json, JsonError};

/// Most transaction ids accepted in one request — bounds per-request work
/// and keeps one caller from monopolizing a micro-batch.
pub const MAX_IDS_PER_REQUEST: usize = 4096;

/// Tenant-name length cap (quota-map hygiene).
pub const MAX_TENANT_LEN: usize = 64;

/// The tenant requests fall under when the field is omitted.
pub const DEFAULT_TENANT: &str = "default";

/// A decoded `POST /score` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreRequest {
    pub tenant: String,
    pub ids: Vec<NodeId>,
}

/// A decoded `200 OK` score body.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    pub scores: Vec<f32>,
}

/// Typed protocol failures; [`ProtoError::status`] is the HTTP response
/// code (always 4xx — a malformed request is the client's fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    Json(JsonError),
    NotAnObject,
    MissingIds,
    IdsNotAnArray,
    /// An `ids` element that is not a non-negative integer node id.
    BadId {
        at: usize,
    },
    TooManyIds {
        got: usize,
    },
    BadTenant(&'static str),
    /// Response decode only: `scores` missing or malformed.
    BadScores,
}

impl ProtoError {
    pub fn status(&self) -> u16 {
        400
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "{e}"),
            ProtoError::NotAnObject => write!(f, "request body must be a JSON object"),
            ProtoError::MissingIds => write!(f, "request object must have an `ids` field"),
            ProtoError::IdsNotAnArray => write!(f, "`ids` must be an array"),
            ProtoError::BadId { at } => {
                write!(f, "`ids[{at}]` is not a non-negative integer node id")
            }
            ProtoError::TooManyIds { got } => write!(
                f,
                "request has {got} ids; the per-request limit is {MAX_IDS_PER_REQUEST}"
            ),
            ProtoError::BadTenant(why) => write!(f, "bad `tenant`: {why}"),
            ProtoError::BadScores => write!(f, "response object must have a `scores` array"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::Json(e)
    }
}

/// Encodes a score request body.
pub fn encode_score_request(req: &ScoreRequest) -> Vec<u8> {
    Json::Obj(vec![
        ("tenant".into(), Json::Str(req.tenant.clone())),
        (
            "ids".into(),
            Json::Arr(req.ids.iter().map(|&id| Json::num_u64(id as u64)).collect()),
        ),
    ])
    .to_bytes()
}

/// Decodes and validates a score request body.
pub fn decode_score_request(body: &[u8]) -> Result<ScoreRequest, ProtoError> {
    let doc = json::parse(body)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtoError::NotAnObject);
    }
    let tenant = match doc.get("tenant") {
        None => DEFAULT_TENANT.to_string(),
        Some(Json::Str(s)) => {
            if s.is_empty() {
                return Err(ProtoError::BadTenant("must be non-empty"));
            }
            if s.len() > MAX_TENANT_LEN {
                return Err(ProtoError::BadTenant("longer than 64 bytes"));
            }
            s.clone()
        }
        Some(_) => return Err(ProtoError::BadTenant("must be a string")),
    };
    let ids_field = doc.get("ids").ok_or(ProtoError::MissingIds)?;
    let items = ids_field.as_array().ok_or(ProtoError::IdsNotAnArray)?;
    if items.len() > MAX_IDS_PER_REQUEST {
        return Err(ProtoError::TooManyIds { got: items.len() });
    }
    let mut ids = Vec::with_capacity(items.len());
    for (at, item) in items.iter().enumerate() {
        let id = item.as_u64().ok_or(ProtoError::BadId { at })?;
        let id = usize::try_from(id).map_err(|_| ProtoError::BadId { at })?;
        ids.push(id);
    }
    Ok(ScoreRequest { tenant, ids })
}

/// Encodes a score response body (bit-exact f32 text; see module docs).
pub fn encode_score_response(scores: &[f32]) -> Vec<u8> {
    Json::Obj(vec![(
        "scores".into(),
        Json::Arr(scores.iter().map(|&s| Json::num_f32(s)).collect()),
    )])
    .to_bytes()
}

/// Decodes a score response body (client side).
pub fn decode_score_response(body: &[u8]) -> Result<ScoreResponse, ProtoError> {
    let doc = json::parse(body)?;
    let items = doc
        .get("scores")
        .and_then(Json::as_array)
        .ok_or(ProtoError::BadScores)?;
    let mut scores = Vec::with_capacity(items.len());
    for item in items {
        scores.push(item.as_f32().ok_or(ProtoError::BadScores)?);
    }
    Ok(ScoreResponse { scores })
}

/// The JSON error body of every non-200 response: `{"error":"…"}`.
pub fn encode_error_body(message: &str) -> Vec<u8> {
    Json::Obj(vec![("error".into(), Json::Str(message.to_string()))]).to_bytes()
}

/// Extracts the error message from an error body (client side); falls back
/// to the raw body text when it isn't the standard shape.
pub fn decode_error_body(body: &[u8]) -> String {
    match json::parse(body) {
        Ok(doc) => match doc.get("error").and_then(Json::as_str) {
            Some(msg) => msg.to_string(),
            None => String::from_utf8_lossy(body).into_owned(),
        },
        Err(_) => String::from_utf8_lossy(body).into_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = ScoreRequest {
            tenant: "checkout".into(),
            ids: vec![0, 17, 17, usize::MAX],
        };
        assert_eq!(decode_score_request(&encode_score_request(&req)), Ok(req));
    }

    #[test]
    fn omitted_tenant_defaults() {
        let req = decode_score_request(br#"{"ids":[1,2]}"#).expect("valid");
        assert_eq!(req.tenant, DEFAULT_TENANT);
        assert_eq!(req.ids, vec![1, 2]);
    }

    #[test]
    fn response_round_trip_is_bit_exact() {
        let scores = vec![0.3f32, f32::MIN_POSITIVE, -0.0, 1.0 / 3.0, 123456.78];
        let back = decode_score_response(&encode_score_response(&scores)).expect("valid");
        let bits: Vec<u32> = back.scores.iter().map(|s| s.to_bits()).collect();
        let want: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn malformed_requests_are_typed() {
        for (body, want) in [
            (&br#"[1,2]"#[..], ProtoError::NotAnObject),
            (br#"{}"#, ProtoError::MissingIds),
            (br#"{"ids":3}"#, ProtoError::IdsNotAnArray),
            (br#"{"ids":[1,-2]}"#, ProtoError::BadId { at: 1 }),
            (br#"{"ids":[1.5]}"#, ProtoError::BadId { at: 0 }),
            (br#"{"ids":["7"]}"#, ProtoError::BadId { at: 0 }),
            (
                br#"{"ids":[1],"tenant":7}"#,
                ProtoError::BadTenant("must be a string"),
            ),
            (
                br#"{"ids":[1],"tenant":""}"#,
                ProtoError::BadTenant("must be non-empty"),
            ),
        ] {
            let got = decode_score_request(body).expect_err("must fail");
            assert_eq!(got, want, "{:?}", String::from_utf8_lossy(body));
            assert_eq!(got.status(), 400);
        }
        assert!(matches!(
            decode_score_request(b"not json at all"),
            Err(ProtoError::Json(_))
        ));
    }

    #[test]
    fn id_count_limit_is_enforced() {
        let req = ScoreRequest {
            tenant: "t".into(),
            ids: vec![1; MAX_IDS_PER_REQUEST + 1],
        };
        assert_eq!(
            decode_score_request(&encode_score_request(&req)),
            Err(ProtoError::TooManyIds {
                got: MAX_IDS_PER_REQUEST + 1
            })
        );
    }

    #[test]
    fn error_bodies_round_trip() {
        let body = encode_error_body("unknown node id 9");
        assert_eq!(decode_error_body(&body), "unknown node id 9");
        assert_eq!(decode_error_body(b"plain text"), "plain text");
    }
}
