//! The network-facing scoring service: a hand-rolled HTTP/1.1 front end
//! over [`ScoringEngine`] built on `std::net` nonblocking sockets — the
//! workspace builds offline, so there is no async runtime; concurrency
//! comes from a small fixed thread crew instead:
//!
//! - an **acceptor** polls the listener, applies the connection cap (a
//!   refused connection gets a best-effort `503` and is closed), and deals
//!   accepted sockets round-robin to the workers;
//! - **workers** (thread-per-core style) each own a set of nonblocking
//!   connections and drive them through a per-connection state machine
//!   (read head → read body → dispatch → wait → write), reaping anything
//!   that blows a deadline — a slow-loris drip costs its own connection a
//!   `408`, never a thread;
//! - **scorers** sit between the workers and the engine: they take
//!   admitted jobs off a queue, make the *blocking* `ScoringEngine::score`
//!   call, and post results back to the owning worker, so engine latency
//!   never stalls connection I/O.
//!
//! Admission control is two-stage and strictly bounded: a per-tenant
//! token-bucket quota ([`QuotaSet`], `429`) and a global in-flight permit
//! gauge (`503` once `max_inflight` scoring requests are queued or
//! executing). Permits are released by the scorer whether or not the
//! requesting connection is still alive, so client disconnects can never
//! leak capacity.
//!
//! Detector hot-swap needs nothing from this layer: the engine is shared
//! as an `Arc`, `ScoringEngine::swap_detector` takes `&self` and lands
//! between micro-batches, so in-flight requests complete on the old or new
//! weights — each response entirely one or the other, never a mix.
//! Graceful [`NetServer::shutdown`] stops accepting, drains every
//! in-flight request (bounded by `shutdown_grace`), then joins the crew.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use xfraud_hetgraph::NodeId;
use xfraud_serve::{ScoringEngine, ServeError};

use crate::error::NetServeError;
use crate::http::{parse_request_head, write_response, Method, RequestHead, MAX_HEAD_BYTES};
use crate::json::Json;
use crate::metrics::{NetMetrics, NetMetricsSnapshot};
use crate::proto::{decode_score_request, encode_error_body, encode_score_response};
use crate::quota::{QuotaConfig, QuotaSet};

/// Pause between event-loop sweeps when no connection made progress.
const IDLE_POLL: Duration = Duration::from_micros(250);

/// Most bytes pulled off one connection per sweep (fairness bound).
const READ_QUANTUM: usize = 16 * 1024;

/// Server tuning knobs; validated by [`NetServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Connection-driving event threads.
    pub workers: usize,
    /// Threads making the blocking `ScoringEngine::score` calls.
    pub score_threads: usize,
    /// Accepted-connection cap; beyond it new connections get `503`.
    pub max_conns: usize,
    /// In-flight scoring-request cap (queued + executing); beyond it
    /// requests get `503`.
    pub max_inflight: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Deadline for a started request (first head byte → full body).
    pub read_timeout: Duration,
    /// Deadline for draining a queued response to the socket.
    pub write_timeout: Duration,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// How long shutdown waits for in-flight requests before force-closing.
    pub shutdown_grace: Duration,
    /// Per-tenant token-bucket quotas (disabled by default).
    pub quota: QuotaConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            score_threads: 2,
            max_conns: 1024,
            max_inflight: 256,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            shutdown_grace: Duration::from_secs(3),
            quota: QuotaConfig::default(),
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), NetServeError> {
        let bad = |msg: &str| Err(NetServeError::InvalidConfig(msg.into()));
        if self.workers == 0 {
            return bad("workers must be ≥ 1");
        }
        if self.score_threads == 0 {
            return bad("score_threads must be ≥ 1");
        }
        if self.max_conns == 0 {
            return bad("max_conns must be ≥ 1");
        }
        if self.max_inflight == 0 {
            return bad("max_inflight must be ≥ 1");
        }
        if self.max_body_bytes == 0 {
            return bad("max_body_bytes must be ≥ 1");
        }
        if self.read_timeout.is_zero() || self.write_timeout.is_zero() {
            return bad("timeouts must be non-zero");
        }
        Ok(())
    }
}

/// One admitted scoring request on its way to the engine.
struct ScoreJob {
    worker: usize,
    conn_id: u64,
    ids: Vec<NodeId>,
    keep_alive: bool,
    admitted_at: Instant,
}

/// A finished scoring request on its way back to the owning worker.
struct ScoreDone {
    conn_id: u64,
    keep_alive: bool,
    result: Result<Vec<f32>, ServeError>,
}

struct ServerShared {
    engine: Arc<ScoringEngine>,
    cfg: ServerConfig,
    metrics: NetMetrics,
    quotas: QuotaSet,
    stop: AtomicBool,
}

enum ConnState {
    ReadHead,
    ReadBody {
        head: RequestHead,
    },
    Waiting,
    Writing {
        out: Vec<u8>,
        written: usize,
        keep_alive: bool,
    },
}

struct Conn {
    id: u64,
    stream: TcpStream,
    /// Accumulation buffer: unconsumed request bytes (head, body, and any
    /// pipelined follow-ups).
    buf: Vec<u8>,
    state: ConnState,
    deadline: Instant,
    /// Read side saw EOF (peer half-closed); finish writing, then close.
    peer_gone: bool,
    dead: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream, now: Instant, idle: Duration) -> Conn {
        Conn {
            id,
            stream,
            buf: Vec::new(),
            state: ConnState::ReadHead,
            deadline: now + idle,
            peer_gone: false,
            dead: false,
        }
    }
}

/// The running server. Dropping it performs a graceful shutdown.
pub struct NetServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    scorers: Vec<JoinHandle<()>>,
    /// Keeps the scorer crew alive until the workers have drained.
    job_tx: Option<mpsc::Sender<ScoreJob>>,
}

impl NetServer {
    /// Binds, spawns the acceptor/worker/scorer crew and returns the
    /// running server. The engine is shared: callers keep their own `Arc`
    /// for hot-swap (`swap_detector`), ingestion and direct scoring.
    pub fn start(engine: Arc<ScoringEngine>, cfg: ServerConfig) -> Result<Self, NetServeError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr).map_err(NetServeError::Bind)?;
        listener
            .set_nonblocking(true)
            .map_err(NetServeError::Bind)?;
        let addr = listener.local_addr().map_err(NetServeError::Bind)?;

        let shared = Arc::new(ServerShared {
            engine,
            quotas: QuotaSet::new(cfg.quota.clone()),
            metrics: NetMetrics::new(),
            stop: AtomicBool::new(false),
            cfg,
        });

        // Job queue: workers → scorers. Unbounded by construction; the
        // in-flight permit gauge is the real bound.
        let (job_tx, job_rx) = mpsc::channel::<ScoreJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        // Result channels: scorers → each worker.
        let n_workers = shared.cfg.workers;
        let mut result_txs = Vec::with_capacity(n_workers);
        let mut result_rxs = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx) = mpsc::channel::<ScoreDone>();
            result_txs.push(tx);
            result_rxs.push(rx);
        }

        // New-connection channels: acceptor → each worker.
        let mut conn_txs = Vec::with_capacity(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for (w, results) in result_rxs.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            conn_txs.push(tx);
            let shared = Arc::clone(&shared);
            let jobs = job_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("netserve-worker-{w}"))
                .spawn(move || worker_loop(w, shared, rx, results, jobs))
                .map_err(NetServeError::Spawn)?;
            workers.push(handle);
        }

        let mut scorers = Vec::with_capacity(shared.cfg.score_threads);
        for s in 0..shared.cfg.score_threads {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            let result_txs: Vec<mpsc::Sender<ScoreDone>> = result_txs.clone();
            let handle = std::thread::Builder::new()
                .name(format!("netserve-scorer-{s}"))
                .spawn(move || scorer_loop(shared, job_rx, result_txs))
                .map_err(NetServeError::Spawn)?;
            scorers.push(handle);
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("netserve-acceptor".into())
                .spawn(move || acceptor_loop(shared, listener, conn_txs))
                .map_err(NetServeError::Spawn)?
        };

        Ok(NetServer {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            scorers,
            job_tx: Some(job_tx),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine — the handle for `swap_detector`, `apply_events`
    /// and direct (in-process) scoring next to the network path.
    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.shared.engine
    }

    /// Point-in-time server counters.
    pub fn metrics(&self) -> NetMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (bounded by `shutdown_grace`), join every thread. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // A `join` returning `Err` means the thread died by panic instead of
        // seeing the stop flag — surface that through the `thread_panics`
        // counter rather than swallowing it.
        let shared = Arc::clone(&self.shared);
        let note_panic = move |joined: std::thread::Result<()>| {
            if joined.is_err() {
                shared.metrics.thread_panics.fetch_add(1, Ordering::Relaxed);
            }
        };
        if let Some(h) = self.acceptor.take() {
            note_panic(h.join());
        }
        for h in self.workers.drain(..) {
            note_panic(h.join());
        }
        // All worker-held job senders are gone; dropping ours lets the
        // scorer crew drain the queue and exit.
        drop(self.job_tx.take());
        for h in self.scorers.drain(..) {
            note_panic(h.join());
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn acceptor_loop(
    shared: Arc<ServerShared>,
    listener: TcpListener,
    conn_txs: Vec<mpsc::Sender<TcpStream>>,
) {
    let mut next_worker = 0usize;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let m = &shared.metrics;
                m.conns_accepted.fetch_add(1, Ordering::Relaxed);
                if m.active_conns.load(Ordering::Acquire) >= shared.cfg.max_conns {
                    refuse(stream, &shared);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    m.conns_closed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let _ = stream.set_nodelay(true); // xlint: allow(e1, reason = "Nagle stays on if the socket refuses; latency hint only, never a failure")
                m.active_conns.fetch_add(1, Ordering::AcqRel);
                let w = next_worker % conn_txs.len();
                next_worker = next_worker.wrapping_add(1);
                if conn_txs[w].send(stream).is_err() {
                    // Worker exited (shutdown race); the stream just drops.
                    m.active_conns.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, …): brief
                // backoff; the listener itself stays up.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Best-effort `503` to a connection refused at the accept gate.
fn refuse(stream: TcpStream, shared: &ServerShared) {
    let m = &shared.metrics;
    m.conns_refused.fetch_add(1, Ordering::Relaxed);
    m.observe_response(503);
    let body = encode_error_body("server connection limit reached");
    let bytes = write_response(503, &body, false);
    let _ = stream.set_nonblocking(false); // xlint: allow(e1, reason = "refusal is best-effort by contract; the connection drops either way")
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100))); // xlint: allow(e1, reason = "refusal is best-effort by contract; the connection drops either way")
    let mut stream = stream;
    let _ = stream.write_all(&bytes); // xlint: allow(e1, reason = "a peer that hung up before reading its 503 is already counted refused")
    m.conns_closed.fetch_add(1, Ordering::Relaxed);
}

fn scorer_loop(
    shared: Arc<ServerShared>,
    job_rx: Arc<Mutex<mpsc::Receiver<ScoreJob>>>,
    result_txs: Vec<mpsc::Sender<ScoreDone>>,
) {
    loop {
        // Hold the receiver lock only for the blocking recv, never across
        // the engine call.
        let job = {
            let guard = job_rx.lock();
            guard.recv()
        };
        let Ok(job) = job else { return };
        let result = shared.engine.score(&job.ids);
        shared.metrics.observe_latency(job.admitted_at.elapsed());
        // Release the admission permit regardless of whether the requester
        // is still connected — disconnects must not leak capacity.
        shared.metrics.in_flight.fetch_sub(1, Ordering::AcqRel);
        if let Some(tx) = result_txs.get(job.worker) {
            // xlint: allow(e1, reason = "worker already exited at shutdown; the permit above is released either way")
            let _ = tx.send(ScoreDone {
                conn_id: job.conn_id,
                keep_alive: job.keep_alive,
                result,
            });
        }
    }
}

fn worker_loop(
    worker_idx: usize,
    shared: Arc<ServerShared>,
    new_conns: mpsc::Receiver<TcpStream>,
    results: mpsc::Receiver<ScoreDone>,
    jobs: mpsc::Sender<ScoreJob>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_id: u64 = 0;
    let mut stop_seen: Option<Instant> = None;
    loop {
        let mut progressed = false;
        let now = Instant::now();
        let stopping = shared.stop.load(Ordering::Acquire);

        // Adopt newly accepted connections (or drop them when stopping).
        while let Ok(stream) = new_conns.try_recv() {
            progressed = true;
            if stopping {
                shared.metrics.active_conns.fetch_sub(1, Ordering::AcqRel);
                shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let id = (next_id << 8) | worker_idx as u64;
            next_id += 1;
            conns.push(Conn::new(id, stream, now, shared.cfg.idle_timeout));
        }

        // Deliver finished scores to their connections.
        while let Ok(done) = results.try_recv() {
            progressed = true;
            if let Some(conn) = conns.iter_mut().find(|c| c.id == done.conn_id && !c.dead) {
                let (status, body) = match done.result {
                    Ok(scores) => (200, encode_score_response(&scores)),
                    Err(e) => serve_error_response(&e),
                };
                start_write(conn, status, &body, done.keep_alive, &shared, now);
            }
            // A vanished connection simply discards its result; the permit
            // was already released by the scorer.
        }

        for conn in conns.iter_mut() {
            progressed |= drive(conn, now, worker_idx, &shared, &jobs, stopping);
        }

        let before = conns.len();
        conns.retain(|c| !c.dead);
        let removed = before - conns.len();
        if removed > 0 {
            progressed = true;
            shared
                .metrics
                .active_conns
                .fetch_sub(removed, Ordering::AcqRel);
        }

        if stopping {
            let since = *stop_seen.get_or_insert(now);
            // Idle keep-alive connections have nothing in flight: drop them.
            for conn in conns.iter_mut() {
                if matches!(conn.state, ConnState::ReadHead) && conn.buf.is_empty() {
                    shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                    conn.dead = true;
                }
            }
            let expired = now.saturating_duration_since(since) > shared.cfg.shutdown_grace;
            if expired {
                shared
                    .metrics
                    .active_conns
                    .fetch_sub(conns.len(), Ordering::AcqRel);
                conns.clear();
            }
            let still_going = conns.iter().any(|c| !c.dead);
            if !still_going {
                let before = conns.len();
                conns.retain(|c| !c.dead);
                shared
                    .metrics
                    .active_conns
                    .fetch_sub(before - conns.len(), Ordering::AcqRel);
                return;
            }
        }

        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
}

/// Maps an engine failure onto the response taxonomy.
fn serve_error_response(e: &ServeError) -> (u16, Vec<u8>) {
    let status = match e {
        ServeError::UnknownNode(_) => 404,
        ServeError::NotATransaction(_) => 400,
        ServeError::Shutdown => 503,
        _ => 500,
    };
    (status, encode_error_body(&format!("{e}")))
}

/// Queues a response on the connection and starts its write deadline.
fn start_write(
    conn: &mut Conn,
    status: u16,
    body: &[u8],
    keep_alive: bool,
    shared: &ServerShared,
    now: Instant,
) {
    // During shutdown every response closes its connection so the worker
    // can drain; a half-closed peer cannot send another request either.
    let keep_alive = keep_alive && !conn.peer_gone && !shared.stop.load(Ordering::Acquire);
    shared.metrics.observe_response(status);
    conn.state = ConnState::Writing {
        out: write_response(status, body, keep_alive),
        written: 0,
        keep_alive,
    };
    conn.deadline = now + shared.cfg.write_timeout;
}

/// Advances one connection's state machine; returns whether it made
/// progress this sweep.
fn drive(
    conn: &mut Conn,
    now: Instant,
    worker_idx: usize,
    shared: &ServerShared,
    jobs: &mpsc::Sender<ScoreJob>,
    stopping: bool,
) -> bool {
    if conn.dead {
        return false;
    }

    // Deadlines first: reap stalled reads (slow loris), stalled writes
    // (dead readers) and expired idle keep-alives.
    if now >= conn.deadline {
        match &conn.state {
            ConnState::ReadHead if conn.buf.is_empty() => {
                // Idle keep-alive expiry: a clean close, not a reap.
                shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
            }
            ConnState::ReadHead | ConnState::ReadBody { .. } => {
                shared.metrics.conns_reaped.fetch_add(1, Ordering::Relaxed);
                start_write(
                    conn,
                    408,
                    &encode_error_body("request did not complete in time"),
                    false,
                    shared,
                    now,
                );
            }
            ConnState::Writing { .. } => {
                shared.metrics.conns_reaped.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
            }
            ConnState::Waiting => {} // the engine always answers; no deadline
        }
        if conn.dead {
            return true;
        }
    }

    match &mut conn.state {
        ConnState::ReadHead | ConnState::ReadBody { .. } | ConnState::Waiting => {
            read_some(conn, shared, now);
            if conn.dead {
                return true;
            }
            let progressed = advance_reads(conn, worker_idx, shared, jobs, now, stopping);
            if conn.peer_gone
                && !conn.dead
                && matches!(conn.state, ConnState::ReadHead | ConnState::ReadBody { .. })
            {
                // EOF arrived and what remains buffered is not a complete
                // request: it never will be. Close silently.
                shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
            }
            progressed
        }
        ConnState::Writing {
            out,
            written,
            keep_alive,
        } => {
            let mut progressed = false;
            loop {
                match conn.stream.write(&out[*written..]) {
                    Ok(0) => {
                        conn.dead = true;
                        shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        *written += n;
                        if *written == out.len() {
                            if *keep_alive {
                                conn.state = ConnState::ReadHead;
                                conn.deadline = now
                                    + if conn.buf.is_empty() {
                                        shared.cfg.idle_timeout
                                    } else {
                                        shared.cfg.read_timeout
                                    };
                            } else {
                                shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                                conn.dead = true;
                            }
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Peer reset mid-response: close and move on.
                        conn.dead = true;
                        shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            progressed
        }
    }
}

/// Pulls up to [`READ_QUANTUM`] bytes into the accumulation buffer.
fn read_some(conn: &mut Conn, shared: &ServerShared, now: Instant) -> bool {
    if conn.peer_gone {
        return false;
    }
    // Backpressure: stop reading once a full request's worth of bytes is
    // already buffered (pipelined senders wait in the socket buffer).
    let cap = MAX_HEAD_BYTES + shared.cfg.max_body_bytes + READ_QUANTUM;
    if conn.buf.len() >= cap {
        return false;
    }
    let mut chunk = [0u8; 4096];
    let mut total = 0usize;
    let mut progressed = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: peer closed (or half-closed) its send side. Anything
                // mid-request is now unfinishable; a Waiting/Writing
                // connection still gets its response.
                conn.peer_gone = true;
                progressed = true;
                if matches!(conn.state, ConnState::ReadHead) && conn.buf.is_empty() {
                    // Idle peer left cleanly: nothing buffered, nothing owed.
                    shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                    conn.dead = true;
                }
                // Otherwise defer the verdict: the buffer may hold a complete
                // half-closed request that `advance_reads` can still serve.
                // `drive` closes the connection if parsing leaves a request
                // that can now never finish.
                break;
            }
            Ok(n) => {
                progressed = true;
                let was_empty = conn.buf.is_empty();
                conn.buf.extend_from_slice(&chunk[..n]);
                if was_empty && matches!(conn.state, ConnState::ReadHead) {
                    // First byte of a request starts the read deadline.
                    conn.deadline = now + shared.cfg.read_timeout;
                }
                total += n;
                if total >= READ_QUANTUM || conn.buf.len() >= cap {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                shared.metrics.conns_closed.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    progressed
}

/// Parses and routes whatever complete protocol units the buffer now
/// holds. Returns whether any state advanced.
fn advance_reads(
    conn: &mut Conn,
    worker_idx: usize,
    shared: &ServerShared,
    jobs: &mpsc::Sender<ScoreJob>,
    now: Instant,
    stopping: bool,
) -> bool {
    let mut progressed = false;
    loop {
        match &conn.state {
            ConnState::ReadHead => {
                if conn.buf.is_empty() {
                    return progressed;
                }
                match parse_request_head(&conn.buf, shared.cfg.max_body_bytes) {
                    Ok(None) => return progressed,
                    Ok(Some(head)) => {
                        progressed = true;
                        conn.buf.drain(..head.head_len);
                        match head.method {
                            Method::Get => {
                                let (status, body) = route_get(&head.path, shared);
                                start_write(conn, status, &body, head.keep_alive, shared, now);
                                return true;
                            }
                            Method::Post => {
                                if head.path != "/score" {
                                    start_write(
                                        conn,
                                        404,
                                        &encode_error_body("unknown path"),
                                        false,
                                        shared,
                                        now,
                                    );
                                    return true;
                                }
                                conn.deadline = now + shared.cfg.read_timeout;
                                conn.state = ConnState::ReadBody { head };
                            }
                        }
                    }
                    Err(e) => {
                        // Framing is broken: answer with the typed status
                        // and close — the byte boundary can't be trusted.
                        let status = e.status();
                        start_write(
                            conn,
                            status,
                            &encode_error_body(&format!("{e}")),
                            false,
                            shared,
                            now,
                        );
                        return true;
                    }
                }
            }
            ConnState::ReadBody { head } => {
                let need = head.content_length.unwrap_or(0);
                if conn.buf.len() < need {
                    return progressed;
                }
                progressed = true;
                let keep_alive = head.keep_alive;
                let body: Vec<u8> = conn.buf.drain(..need).collect();
                dispatch_score(
                    conn, &body, keep_alive, worker_idx, shared, jobs, now, stopping,
                );
                if matches!(conn.state, ConnState::Waiting | ConnState::Writing { .. }) {
                    return true;
                }
            }
            _ => return progressed,
        }
    }
}

/// `GET` routing: health and metrics.
fn route_get(path: &str, shared: &ServerShared) -> (u16, Vec<u8>) {
    match path {
        "/healthz" => {
            let body = Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "nodes".into(),
                    Json::num_u64(shared.engine.n_nodes() as u64),
                ),
            ]);
            (200, body.to_bytes())
        }
        "/metrics" => {
            let server = shared.metrics.snapshot();
            let engine = shared.engine.metrics();
            let body = Json::Obj(vec![
                ("server".into(), server.to_json()),
                (
                    "engine".into(),
                    Json::Obj(vec![
                        ("requests".into(), Json::num_u64(engine.requests)),
                        ("transactions".into(), Json::num_u64(engine.transactions)),
                        ("batches".into(), Json::num_u64(engine.batches)),
                        ("p50_ms".into(), Json::num_f64(engine.p50_ms)),
                        ("p99_ms".into(), Json::num_f64(engine.p99_ms)),
                        ("p999_ms".into(), Json::num_f64(engine.p999_ms)),
                    ]),
                ),
            ]);
            (200, body.to_bytes())
        }
        _ => (404, encode_error_body("unknown path")),
    }
}

/// Admission control and hand-off to the scorer crew.
#[allow(clippy::too_many_arguments)]
fn dispatch_score(
    conn: &mut Conn,
    body: &[u8],
    keep_alive: bool,
    worker_idx: usize,
    shared: &ServerShared,
    jobs: &mpsc::Sender<ScoreJob>,
    now: Instant,
    stopping: bool,
) {
    let req = match decode_score_request(body) {
        Ok(req) => req,
        Err(e) => {
            // The request was well-framed, so the connection survives.
            start_write(
                conn,
                e.status(),
                &encode_error_body(&format!("{e}")),
                keep_alive,
                shared,
                now,
            );
            return;
        }
    };
    if stopping {
        start_write(
            conn,
            503,
            &encode_error_body("server is shutting down"),
            false,
            shared,
            now,
        );
        return;
    }
    if !shared.quotas.admit(&req.tenant, now) {
        let wait = shared.quotas.retry_after(&req.tenant, now);
        start_write(
            conn,
            429,
            &encode_error_body(&format!(
                "tenant `{}` over quota; retry in {:.3}s",
                req.tenant,
                wait.as_secs_f64()
            )),
            keep_alive,
            shared,
            now,
        );
        return;
    }
    // In-flight permit: acquired here, released by the scorer.
    let prev = shared.metrics.in_flight.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.cfg.max_inflight {
        shared.metrics.in_flight.fetch_sub(1, Ordering::AcqRel);
        start_write(
            conn,
            503,
            &encode_error_body("server overloaded; in-flight limit reached"),
            keep_alive,
            shared,
            now,
        );
        return;
    }
    let job = ScoreJob {
        worker: worker_idx,
        conn_id: conn.id,
        ids: req.ids,
        keep_alive,
        admitted_at: now,
    };
    if jobs.send(job).is_err() {
        // Scorers are gone (shutdown race): release the permit, shed.
        shared.metrics.in_flight.fetch_sub(1, Ordering::AcqRel);
        start_write(
            conn,
            503,
            &encode_error_body("server is shutting down"),
            false,
            shared,
            now,
        );
        return;
    }
    conn.state = ConnState::Waiting;
    // The engine always answers (or errors); no read deadline while
    // waiting. The connection is still polled for EOF so a vanished
    // client's response is discarded cheaply.
    conn.deadline = now + Duration::from_secs(3600);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ScoreClient, ScoreOutcome};
    use xfraud_datagen::{Dataset, DatasetPreset};
    use xfraud_gnn::{CommunitySampler, DetectorConfig, XFraudDetector};

    fn engine() -> (Arc<ScoringEngine>, Vec<NodeId>) {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 23).graph;
        let detector = XFraudDetector::new(DetectorConfig::small(g.feature_dim(), 5));
        let txns: Vec<NodeId> = g
            .labeled_txns()
            .into_iter()
            .map(|(v, _)| v)
            .take(12)
            .collect();
        let engine = ScoringEngine::builder(detector, g, Box::new(CommunitySampler::new(300)))
            .seed(11)
            .build()
            .expect("engine builds");
        (Arc::new(engine), txns)
    }

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            idle_timeout: Duration::from_secs(5),
            shutdown_grace: Duration::from_secs(2),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        let (eng, _) = engine();
        for cfg in [
            ServerConfig {
                workers: 0,
                ..quick_cfg()
            },
            ServerConfig {
                score_threads: 0,
                ..quick_cfg()
            },
            ServerConfig {
                max_conns: 0,
                ..quick_cfg()
            },
            ServerConfig {
                max_inflight: 0,
                ..quick_cfg()
            },
            ServerConfig {
                max_body_bytes: 0,
                ..quick_cfg()
            },
            ServerConfig {
                read_timeout: Duration::ZERO,
                ..quick_cfg()
            },
        ] {
            assert!(matches!(
                NetServer::start(Arc::clone(&eng), cfg),
                Err(NetServeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn scores_match_the_engine_over_the_wire() {
        let (eng, txns) = engine();
        let direct = eng.score(&txns).expect("direct scores");
        let server = NetServer::start(Arc::clone(&eng), quick_cfg()).expect("server starts");
        let mut client =
            ScoreClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connects");
        match client.score("t", &txns).expect("request succeeds") {
            ScoreOutcome::Scores(scores) => {
                let got: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
                let want: Vec<u32> = direct.iter().map(|s| s.to_bits()).collect();
                assert_eq!(got, want, "network scores must be bit-identical");
            }
            ScoreOutcome::Rejected { status, error } => {
                panic!("unexpected rejection: {status} {error}")
            }
        }
        // Keep-alive: the same connection answers again.
        assert!(matches!(
            client.score("t", &txns[..3]).expect("second request"),
            ScoreOutcome::Scores(_)
        ));
        let m = server.metrics();
        assert_eq!(m.responses_2xx, 2);
        assert_eq!(m.responses_5xx, 0);
        server.shutdown();
    }

    #[test]
    fn health_and_metrics_endpoints_answer() {
        let (eng, _) = engine();
        let server = NetServer::start(eng, quick_cfg()).expect("server starts");
        let mut client =
            ScoreClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connects");
        let (status, body) = client.get("/healthz").expect("healthz");
        assert_eq!(status, 200);
        let doc = crate::json::parse(&body).expect("healthz json");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        let (status, body) = client.get("/metrics").expect("metrics");
        assert_eq!(status, 200);
        let doc = crate::json::parse(&body).expect("metrics json");
        assert!(doc.get("server").is_some() && doc.get("engine").is_some());
        let (status, _) = client.get("/nope").expect("unknown");
        assert_eq!(status, 404);
    }

    #[test]
    fn engine_errors_map_to_4xx() {
        let (eng, txns) = engine();
        let bogus = eng.n_nodes() + 99;
        let server = NetServer::start(eng, quick_cfg()).expect("server starts");
        let mut client =
            ScoreClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connects");
        match client.score("t", &[txns[0], bogus]).expect("request") {
            ScoreOutcome::Rejected { status, error } => {
                assert_eq!(status, 404);
                assert!(error.contains("unknown node"), "{error}");
            }
            ScoreOutcome::Scores(_) => panic!("bogus id must be rejected"),
        }
        // The connection remains usable after a 4xx.
        assert!(matches!(
            client.score("t", &[txns[0]]).expect("follow-up"),
            ScoreOutcome::Scores(_)
        ));
    }

    #[test]
    fn quota_sheds_with_429_and_refills() {
        let (eng, txns) = engine();
        let cfg = ServerConfig {
            quota: QuotaConfig::per_tenant(5.0, 2.0),
            ..quick_cfg()
        };
        let server = NetServer::start(eng, cfg).expect("server starts");
        let mut client =
            ScoreClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connects");
        let mut seen_429 = 0;
        for _ in 0..6 {
            if let ScoreOutcome::Rejected { status, .. } =
                client.score("greedy", &[txns[0]]).expect("request")
            {
                assert_eq!(status, 429);
                seen_429 += 1;
            }
        }
        assert!(seen_429 >= 3, "burst of 6 at burst-2 quota: saw {seen_429}");
        // A different tenant is unaffected.
        assert!(matches!(
            client.score("polite", &[txns[0]]).expect("request"),
            ScoreOutcome::Scores(_)
        ));
        // And the greedy tenant refills at 5 tokens/s.
        std::thread::sleep(Duration::from_millis(400));
        assert!(matches!(
            client.score("greedy", &[txns[0]]).expect("request"),
            ScoreOutcome::Scores(_)
        ));
        assert!(server.metrics().shed_quota >= 3);
    }

    #[test]
    fn graceful_shutdown_finishes_in_flight_requests() {
        let (eng, txns) = engine();
        let server = NetServer::start(eng, quick_cfg()).expect("server starts");
        let addr = server.local_addr();
        let txns2 = txns.clone();
        let h = std::thread::spawn(move || {
            let mut client = ScoreClient::connect(addr, Duration::from_secs(5)).expect("connects");
            let mut ok = 0;
            for _ in 0..20 {
                match client.score("t", &txns2) {
                    Ok(ScoreOutcome::Scores(_)) => ok += 1,
                    _ => break,
                }
            }
            ok
        });
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown(); // must drain, not hang, not drop mid-response
        let ok = h.join().expect("client thread");
        assert!(ok >= 1, "at least the in-flight request completes");
    }
}
