//! A minimal JSON reader/writer — the wire format of the scoring service.
//!
//! Hand-rolled because the workspace builds offline (no `serde`). Two
//! properties matter more than generality here:
//!
//! 1. **Robustness under arbitrary bytes.** The parser is fed straight off
//!    the network; it must return a typed [`JsonError`] for every malformed
//!    input — never panic, never loop — with hard depth and size limits so
//!    adversarial nesting cannot blow the stack.
//! 2. **Bit-exact float round-trips.** Numbers are kept as their *raw
//!    literal text* ([`Json::Num`]) instead of being funneled through `f64`.
//!    A score is serialized with Rust's shortest-round-trip `Display` for
//!    `f32` and parsed back with `str::parse::<f32>`, so the bits a client
//!    decodes are exactly the bits the engine produced — the foundation of
//!    the network-equivalence test suite. Routing the text through an `f64`
//!    intermediate would re-round and silently break that contract.

use std::fmt;

/// Nesting budget: a parse deeper than this fails with
/// [`JsonError::TooDeep`] instead of recursing toward a stack overflow.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON document. Object keys keep their insertion order (the
/// writer is deterministic); numbers keep their raw text (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A syntactically valid JSON number literal, unparsed.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Typed parse failures; every variant maps onto an HTTP 4xx at the
/// protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The body is not valid UTF-8.
    Utf8,
    /// Unexpected byte (or end of input) at this offset.
    Unexpected { at: usize, what: &'static str },
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Valid JSON followed by trailing non-whitespace bytes.
    TrailingBytes { at: usize },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Utf8 => write!(f, "body is not valid UTF-8"),
            JsonError::Unexpected { at, what } => {
                write!(f, "malformed JSON at byte {at}: expected {what}")
            }
            JsonError::TooDeep => write!(f, "JSON nesting deeper than {MAX_DEPTH}"),
            JsonError::TrailingBytes { at } => {
                write!(f, "trailing bytes after JSON document at byte {at}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An f32 as a JSON number via shortest-round-trip `Display` — parsing
    /// the text back with `parse::<f32>` recovers the exact bits.
    /// Non-finite values have no JSON representation and become `null`.
    pub fn num_f32(v: f32) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    pub fn num_u64(v: u64) -> Json {
        Json::Num(format!("{v}"))
    }

    pub fn num_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The raw number literal parsed as `u64` — fails on floats, signs and
    /// out-of-range values (ids must be exact integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The raw number literal parsed directly as `f32` (single rounding —
    /// see module docs).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(raw) => raw.parse::<f32>().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// Serializes into `out`. Deterministic: fields in insertion order, no
    /// whitespace.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes to an owned byte vector (HTTP body form).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = String::new();
        self.write(&mut s);
        s.into_bytes()
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing whitespace is allowed, any
/// other trailing bytes are an error.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError::Utf8)?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::TrailingBytes { at: p.pos });
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn fail(&self, what: &'static str) -> JsonError {
        JsonError::Unexpected { at: self.pos, what }
    }

    fn eat(&mut self, lit: &str, what: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'n') => self.eat("null", "null").map(|_| Json::Null),
            Some(b't') => self.eat("true", "true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false", "false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("`,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.fail("`:`"));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("`,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.fail("`\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("closing `\"`")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.fail("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.fail("no raw control characters")),
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim; the input
                    // was validated as UTF-8 up front, so char boundaries
                    // are safe to re-derive here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError::Utf8)?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.fail("closing `\"`")),
                    }
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`);
    /// consumes a following low-surrogate escape when needed.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by `\uDC00..DFFF`.
            self.eat("\\u", "a low surrogate escape")?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.fail("a low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.fail("a valid code point"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.fail("a high surrogate before a low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.fail("a valid code point"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.fail("4 hex digits")),
            };
            code = (code << 4) | d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit run (no leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("a fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("an exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The slice is ASCII by construction.
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        Ok(Json::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&v.to_bytes()).expect("writer output parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::num_u64(0),
            Json::num_u64(u64::MAX),
            Json::Str(String::new()),
            Json::Str("héllo \"quoted\" \\ / \n\t\u{1}".into()),
            Json::Str("😀 surrogate territory".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        for bits in [
            0u32,
            1,
            0x3f80_0001,
            0x3e99_999a, // ~0.3
            0x7f7f_ffff, // f32::MAX
            0x0000_0001, // smallest subnormal
            0xbf00_0000, // -0.5
        ] {
            let v = f32::from_bits(bits);
            let json = Json::num_f32(v);
            let back = roundtrip(&json).as_f32().expect("number");
            assert_eq!(back.to_bits(), bits, "{v}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::num_f32(f32::NAN), Json::Null);
        assert_eq!(Json::num_f32(f32::INFINITY), Json::Null);
        assert_eq!(Json::num_f64(f64::NEG_INFINITY), Json::Null);
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Arr(vec![Json::num_u64(1), Json::Null])),
            ("a".into(), Json::Str("x".into())),
            ("b".into(), Json::Bool(false)), // duplicate keys survive
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![Json::num_u64(1), Json::Null]))
        );
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        for bad in [
            &b""[..],
            b"{",
            b"[1,",
            b"{\"a\"}",
            b"{\"a\":}",
            b"nul",
            b"tru",
            b"01",
            b"1.",
            b"1e",
            b"-",
            b"\"unterminated",
            b"\"bad \\x escape\"",
            b"\"\\u12",
            b"\"\\ud800\"",        // lone high surrogate
            b"\"\\udc00\"",        // lone low surrogate
            b"\"\\ud800\\u0041\"", // high surrogate + non-surrogate
            b"[1] trailing",
            b"\xff\xfe",
            b"\"raw\x01control\"",
        ] {
            assert!(parse(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(deep.as_bytes()), Err(JsonError::TooDeep));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn numbers_keep_raw_text() {
        let v = parse(b"1.2500e1").expect("valid");
        assert_eq!(v, Json::Num("1.2500e1".into()));
        assert_eq!(v.as_f64(), Some(12.5));
        assert_eq!(v.as_u64(), None, "floats are not ids");
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse(br#""\u0041\u00e9\ud83d\ude00""#).expect("valid"),
            Json::Str("Aé😀".into())
        );
    }
}
