//! Server-side telemetry: connection and response-class counters, the
//! in-flight admission gauge, and service-latency percentiles
//! (p50/p99/p999) over a recent window — the numbers `GET /metrics`
//! reports and the fault-injection suite asserts on (reaped connections,
//! a drained in-flight gauge).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::json::Json;

/// Latency reservoir size; percentiles describe the recent window, not the
/// process's whole life.
const LATENCY_WINDOW: usize = 8192;

struct LatencyRing {
    buf: Vec<f64>,
    next: usize,
    filled: usize,
}

/// Live counters, updated lock-free except for the latency ring.
#[derive(Default)]
pub struct NetMetrics {
    pub(crate) conns_accepted: AtomicU64,
    /// Accepted then immediately refused with 503: connection cap hit.
    pub(crate) conns_refused: AtomicU64,
    /// Closed by a deadline: slow-loris heads, stalled bodies, dead readers.
    pub(crate) conns_reaped: AtomicU64,
    pub(crate) conns_closed: AtomicU64,
    /// Live connections across all workers.
    pub(crate) active_conns: AtomicUsize,
    /// Score requests admitted and not yet answered — the permit gauge.
    pub(crate) in_flight: AtomicUsize,
    pub(crate) responses_2xx: AtomicU64,
    /// 4xx other than 429 (malformed bytes, unknown ids, bad paths).
    pub(crate) responses_4xx: AtomicU64,
    /// Quota shedding (429).
    pub(crate) shed_quota: AtomicU64,
    /// Overload shedding (503 from the in-flight cap or connection cap).
    pub(crate) shed_overload: AtomicU64,
    /// 5xx other than 503 shedding — zero in a healthy server.
    pub(crate) responses_5xx: AtomicU64,
    /// Requests answered 408 after a read deadline.
    pub(crate) timeouts_408: AtomicU64,
    /// Server threads (acceptor/worker/scorer) observed dead-by-panic at
    /// join time during shutdown. Non-zero means a bug the request-level
    /// counters cannot show.
    pub(crate) thread_panics: AtomicU64,
    latencies: Mutex<Option<LatencyRing>>,
}

impl NetMetrics {
    pub fn new() -> Self {
        NetMetrics::default()
    }

    /// Classifies one written response into the counter taxonomy.
    pub(crate) fn observe_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.fetch_add(1, Ordering::Relaxed),
            408 => self.timeouts_408.fetch_add(1, Ordering::Relaxed),
            429 => self.shed_quota.fetch_add(1, Ordering::Relaxed),
            503 => self.shed_overload.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.responses_4xx.fetch_add(1, Ordering::Relaxed),
            _ => self.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records one admitted request's service latency (admission → response
    /// bytes queued for write).
    pub(crate) fn observe_latency(&self, elapsed: Duration) {
        let mut guard = self.latencies.lock();
        let ring = guard.get_or_insert_with(|| LatencyRing {
            buf: vec![0.0; LATENCY_WINDOW],
            next: 0,
            filled: 0,
        });
        let at = ring.next;
        ring.buf[at] = elapsed.as_secs_f64() * 1e3;
        ring.next = (at + 1) % LATENCY_WINDOW;
        ring.filled = (ring.filled + 1).min(LATENCY_WINDOW);
    }

    fn percentiles(&self) -> (f64, f64, f64) {
        let guard = self.latencies.lock();
        let Some(ring) = guard.as_ref() else {
            return (0.0, 0.0, 0.0);
        };
        if ring.filled == 0 {
            return (0.0, 0.0, 0.0);
        }
        let mut sorted: Vec<f64> = ring.buf[..ring.filled].to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        (at(0.50), at(0.99), at(0.999))
    }

    pub fn snapshot(&self) -> NetMetricsSnapshot {
        let (p50_ms, p99_ms, p999_ms) = self.percentiles();
        NetMetricsSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            conns_reaped: self.conns_reaped.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            active_conns: self.active_conns.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            timeouts_408: self.timeouts_408.load(Ordering::Relaxed),
            thread_panics: self.thread_panics.load(Ordering::Relaxed),
            p50_ms,
            p99_ms,
            p999_ms,
        }
    }
}

/// Point-in-time view of the server counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetMetricsSnapshot {
    pub conns_accepted: u64,
    pub conns_refused: u64,
    pub conns_reaped: u64,
    pub conns_closed: u64,
    pub active_conns: usize,
    pub in_flight: usize,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub shed_quota: u64,
    pub shed_overload: u64,
    pub responses_5xx: u64,
    pub timeouts_408: u64,
    /// Threads found panicked when joined at shutdown — zero in a healthy
    /// server.
    pub thread_panics: u64,
    /// Service latency (admission → response queued), recent window.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
}

impl NetMetricsSnapshot {
    /// Responses of every class (what the server actually answered).
    pub fn total_responses(&self) -> u64 {
        self.responses_2xx
            + self.responses_4xx
            + self.shed_quota
            + self.shed_overload
            + self.responses_5xx
            + self.timeouts_408
    }

    /// The `GET /metrics` body shape.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("conns_accepted".into(), Json::num_u64(self.conns_accepted)),
            ("conns_refused".into(), Json::num_u64(self.conns_refused)),
            ("conns_reaped".into(), Json::num_u64(self.conns_reaped)),
            ("conns_closed".into(), Json::num_u64(self.conns_closed)),
            (
                "active_conns".into(),
                Json::num_u64(self.active_conns as u64),
            ),
            ("in_flight".into(), Json::num_u64(self.in_flight as u64)),
            ("responses_2xx".into(), Json::num_u64(self.responses_2xx)),
            ("responses_4xx".into(), Json::num_u64(self.responses_4xx)),
            ("shed_quota".into(), Json::num_u64(self.shed_quota)),
            ("shed_overload".into(), Json::num_u64(self.shed_overload)),
            ("responses_5xx".into(), Json::num_u64(self.responses_5xx)),
            ("timeouts_408".into(), Json::num_u64(self.timeouts_408)),
            ("thread_panics".into(), Json::num_u64(self.thread_panics)),
            ("p50_ms".into(), Json::num_f64(self.p50_ms)),
            ("p99_ms".into(), Json::num_f64(self.p99_ms)),
            ("p999_ms".into(), Json::num_f64(self.p999_ms)),
        ])
    }

    /// Parses a `GET /metrics` body (client side, for tests and benches).
    pub fn from_json(doc: &Json) -> Option<NetMetricsSnapshot> {
        let u = |k: &str| doc.get(k).and_then(Json::as_u64);
        let f = |k: &str| doc.get(k).and_then(Json::as_f64);
        Some(NetMetricsSnapshot {
            conns_accepted: u("conns_accepted")?,
            conns_refused: u("conns_refused")?,
            conns_reaped: u("conns_reaped")?,
            conns_closed: u("conns_closed")?,
            active_conns: u("active_conns")? as usize,
            in_flight: u("in_flight")? as usize,
            responses_2xx: u("responses_2xx")?,
            responses_4xx: u("responses_4xx")?,
            shed_quota: u("shed_quota")?,
            shed_overload: u("shed_overload")?,
            responses_5xx: u("responses_5xx")?,
            timeouts_408: u("timeouts_408")?,
            // Absent in bodies from servers predating the counter.
            thread_panics: u("thread_panics").unwrap_or(0),
            p50_ms: f("p50_ms")?,
            p99_ms: f("p99_ms")?,
            p999_ms: f("p999_ms")?,
        })
    }
}

impl std::fmt::Display for NetMetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "conns: {} accepted, {} refused, {} reaped, {} active",
            self.conns_accepted, self.conns_refused, self.conns_reaped, self.active_conns
        )?;
        writeln!(
            f,
            "responses: {} ok, {} 4xx, {} quota-shed, {} overload-shed, {} 5xx, {} timeouts ({} in flight)",
            self.responses_2xx,
            self.responses_4xx,
            self.shed_quota,
            self.shed_overload,
            self.responses_5xx,
            self.timeouts_408,
            self.in_flight
        )?;
        write!(
            f,
            "service latency: p50 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms",
            self.p50_ms, self.p99_ms, self.p999_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_classes_land_in_the_right_counters() {
        let m = NetMetrics::new();
        for s in [200, 200, 400, 404, 408, 429, 503, 500] {
            m.observe_response(s);
        }
        let s = m.snapshot();
        assert_eq!(s.responses_2xx, 2);
        assert_eq!(s.responses_4xx, 2);
        assert_eq!(s.timeouts_408, 1);
        assert_eq!(s.shed_quota, 1);
        assert_eq!(s.shed_overload, 1);
        assert_eq!(s.responses_5xx, 1);
        assert_eq!(s.total_responses(), 8);
    }

    #[test]
    fn percentiles_cover_the_tail() {
        let m = NetMetrics::new();
        for i in 1..=1000u64 {
            m.observe_latency(Duration::from_millis(i));
        }
        let s = m.snapshot();
        assert!(s.p50_ms >= 400.0 && s.p50_ms <= 600.0, "p50 {}", s.p50_ms);
        assert!(s.p99_ms >= 950.0, "p99 {}", s.p99_ms);
        assert!(s.p999_ms >= s.p99_ms, "p999 {} < p99", s.p999_ms);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = NetMetrics::new();
        m.observe_response(200);
        m.observe_latency(Duration::from_millis(3));
        let s = m.snapshot();
        let back = NetMetricsSnapshot::from_json(
            &crate::json::parse(&s.to_json().to_bytes()).expect("valid"),
        )
        .expect("all fields");
        assert_eq!(back, s);
        assert!(!format!("{s}").is_empty());
    }
}
