//! HTTP/1.1 framing: an incremental request-head parser and a response
//! writer, plus the client-side response-head parser.
//!
//! Deliberately small: the service speaks `GET`/`POST`, requires
//! `Content-Length` bodies (no chunked transfer coding), and answers JSON.
//! What it is *not* small about is robustness — the parser is driven by
//! arbitrary network bytes and must classify every malformed input as a
//! typed [`HttpError`] (each carrying the 4xx/5xx it maps to) without
//! panicking, so a garbage byte stream costs the server one error response,
//! never a worker.

use std::fmt;

/// Largest request head (request line + headers) the server accepts.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Request methods the service routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
}

/// A fully parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    pub method: Method,
    /// Raw request target (no query parsing; the service routes on exact
    /// paths).
    pub path: String,
    /// Declared body length; `None` when the header is absent.
    pub content_length: Option<usize>,
    /// `true` unless the client sent `Connection: close` or spoke HTTP/1.0
    /// without `Connection: keep-alive`.
    pub keep_alive: bool,
    /// Bytes of the head including the terminating blank line — the body
    /// starts at this offset in the connection buffer.
    pub head_len: usize,
}

/// Typed framing failures; [`HttpError::status`] gives the response code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// No blank line within [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Anything structurally wrong with the request line or a header → 400.
    Malformed(&'static str),
    /// A method other than GET/POST → 405.
    UnknownMethod,
    /// `Transfer-Encoding` is not supported → 501.
    UnsupportedTransferEncoding,
    /// `Content-Length` missing on a POST → 411.
    LengthRequired,
    /// Declared body larger than the server's limit → 413.
    BodyTooLarge { declared: usize, limit: usize },
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::Malformed(_) => 400,
            HttpError::UnknownMethod => 405,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::HeadTooLarge => write!(f, "request head larger than {MAX_HEAD_BYTES} bytes"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::UnknownMethod => write!(f, "method not allowed (GET/POST only)"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported; send Content-Length")
            }
            HttpError::LengthRequired => write!(f, "POST requires Content-Length"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Incremental head parse over the connection's accumulation buffer.
///
/// `Ok(None)` means "no complete head yet, keep reading" — unless the
/// buffer already exceeds [`MAX_HEAD_BYTES`], which fails fast so a
/// slow-loris drip cannot grow the buffer forever.
pub fn parse_request_head(buf: &[u8], max_body: usize) -> Result<Option<RequestHead>, HttpError> {
    let Some(head_end) = find_blank_line(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method_tok, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(
                "request line is not `METHOD PATH VERSION`",
            ))
        }
    };
    let method = match method_tok {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => return Err(HttpError::UnknownMethod),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("unsupported HTTP version")),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without `:`"));
        };
        let value = value.trim();
        if name.ends_with(' ') || name.ends_with('\t') {
            // Obsolete whitespace before the colon enables request
            // smuggling through lenient parsers; reject it.
            return Err(HttpError::Malformed("whitespace before header colon"));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err(HttpError::Malformed("conflicting Content-Length headers"));
                }
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::UnsupportedTransferEncoding);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    if method == Method::Post {
        match content_length {
            None => return Err(HttpError::LengthRequired),
            Some(n) if n > max_body => {
                return Err(HttpError::BodyTooLarge {
                    declared: n,
                    limit: max_body,
                })
            }
            Some(_) => {}
        }
    }

    Ok(Some(RequestHead {
        method,
        path: path.to_string(),
        content_length,
        keep_alive,
        head_len: head_end + 4,
    }))
}

/// Offset of the `\r\n\r\n` head terminator (start of the blank line).
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one complete JSON response.
pub fn write_response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// A parsed response head (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHead {
    pub status: u16,
    pub content_length: usize,
    pub keep_alive: bool,
    pub head_len: usize,
}

/// Client-side incremental response-head parse; same `Ok(None)` = "need
/// more bytes" convention as [`parse_request_head`].
pub fn parse_response_head(buf: &[u8]) -> Result<Option<ResponseHead>, HttpError> {
    let Some(head_end) = find_blank_line(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::Malformed("unparseable status code"))?,
        _ => return Err(HttpError::Malformed("malformed status line")),
    };
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without `:`"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    Ok(Some(ResponseHead {
        status,
        content_length,
        keep_alive,
        head_len: head_end + 4,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX_BODY: usize = 1024;

    fn parse(s: &str) -> Result<Option<RequestHead>, HttpError> {
        parse_request_head(s.as_bytes(), MAX_BODY)
    }

    #[test]
    fn parses_a_complete_post() {
        let head = parse("POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\ntrailing")
            .expect("valid")
            .expect("complete");
        assert_eq!(head.method, Method::Post);
        assert_eq!(head.path, "/score");
        assert_eq!(head.content_length, Some(12));
        assert!(head.keep_alive);
        // Body starts right after the blank line.
        assert_eq!(
            head.head_len,
            "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n".len()
        );
    }

    #[test]
    fn incomplete_heads_ask_for_more_bytes() {
        assert_eq!(parse("POST /score HTTP/1.1\r\nContent-"), Ok(None));
        assert_eq!(parse(""), Ok(None));
    }

    #[test]
    fn oversized_heads_fail_fast_even_without_a_blank_line() {
        let drip = format!("GET / HTTP/1.1\r\nX: {}", "a".repeat(MAX_HEAD_BYTES));
        assert_eq!(parse(&drip), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn framing_errors_are_typed() {
        for (input, want) in [
            ("FROB / HTTP/1.1\r\n\r\n", HttpError::UnknownMethod),
            (
                "GET / HTTP/2\r\n\r\n",
                HttpError::Malformed("unsupported HTTP version"),
            ),
            (
                "GET /\r\n\r\n",
                HttpError::Malformed("request line is not `METHOD PATH VERSION`"),
            ),
            (
                "GET / HTTP/1.1\r\nbroken\r\n\r\n",
                HttpError::Malformed("header line without `:`"),
            ),
            ("POST / HTTP/1.1\r\n\r\n", HttpError::LengthRequired),
            (
                "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
                HttpError::Malformed("conflicting Content-Length headers"),
            ),
            (
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                HttpError::UnsupportedTransferEncoding,
            ),
            (
                "POST / HTTP/1.1\r\nContent-Length : 5\r\n\r\n",
                HttpError::Malformed("whitespace before header colon"),
            ),
            (
                "POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
                HttpError::BodyTooLarge {
                    declared: 99999,
                    limit: MAX_BODY,
                },
            ),
        ] {
            assert_eq!(parse(input), Err(want.clone()), "{input:?}");
            assert!(want.status() >= 400 && want.status() <= 501);
        }
    }

    #[test]
    fn connection_and_version_drive_keep_alive() {
        let h = |s: &str| parse(s).expect("valid").expect("complete").keep_alive;
        assert!(h("GET / HTTP/1.1\r\n\r\n"));
        assert!(!h("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!h("GET / HTTP/1.0\r\n\r\n"));
        assert!(h("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let body = br#"{"scores":[0.5]}"#;
        let wire = write_response(200, body, true);
        let head = parse_response_head(&wire)
            .expect("valid")
            .expect("complete");
        assert_eq!(head.status, 200);
        assert_eq!(head.content_length, body.len());
        assert!(head.keep_alive);
        assert_eq!(&wire[head.head_len..], body);

        let closed = write_response(503, b"{}", false);
        let head = parse_response_head(&closed)
            .expect("valid")
            .expect("complete");
        assert_eq!(head.status, 503);
        assert!(!head.keep_alive);
    }

    #[test]
    fn every_emitted_status_has_a_reason() {
        for s in [200, 400, 404, 405, 408, 411, 413, 429, 431, 500, 501, 503] {
            assert_ne!(reason(s), "Unknown");
        }
    }
}
