//! # xfraud-netserve — the network-facing scoring service
//!
//! Everything between a TCP socket and the
//! [`ScoringEngine`](xfraud_serve::ScoringEngine): a hand-rolled HTTP/1.1 +
//! JSON front end (the workspace builds offline — no async runtime, no
//! serde), the admission-control stack that keeps it standing under
//! overload, the blocking client, and an open-loop load harness.
//!
//! The layering, bottom up:
//!
//! - [`json`] — a robust, limit-checked JSON reader/writer whose number
//!   handling preserves `f32` bits across the wire (the foundation of the
//!   network-equivalence guarantee);
//! - [`http`] — incremental HTTP/1.1 request/response framing with typed
//!   errors for every way network bytes can be malformed;
//! - [`proto`] — the `/score` request/response schema and error bodies;
//! - [`quota`] — per-tenant token buckets (the `429` arm of admission);
//! - [`server`] — [`NetServer`]: acceptor + nonblocking workers + blocking
//!   scorer crew, in-flight permits (the `503` arm), deadline reaping,
//!   graceful drain, and detector hot-swap via the shared engine handle;
//! - [`client`] — [`ScoreClient`], a blocking keep-alive client;
//! - [`loadgen`] — deterministic open-loop load plans (diurnal curves,
//!   bursts, hot-key skew) and the measurement harness behind
//!   `xfraud-cli load-bench`;
//! - [`metrics`] — the counters `GET /metrics` serves.
//!
//! The contract the test suite pins down: scores fetched over the network
//! are **bit-identical** to `ScoringEngine::score` in-process; malformed
//! bytes cost one typed 4xx response, never a worker or a panic; and no
//! client behaviour — slow-loris drips, half-closed sockets, mid-request
//! disconnects — can leak an in-flight permit.

pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod quota;
pub mod server;

pub use client::{ScoreClient, ScoreOutcome};
pub use error::{ClientError, NetServeError};
pub use loadgen::{arrival_offsets, run_load, LoadConfig, LoadReport, RatePattern};
pub use metrics::{NetMetrics, NetMetricsSnapshot};
pub use proto::{ScoreRequest, ScoreResponse, DEFAULT_TENANT, MAX_IDS_PER_REQUEST};
pub use quota::{QuotaConfig, QuotaSet};
pub use server::{NetServer, ServerConfig};
