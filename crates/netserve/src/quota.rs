//! Per-tenant token-bucket quotas — the 429 arm of admission control.
//!
//! Every `POST /score` names a tenant (defaulting to
//! [`DEFAULT_TENANT`](crate::proto::DEFAULT_TENANT)); each tenant draws one
//! token per request from its own bucket. Buckets refill continuously at
//! `rate_per_sec` up to `burst`, so a tenant can spike to its burst budget
//! and then sustain its refill rate — the classic shape for protecting the
//! shared in-flight pool from one hot integration while letting everyone
//! absorb their own bursts.
//!
//! Time is passed in by the caller (`Instant`s from the worker loop), which
//! keeps this module a pure state machine — trivially testable without
//! sleeping.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Most tenants tracked before the bucket map is reset (an unauthenticated
/// caller can mint tenant names; the map must not grow without bound).
const MAX_TRACKED_TENANTS: usize = 65_536;

/// Quota policy. `rate_per_sec == 0.0` disables quota enforcement entirely
/// (the default — equivalence tests and trusted deployments want every
/// request admitted).
#[derive(Debug, Clone)]
pub struct QuotaConfig {
    /// Steady-state tokens per second granted to each tenant.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst a tenant can spend at once.
    pub burst: f64,
    /// Per-tenant `(tenant, rate_per_sec, burst)` overrides.
    pub overrides: Vec<(String, f64, f64)>,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate_per_sec: 0.0,
            burst: 1.0,
            overrides: Vec::new(),
        }
    }
}

impl QuotaConfig {
    /// Uniform quota for every tenant.
    pub fn per_tenant(rate_per_sec: f64, burst: f64) -> Self {
        QuotaConfig {
            rate_per_sec,
            burst,
            overrides: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.rate_per_sec > 0.0 || !self.overrides.is_empty()
    }

    fn limits_for(&self, tenant: &str) -> (f64, f64) {
        for (name, rate, burst) in &self.overrides {
            if name == tenant {
                return (*rate, *burst);
            }
        }
        (self.rate_per_sec, self.burst)
    }
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The live bucket table.
pub struct QuotaSet {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl QuotaSet {
    pub fn new(cfg: QuotaConfig) -> Self {
        QuotaSet {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `tenant`'s bucket at time `now`. `true` admits
    /// the request; `false` is a 429.
    pub fn admit(&self, tenant: &str, now: Instant) -> bool {
        if !self.cfg.enabled() {
            return true;
        }
        let (rate, burst) = self.cfg.limits_for(tenant);
        if rate <= 0.0 {
            // A tenant explicitly overridden to zero rate is always denied.
            return false;
        }
        let mut buckets = self.buckets.lock();
        if buckets.len() >= MAX_TRACKED_TENANTS && !buckets.contains_key(tenant) {
            // Adversarial tenant-name churn: reset the table instead of
            // growing it. Established tenants refill to burst on their next
            // request, a brief over-admission bounded by one burst each.
            buckets.clear();
        }
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: burst,
            last_refill: now,
        });
        let dt = now.saturating_duration_since(bucket.last_refill);
        bucket.tokens = (bucket.tokens + dt.as_secs_f64() * rate).min(burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long until `tenant` would next be admitted (the `Retry-After`
    /// hint); zero when it would be admitted now.
    pub fn retry_after(&self, tenant: &str, now: Instant) -> Duration {
        if !self.cfg.enabled() {
            return Duration::ZERO;
        }
        let (rate, _) = self.cfg.limits_for(tenant);
        if rate <= 0.0 {
            return Duration::from_secs(u32::MAX as u64);
        }
        let buckets = self.buckets.lock();
        match buckets.get(tenant) {
            Some(b) => {
                let dt = now.saturating_duration_since(b.last_refill);
                let tokens = b.tokens + dt.as_secs_f64() * rate;
                if tokens >= 1.0 {
                    Duration::ZERO
                } else {
                    Duration::from_secs_f64((1.0 - tokens) / rate)
                }
            }
            None => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn disabled_quota_admits_everything() {
        let q = QuotaSet::new(QuotaConfig::default());
        let t0 = Instant::now();
        for i in 0..1000 {
            assert!(q.admit("anyone", at(t0, i)));
        }
    }

    #[test]
    fn burst_then_refill() {
        let q = QuotaSet::new(QuotaConfig::per_tenant(10.0, 3.0));
        let t0 = Instant::now();
        // Burst budget: exactly 3 immediate admits.
        assert!(q.admit("a", t0));
        assert!(q.admit("a", t0));
        assert!(q.admit("a", t0));
        assert!(!q.admit("a", t0));
        assert!(q.retry_after("a", t0) > Duration::ZERO);
        // 100 ms at 10 tokens/s refills one token.
        assert!(q.admit("a", at(t0, 100)));
        assert!(!q.admit("a", at(t0, 101)));
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let q = QuotaSet::new(QuotaConfig::per_tenant(1.0, 1.0));
        let t0 = Instant::now();
        assert!(q.admit("a", t0));
        assert!(!q.admit("a", t0));
        assert!(q.admit("b", t0), "b has its own bucket");
    }

    #[test]
    fn overrides_beat_the_default() {
        let mut cfg = QuotaConfig::per_tenant(100.0, 100.0);
        cfg.overrides.push(("throttled".into(), 0.0, 0.0));
        cfg.overrides.push(("vip".into(), 1000.0, 2.0));
        let q = QuotaSet::new(cfg);
        let t0 = Instant::now();
        assert!(
            !q.admit("throttled", t0),
            "zero-rate override always denies"
        );
        assert!(q.admit("vip", t0));
        assert!(q.admit("vip", t0));
        assert!(!q.admit("vip", t0), "vip burst is 2");
        assert!(q.admit("normal", t0));
    }

    #[test]
    fn refill_caps_at_burst() {
        let q = QuotaSet::new(QuotaConfig::per_tenant(1000.0, 2.0));
        let t0 = Instant::now();
        assert!(q.admit("a", t0));
        // A long quiet period refills to burst (2), not to rate × dt.
        let later = at(t0, 60_000);
        assert!(q.admit("a", later));
        assert!(q.admit("a", later));
        assert!(!q.admit("a", later));
    }

    #[test]
    fn tenant_churn_resets_instead_of_growing() {
        let q = QuotaSet::new(QuotaConfig::per_tenant(1.0, 1.0));
        let t0 = Instant::now();
        for i in 0..(MAX_TRACKED_TENANTS + 10) {
            q.admit(&format!("tenant-{i}"), t0);
        }
        assert!(q.buckets.lock().len() <= MAX_TRACKED_TENANTS);
    }
}
