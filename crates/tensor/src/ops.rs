//! Operation records and their backward rules.
//!
//! Every differentiable op stores just enough (input handles plus small
//! constants/masks) to replay its vector-Jacobian product. Input *values*
//! are read back from the tape, so nothing is cached twice.

use std::rc::Rc;

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

pub(crate) enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    AddRowBroadcast(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    MulColBroadcast(Var, Var),
    Scale(Var, f32),
    AddConst(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    LogEps(Var, f32),
    Dropout(Var, Rc<Vec<f32>>),
    ConcatCols(Vec<Var>),
    GatherRows(Var, Rc<Vec<usize>>),
    SegmentSum(Var, Rc<Vec<usize>>),
    SegmentSoftmax(Var, Rc<Vec<usize>>, usize),
    LayerNorm(Var, Var, Var, f32),
    SumAll(Var),
    MeanAll(Var),
    SoftmaxCrossEntropy(Var, Rc<Vec<usize>>),
}

#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

pub(crate) fn ew_binary(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_vec(a.rows(), a.cols(), data).expect("shape preserved")
}

pub(crate) fn segment_softmax_forward(a: &Tensor, seg: &[usize], n_segments: usize) -> Tensor {
    let cols = a.cols();
    // Pass 1: per-(segment, column) max for numerical stability.
    let mut seg_max = Tensor::full(n_segments, cols, f32::NEG_INFINITY);
    for (r, &s) in seg.iter().enumerate() {
        for (m, &x) in seg_max.row_mut(s).iter_mut().zip(a.row(r)) {
            if x > *m {
                *m = x;
            }
        }
    }
    // Pass 2: exponentials and per-segment sums.
    let mut out = Tensor::zeros(a.rows(), cols);
    let mut seg_sum = Tensor::zeros(n_segments, cols);
    for (r, &s) in seg.iter().enumerate() {
        let maxes = seg_max.row(s).to_vec();
        for ((o, &x), m) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(maxes.iter()) {
            *o = (x - m).exp();
        }
        for (acc, &e) in seg_sum.row_mut(s).iter_mut().zip(out.row(r)) {
            *acc += e;
        }
    }
    // Pass 3: normalise.
    for (r, &s) in seg.iter().enumerate() {
        let sums = seg_sum.row(s).to_vec();
        for (o, sum) in out.row_mut(r).iter_mut().zip(sums.iter()) {
            *o /= sum.max(f32::MIN_POSITIVE);
        }
    }
    out
}

pub(crate) fn layer_norm_forward(x: &Tensor, gain: &Tensor, bias: &Tensor, eps: f32) -> Tensor {
    debug_assert_eq!(gain.shape(), (1, x.cols()));
    debug_assert_eq!(bias.shape(), (1, x.cols()));
    let d = x.cols() as f32;
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let mu = row.iter().sum::<f32>() / d;
        let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d;
        let inv_std = 1.0 / (var + eps).sqrt();
        for (c, (o, &v)) in out.row_mut(r).iter_mut().zip(row).enumerate() {
            *o = gain.get(0, c) * (v - mu) * inv_std + bias.get(0, c);
        }
    }
    out
}

pub(crate) fn cross_entropy_forward(logits: &Tensor, labels: &[usize]) -> f32 {
    let n = logits.rows();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        let row = logits.row(r);
        debug_assert!(y < row.len(), "label out of range");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        total += lse - row[y];
    }
    total / n as f32
}

/// Softmax of each row (non-differentiable helper used by both the forward
/// pass here and prediction code elsewhere).
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in out.row_mut(r).iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in out.row_mut(r) {
            *o /= sum;
        }
    }
    out
}

/// Propagates the gradient of node `i` into its inputs.
pub(crate) fn backward_step(tape: &mut Tape, i: usize) {
    let g = tape.nodes[i].grad.clone().expect("caller checked");
    // Ops are matched by moving small copies of their metadata out to keep the
    // borrow checker happy; input values are re-borrowed immutably per branch.
    match &tape.nodes[i].op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            let (a, b) = (*a, *b);
            let da = g.matmul_nt(&tape.nodes[b.0].value).expect("matmul bwd");
            let db = tape.nodes[a.0].value.matmul_tn(&g).expect("matmul bwd");
            tape.accumulate_grad(a, da);
            tape.accumulate_grad(b, db);
        }
        Op::Add(a, b) => {
            let (a, b) = (*a, *b);
            tape.accumulate_grad(a, g.clone());
            tape.accumulate_grad(b, g);
        }
        Op::AddRowBroadcast(a, b) => {
            let (a, b) = (*a, *b);
            let mut db = Tensor::zeros(1, g.cols());
            for r in 0..g.rows() {
                for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                    *o += x;
                }
            }
            tape.accumulate_grad(a, g);
            tape.accumulate_grad(b, db);
        }
        Op::Sub(a, b) => {
            let (a, b) = (*a, *b);
            tape.accumulate_grad(a, g.clone());
            tape.accumulate_grad(b, g.map(|x| -x));
        }
        Op::Mul(a, b) => {
            let (a, b) = (*a, *b);
            let da = ew_binary(&g, &tape.nodes[b.0].value, |gg, y| gg * y);
            let db = ew_binary(&g, &tape.nodes[a.0].value, |gg, x| gg * x);
            tape.accumulate_grad(a, da);
            tape.accumulate_grad(b, db);
        }
        Op::MulColBroadcast(a, b) => {
            let (a, b) = (*a, *b);
            let va = &tape.nodes[a.0].value;
            let vb = &tape.nodes[b.0].value;
            let mut da = g.clone();
            let mut db = Tensor::zeros(vb.rows(), 1);
            for r in 0..g.rows() {
                let s = vb.get(r, 0);
                let mut acc = 0.0;
                for (o, &x) in da.row_mut(r).iter_mut().zip(va.row(r)) {
                    acc += *o * x;
                    *o *= s;
                }
                db.set(r, 0, acc);
            }
            tape.accumulate_grad(a, da);
            tape.accumulate_grad(b, db);
        }
        Op::Scale(a, s) => {
            let (a, s) = (*a, *s);
            tape.accumulate_grad(a, g.map(|x| x * s));
        }
        Op::AddConst(a) => {
            let a = *a;
            tape.accumulate_grad(a, g);
        }
        Op::Relu(a) => {
            let a = *a;
            let da = ew_binary(
                &g,
                &tape.nodes[a.0].value,
                |gg, x| if x > 0.0 { gg } else { 0.0 },
            );
            tape.accumulate_grad(a, da);
        }
        Op::LeakyRelu(a, slope) => {
            let (a, slope) = (*a, *slope);
            let da = ew_binary(&g, &tape.nodes[a.0].value, |gg, x| {
                if x > 0.0 {
                    gg
                } else {
                    slope * gg
                }
            });
            tape.accumulate_grad(a, da);
        }
        Op::Tanh(a) => {
            let a = *a;
            let da = ew_binary(&g, &tape.nodes[i].value, |gg, y| gg * (1.0 - y * y));
            tape.accumulate_grad(a, da);
        }
        Op::Sigmoid(a) => {
            let a = *a;
            let da = ew_binary(&g, &tape.nodes[i].value, |gg, y| gg * y * (1.0 - y));
            tape.accumulate_grad(a, da);
        }
        Op::LogEps(a, eps) => {
            let (a, eps) = (*a, *eps);
            let da = ew_binary(&g, &tape.nodes[a.0].value, |gg, x| gg / (x + eps));
            tape.accumulate_grad(a, da);
        }
        Op::Dropout(a, mask) => {
            let (a, mask) = (*a, Rc::clone(mask));
            let mut da = g;
            for (o, &m) in da.data_mut().iter_mut().zip(mask.iter()) {
                *o *= m;
            }
            tape.accumulate_grad(a, da);
        }
        Op::ConcatCols(parts) => {
            let parts = parts.clone();
            let mut off = 0;
            for v in parts {
                let cols = tape.nodes[v.0].value.cols();
                let mut dv = Tensor::zeros(g.rows(), cols);
                for r in 0..g.rows() {
                    dv.row_mut(r).copy_from_slice(&g.row(r)[off..off + cols]);
                }
                off += cols;
                tape.accumulate_grad(v, dv);
            }
        }
        Op::GatherRows(a, idx) => {
            let (a, idx) = (*a, Rc::clone(idx));
            let va_rows = tape.nodes[a.0].value.rows();
            let mut da = Tensor::zeros(va_rows, g.cols());
            for (r, &src) in idx.iter().enumerate() {
                for (o, &x) in da.row_mut(src).iter_mut().zip(g.row(r)) {
                    *o += x;
                }
            }
            tape.accumulate_grad(a, da);
        }
        Op::SegmentSum(a, seg) => {
            let (a, seg) = (*a, Rc::clone(seg));
            let mut da = Tensor::zeros(seg.len(), g.cols());
            for (r, &s) in seg.iter().enumerate() {
                da.row_mut(r).copy_from_slice(g.row(s));
            }
            tape.accumulate_grad(a, da);
        }
        Op::SegmentSoftmax(a, seg, n_segments) => {
            let (a, seg, n_segments) = (*a, Rc::clone(seg), *n_segments);
            let y = &tape.nodes[i].value;
            // dx = y * (g - Σ_seg(g ⊙ y)), per segment per column.
            let mut seg_dot = Tensor::zeros(n_segments, g.cols());
            for (r, &s) in seg.iter().enumerate() {
                for ((acc, &gg), &yy) in seg_dot.row_mut(s).iter_mut().zip(g.row(r)).zip(y.row(r)) {
                    *acc += gg * yy;
                }
            }
            let mut da = Tensor::zeros(g.rows(), g.cols());
            for (r, &s) in seg.iter().enumerate() {
                for (c, &dot) in seg_dot.row(s).iter().enumerate() {
                    da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                }
            }
            tape.accumulate_grad(a, da);
        }
        Op::LayerNorm(x, gain, bias, eps) => {
            let (x, gain, bias, eps) = (*x, *gain, *bias, *eps);
            let vx = tape.nodes[x.0].value.clone();
            let vg = tape.nodes[gain.0].value.clone();
            let d = vx.cols() as f32;
            let mut dx = Tensor::zeros(vx.rows(), vx.cols());
            let mut dgain = Tensor::zeros(1, vx.cols());
            let mut dbias = Tensor::zeros(1, vx.cols());
            for r in 0..vx.rows() {
                let row = vx.row(r);
                let mu = row.iter().sum::<f32>() / d;
                let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d;
                let inv_std = 1.0 / (var + eps).sqrt();
                // xhat and dxhat for this row.
                let xhat: Vec<f32> = row.iter().map(|&v| (v - mu) * inv_std).collect();
                let dxhat: Vec<f32> = (0..row.len()).map(|c| g.get(r, c) * vg.get(0, c)).collect();
                let sum_dxhat: f32 = dxhat.iter().sum();
                let sum_dxhat_xhat: f32 = dxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum();
                for c in 0..row.len() {
                    let v = inv_std * (dxhat[c] - sum_dxhat / d - xhat[c] * sum_dxhat_xhat / d);
                    dx.set(r, c, v);
                    dgain.set(0, c, dgain.get(0, c) + g.get(r, c) * xhat[c]);
                    dbias.set(0, c, dbias.get(0, c) + g.get(r, c));
                }
            }
            tape.accumulate_grad(x, dx);
            tape.accumulate_grad(gain, dgain);
            tape.accumulate_grad(bias, dbias);
        }
        Op::SumAll(a) => {
            let a = *a;
            let shape = tape.nodes[a.0].value.shape();
            let da = Tensor::full(shape.0, shape.1, g.item());
            tape.accumulate_grad(a, da);
        }
        Op::MeanAll(a) => {
            let a = *a;
            let shape = tape.nodes[a.0].value.shape();
            let n = (shape.0 * shape.1) as f32;
            let da = Tensor::full(shape.0, shape.1, g.item() / n.max(1.0));
            tape.accumulate_grad(a, da);
        }
        Op::SoftmaxCrossEntropy(logits, labels) => {
            let (logits, labels) = (*logits, Rc::clone(labels));
            let vl = &tape.nodes[logits.0].value;
            let n = vl.rows() as f32;
            let mut da = softmax_rows(vl);
            for (r, &y) in labels.iter().enumerate() {
                da.set(r, y, da.get(r, y) - 1.0);
            }
            da.scale_assign(g.item() / n.max(1.0));
            tape.accumulate_grad(logits, da);
        }
    }
}
