//! Dense 2-D `f32` tensors and a reverse-mode automatic-differentiation tape.
//!
//! This crate is the numerical substrate of the xFraud reproduction. The
//! paper's detector (a heterogeneous graph transformer), its baselines (GAT,
//! GEM) and the GNNExplainer all train by gradient descent; since no mature
//! Rust autodiff stack supports the segment operations heterogeneous GNNs
//! need, we implement one from scratch:
//!
//! * [`Tensor`] — a row-major `(rows, cols)` matrix of `f32`.
//! * [`Tape`] — a Wengert list. Every differentiable operation appends a node
//!   recording its inputs; [`Tape::backward`] walks the list in reverse and
//!   accumulates gradients.
//! * GNN-specific primitives: [`Tape::gather_rows`] (edge endpoint lookup),
//!   [`Tape::segment_softmax`] (per-target attention normalisation, eq. 9 of
//!   the paper) and [`Tape::segment_sum`] (message aggregation, eq. 1).
//!
//! Gradients of every op are validated against central finite differences in
//! the unit and property tests.
//!
//! # Example
//!
//! ```
//! use xfraud_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), true);
//! let w = tape.leaf(Tensor::from_rows(&[&[0.5], &[-0.5]]), true);
//! let y = tape.matmul(x, w);
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! let gw = tape.grad(w).unwrap();
//! assert_eq!(gw.get(0, 0), 4.0); // d(sum)/dw0 = x00 + x10
//! ```

mod error;
mod ops;
mod tape;
mod tensor;

pub use error::TensorError;
pub use ops::softmax_rows;
pub use tape::{Tape, Var};
pub use tensor::Tensor;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;
