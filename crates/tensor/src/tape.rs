use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::ops::{self, Op};
use crate::tensor::{matmul_into, Tensor};

/// Handle to a node on a [`Tape`].
///
/// `Var`s are only meaningful for the tape that produced them; mixing handles
/// across tapes is a programmer error caught by `debug_assert`s on indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub op: Op,
}

/// A reverse-mode autodiff tape (Wengert list).
///
/// One tape is built per forward pass; [`Tape::backward`] then walks the list
/// once in reverse, accumulating gradients into every node. Parameters live
/// *outside* the tape (see `xfraud-nn`) and are re-inserted as leaves each
/// step, so the tape can simply be dropped after the optimizer update.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Inserts a leaf tensor. `requires_grad` is advisory: gradients are
    /// computed for all reachable nodes, but leaves inserted with `false`
    /// skip gradient allocation when nothing flows into them.
    pub fn leaf(&mut self, value: Tensor, _requires_grad: bool) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient accumulated into a node by the last [`Tape::backward`].
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    // ---- differentiable ops -------------------------------------------------

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        debug_assert_eq!(va.cols(), vb.rows(), "matmul shape mismatch");
        let mut out = Tensor::zeros(va.rows(), vb.cols());
        matmul_into(va, vb, &mut out);
        self.push(out, Op::MatMul(a, b))
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let out = ops::ew_binary(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x + y);
        self.push(out, Op::Add(a, b))
    }

    /// `a [n,d] + b [1,d]`, broadcasting `b` over rows (bias add).
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        debug_assert_eq!(vb.rows(), 1);
        debug_assert_eq!(va.cols(), vb.cols());
        let mut out = va.clone();
        for r in 0..out.rows() {
            for (o, &x) in out.row_mut(r).iter_mut().zip(vb.row(0)) {
                *o += x;
            }
        }
        self.push(out, Op::AddRowBroadcast(a, b))
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let out = ops::ew_binary(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x - y);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let out = ops::ew_binary(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x * y);
        self.push(out, Op::Mul(a, b))
    }

    /// `a [n,d] * b [n,1]`, broadcasting `b` over columns.
    ///
    /// This is how per-edge attention scalars and explainer edge masks are
    /// applied to per-edge message rows.
    pub fn mul_col(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        debug_assert_eq!(vb.cols(), 1);
        debug_assert_eq!(va.rows(), vb.rows());
        let mut out = va.clone();
        for r in 0..out.rows() {
            let s = vb.get(r, 0);
            for o in out.row_mut(r) {
                *o *= s;
            }
        }
        self.push(out, Op::MulColBroadcast(a, b))
    }

    /// `a * s` for a scalar constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let out = self.nodes[a.0].value.map(|x| x * s);
        self.push(out, Op::Scale(a, s))
    }

    /// `a + c` for a scalar constant.
    pub fn add_const(&mut self, a: Var, c: f32) -> Var {
        let out = self.nodes[a.0].value.map(|x| x + c);
        self.push(out, Op::AddConst(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(out, Op::Relu(a))
    }

    /// Leaky ReLU with the given negative slope (GAT uses 0.2).
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let out = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { slope * x });
        self.push(out, Op::LeakyRelu(a, slope))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.map(f32::tanh);
        self.push(out, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.nodes[a.0].value.map(ops::sigmoid);
        self.push(out, Op::Sigmoid(a))
    }

    /// `ln(a + eps)` — used by the explainer's entropy regularisers.
    pub fn log_eps(&mut self, a: Var, eps: f32) -> Var {
        let out = self.nodes[a.0].value.map(|x| (x + eps).ln());
        self.push(out, Op::LogEps(a, eps))
    }

    /// Inverted dropout: each element is zeroed with probability `p` and the
    /// survivors are scaled by `1/(1-p)`. The mask is sampled here so the
    /// backward pass reuses it exactly.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut StdRng) -> Var {
        debug_assert!((0.0..1.0).contains(&p));
        if p == 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let va = &self.nodes[a.0].value;
        let mask: Rc<Vec<f32>> = Rc::new(
            (0..va.len())
                .map(|_| {
                    if rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        let mut out = va.clone();
        for (o, &m) in out.data_mut().iter_mut().zip(mask.iter()) {
            *o *= m;
        }
        self.push(out, Op::Dropout(a, mask))
    }

    /// Column-wise concatenation of several matrices with equal row counts.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|v| self.nodes[v.0].value.cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut off = 0;
        for v in parts {
            let t = &self.nodes[v.0].value;
            debug_assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                let src = t.row(r);
                out.row_mut(r)[off..off + src.len()].copy_from_slice(src);
            }
            off += t.cols();
        }
        self.push(out, Op::ConcatCols(parts.to_vec()))
    }

    /// Row gather: `out[i] = a[idx[i]]`. Backward scatter-adds.
    ///
    /// This is the edge-endpoint lookup of message passing: `idx` holds the
    /// source (or target) node id of every edge.
    pub fn gather_rows(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var {
        let va = &self.nodes[a.0].value;
        let mut out = Tensor::zeros(idx.len(), va.cols());
        for (r, &i) in idx.iter().enumerate() {
            debug_assert!(i < va.rows(), "gather index out of bounds");
            out.row_mut(r).copy_from_slice(va.row(i));
        }
        self.push(out, Op::GatherRows(a, idx))
    }

    /// Segment sum: `out[s] = Σ_{i: seg[i]==s} a[i]` with `n_segments` output
    /// rows. This is the `Aggregate` of eq. 1 — summing messages into their
    /// target nodes.
    pub fn segment_sum(&mut self, a: Var, seg: Rc<Vec<usize>>, n_segments: usize) -> Var {
        let va = &self.nodes[a.0].value;
        debug_assert_eq!(va.rows(), seg.len());
        let mut out = Tensor::zeros(n_segments, va.cols());
        for (r, &s) in seg.iter().enumerate() {
            debug_assert!(s < n_segments, "segment id out of bounds");
            for (o, &x) in out.row_mut(s).iter_mut().zip(va.row(r)) {
                *o += x;
            }
        }
        self.push(out, Op::SegmentSum(a, seg))
    }

    /// Per-segment, per-column softmax (eq. 9): within each segment `s`, each
    /// column of `a` is normalised as `exp(x - max) / Σ exp`. Rows whose
    /// segment has a single member become exactly 1.
    pub fn segment_softmax(&mut self, a: Var, seg: Rc<Vec<usize>>, n_segments: usize) -> Var {
        let va = &self.nodes[a.0].value;
        debug_assert_eq!(va.rows(), seg.len());
        let out = ops::segment_softmax_forward(va, &seg, n_segments);
        self.push(out, Op::SegmentSoftmax(a, seg, n_segments))
    }

    /// Row-wise layer normalisation with learnable gain `[1,d]` and bias
    /// `[1,d]`: `y = gain * (x - μ)/σ + bias`.
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var, eps: f32) -> Var {
        let vx = &self.nodes[x.0].value;
        let vg = &self.nodes[gain.0].value;
        let vb = &self.nodes[bias.0].value;
        let out = ops::layer_norm_forward(vx, vg, vb, eps);
        self.push(out, Op::LayerNorm(x, gain, bias, eps))
    }

    /// Sum of all elements, as a `[1,1]` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        self.push(Tensor::scalar(s), Op::SumAll(a))
    }

    /// Mean of all elements, as a `[1,1]` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = self.nodes[a.0].value.mean();
        self.push(Tensor::scalar(m), Op::MeanAll(a))
    }

    /// Mean softmax cross-entropy of row logits against integer labels.
    ///
    /// `logits` is `[n, k]`; `labels[i] ∈ 0..k`. Output is a `[1,1]` scalar.
    /// This is the detector loss (eq. 11 of the appendix).
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: Rc<Vec<usize>>) -> Var {
        let vl = &self.nodes[logits.0].value;
        debug_assert_eq!(vl.rows(), labels.len());
        let loss = ops::cross_entropy_forward(vl, &labels);
        self.push(
            Tensor::scalar(loss),
            Op::SoftmaxCrossEntropy(logits, labels),
        )
    }

    // ---- backward -----------------------------------------------------------

    /// Runs reverse-mode accumulation from a scalar `[1,1]` node.
    ///
    /// # Panics
    /// Panics if `seed` is not a scalar.
    pub fn backward(&mut self, seed: Var) {
        assert_eq!(
            self.nodes[seed.0].value.shape(),
            (1, 1),
            "backward seed must be a scalar loss"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[seed.0].grad = Some(Tensor::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].grad.is_none() {
                continue;
            }
            ops::backward_step(self, i);
        }
    }

    pub(crate) fn accumulate_grad(&mut self, v: Var, delta: Tensor) {
        match &mut self.nodes[v.0].grad {
            Some(g) => {
                g.add_assign(&delta).expect("gradient shape mismatch");
            }
            slot @ None => *slot = Some(delta),
        }
    }
}
