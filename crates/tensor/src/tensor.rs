use rand::rngs::StdRng;
use rand::Rng;

use crate::{Result, TensorError};

/// A dense row-major matrix of `f32`.
///
/// All workspace math is 2-D: node feature matrices `[n, d]`, per-edge score
/// matrices `[e, heads]`, parameter matrices `[d_in, d_out]`, and scalars as
/// `[1, 1]`. Row-major layout keeps per-node feature rows contiguous, which
/// is what the gather/segment kernels iterate over.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `1 x 1` tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor::full(1, 1, value)
    }

    /// Builds a `len x 1` column vector — infallible, since the shape is
    /// derived from the buffer instead of validated against it.
    pub fn column(data: Vec<f32>) -> Self {
        Tensor {
            rows: data.len(),
            cols: 1,
            data,
        }
    }

    /// Builds a tensor from a row-major buffer, validating the length.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Builds a tensor from row slices; all rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths (test/bench convenience only).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Tensor::from_rows");
            data.extend_from_slice(row);
        }
        Tensor {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialisation for a `[fan_in, fan_out]` weight.
    pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The value of the single element of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A borrowed view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ rhs`, validated.
    ///
    /// Uses an `i-k-j` loop order so the inner loop streams over contiguous
    /// rows of both the output and `rhs` (cache friendly; see the Rust
    /// Performance Book's advice on iteration order). At reproduction scale
    /// (hidden dims of a few hundred) this is within a small factor of BLAS.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        matmul_into(self, rhs, &mut out);
        Ok(out)
    }

    /// `self^T @ rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        // out[i][j] = sum_k self[k][i] * rhs[k][j]
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `self @ rhs^T` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// The materialised transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place addition; shapes must match.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaling by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Fills the tensor with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Maximum absolute elementwise difference to another tensor of the same
    /// shape. Used by the distributed-training tests to assert replica
    /// weight equality after a DDP step.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// `out += a @ b` workhorse shared by forward and backward passes.
pub(crate) fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert_eq!(out.rows, a.rows);
    debug_assert_eq!(out.cols, b.cols);
    let n = b.cols;
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b.data[k * n..(k + 1) * n];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_is_an_error() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(4, 5, -1.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn glorot_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::glorot_uniform(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn row_views_are_contiguous() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn scalar_item_roundtrip() {
        assert_eq!(Tensor::scalar(4.5).item(), 4.5);
    }
}
