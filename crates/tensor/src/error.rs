use std::fmt;

/// Errors surfaced by tensor construction and shape-checked operations.
///
/// Internal hot paths use `debug_assert!` for shape invariants; the typed
/// error is returned on public API boundaries where caller input (e.g. a
/// feature matrix loaded from a KV store) may be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the attempted operation.
    ShapeMismatch {
        op: &'static str,
        lhs: (usize, usize),
        rhs: (usize, usize),
    },
    /// The provided buffer length does not match `rows * cols`.
    BadBuffer { expected: usize, actual: usize },
    /// An index was out of bounds.
    OutOfBounds { index: usize, len: usize },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BadBuffer { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape ({expected} expected)"
                )
            }
            TensorError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
