//! Finite-difference gradient checks for every autodiff op.
//!
//! Each check builds a small computation whose output is reduced to a scalar,
//! runs `backward`, and compares the analytic gradient of one leaf against a
//! central finite difference. f32 plus a step of 1e-2 gives ~1e-3 accuracy,
//! so tolerances are loose but far tighter than any plausible sign/shape bug.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use xfraud_tensor::{Tape, Tensor, Var};

/// Numerically estimates d(scalar f(x))/dx element by element.
fn finite_diff(x: &Tensor, f: &dyn Fn(&Tensor) -> f32) -> Tensor {
    let h = 1e-2_f32;
    let mut grad = Tensor::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let mut plus = x.clone();
            plus.set(r, c, x.get(r, c) + h);
            let mut minus = x.clone();
            minus.set(r, c, x.get(r, c) - h);
            grad.set(r, c, (f(&plus) - f(&minus)) / (2.0 * h));
        }
    }
    grad
}

/// Runs a gradcheck: `build` maps (tape, leaf var) to a scalar output var.
fn check(x0: Tensor, build: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
    let forward = |x: &Tensor| -> f32 {
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone(), true);
        let out = build(&mut tape, v);
        tape.value(out).item()
    };
    let numeric = finite_diff(&x0, &forward);

    let mut tape = Tape::new();
    let v = tape.leaf(x0, true);
    let out = build(&mut tape, v);
    tape.backward(out);
    let analytic = tape.grad(v).expect("gradient must reach the leaf");

    let diff = analytic.max_abs_diff(&numeric);
    assert!(
        diff < tol,
        "gradcheck failed: max |analytic - numeric| = {diff}\nanalytic={analytic:?}\nnumeric={numeric:?}"
    );
}

fn rand_t(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

#[test]
fn grad_matmul_lhs() {
    let w = rand_t(3, 2, 10);
    check(
        rand_t(4, 3, 11),
        move |t, x| {
            let wv = t.leaf(w.clone(), false);
            let y = t.matmul(x, wv);
            t.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn grad_matmul_rhs() {
    let a = rand_t(4, 3, 12);
    check(
        rand_t(3, 2, 13),
        move |t, x| {
            let av = t.leaf(a.clone(), false);
            let y = t.matmul(av, x);
            t.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn grad_add_and_sub() {
    let b = rand_t(3, 3, 14);
    check(
        rand_t(3, 3, 15),
        move |t, x| {
            let bv = t.leaf(b.clone(), false);
            let s = t.add(x, bv);
            let d = t.sub(s, x); // cancels x once; still depends on x via s
            let m = t.mul(d, s);
            t.sum_all(m)
        },
        1e-2,
    );
}

#[test]
fn grad_add_row_broadcast_bias() {
    check(
        rand_t(1, 4, 16),
        |t, bias| {
            let a = t.leaf(rand_t(5, 4, 17), false);
            let y = t.add_row(a, bias);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        1e-2,
    );
}

#[test]
fn grad_mul_col_broadcast_both_sides() {
    // Gradient w.r.t. the [n,1] column (attention scalar / edge mask path).
    check(
        rand_t(5, 1, 18),
        |t, col| {
            let a = t.leaf(rand_t(5, 3, 19), false);
            let y = t.mul_col(a, col);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        },
        1e-2,
    );
    // Gradient w.r.t. the [n,d] matrix.
    check(
        rand_t(5, 3, 20),
        |t, a| {
            let col = t.leaf(rand_t(5, 1, 21), false);
            let y = t.mul_col(a, col);
            t.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn grad_scale_add_const() {
    check(
        rand_t(2, 3, 22),
        |t, x| {
            let y = t.scale(x, -2.5);
            let z = t.add_const(y, 0.7);
            let m = t.mul(z, z);
            t.mean_all(m)
        },
        1e-2,
    );
}

#[test]
fn grad_activations() {
    for (i, f) in ["relu", "leaky", "tanh", "sigmoid"].iter().enumerate() {
        let f = *f;
        check(
            // Shift away from 0 so relu's kink doesn't poison finite diffs.
            rand_t(3, 3, 23 + i as u64).map(|v| v + if v >= 0.0 { 0.2 } else { -0.2 }),
            move |t, x| {
                let y = match f {
                    "relu" => t.relu(x),
                    "leaky" => t.leaky_relu(x, 0.2),
                    "tanh" => t.tanh(x),
                    _ => t.sigmoid(x),
                };
                t.sum_all(y)
            },
            2e-2,
        );
    }
}

#[test]
fn grad_log_eps() {
    check(
        rand_t(3, 3, 30).map(|v| v.abs() + 0.3),
        |t, x| {
            let y = t.log_eps(x, 1e-6);
            t.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn grad_concat_cols() {
    check(
        rand_t(4, 2, 31),
        |t, x| {
            let other = t.leaf(rand_t(4, 3, 32), false);
            let y = t.concat_cols(&[x, other, x]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_gather_rows_with_repeats() {
    let idx = Rc::new(vec![0usize, 2, 2, 1, 0]);
    check(
        rand_t(3, 3, 33),
        move |t, x| {
            let y = t.gather_rows(x, Rc::clone(&idx));
            let sq = t.mul(y, y);
            t.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_segment_sum() {
    let seg = Rc::new(vec![0usize, 1, 0, 2, 1]);
    check(
        rand_t(5, 2, 34),
        move |t, x| {
            let y = t.segment_sum(x, Rc::clone(&seg), 3);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_segment_softmax() {
    let seg = Rc::new(vec![0usize, 0, 1, 1, 1, 2]);
    let w = rand_t(6, 2, 36);
    check(
        rand_t(6, 2, 35),
        move |t, x| {
            let y = t.segment_softmax(x, Rc::clone(&seg), 3);
            // Weight the softmax outputs so the gradient is non-trivial.
            let wv = t.leaf(w.clone(), false);
            let m = t.mul(y, wv);
            t.sum_all(m)
        },
        2e-2,
    );
}

#[test]
fn grad_layer_norm_input_gain_bias() {
    let gain = rand_t(1, 4, 37).map(|v| v + 1.5);
    let bias = rand_t(1, 4, 38);
    // Input gradient.
    {
        let (g, b) = (gain.clone(), bias.clone());
        check(
            rand_t(3, 4, 39),
            move |t, x| {
                let gv = t.leaf(g.clone(), false);
                let bv = t.leaf(b.clone(), false);
                let y = t.layer_norm(x, gv, bv, 1e-5);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            3e-2,
        );
    }
    // Gain gradient.
    {
        let x0 = rand_t(3, 4, 40);
        let b = bias.clone();
        check(
            gain.clone(),
            move |t, gv| {
                let xv = t.leaf(x0.clone(), false);
                let bv = t.leaf(b.clone(), false);
                let y = t.layer_norm(xv, gv, bv, 1e-5);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            2e-2,
        );
    }
    // Bias gradient.
    {
        let x0 = rand_t(3, 4, 41);
        check(
            bias,
            move |t, bv| {
                let xv = t.leaf(x0.clone(), false);
                let gv = t.leaf(gain.clone(), false);
                let y = t.layer_norm(xv, gv, bv, 1e-5);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            2e-2,
        );
    }
}

#[test]
fn grad_softmax_cross_entropy() {
    let labels = Rc::new(vec![0usize, 1, 1, 0]);
    check(
        rand_t(4, 2, 42),
        move |t, logits| t.softmax_cross_entropy(logits, Rc::clone(&labels)),
        1e-2,
    );
}

#[test]
fn grad_mean_all() {
    check(
        rand_t(4, 5, 43),
        |t, x| {
            let sq = t.mul(x, x);
            t.mean_all(sq)
        },
        1e-2,
    );
}

#[test]
fn grad_composite_mini_mlp() {
    // Leaf → linear → layernorm-free MLP → CE: exercises accumulation across
    // a realistic multi-op chain like the detector head.
    let labels = Rc::new(vec![1usize, 0, 1]);
    let w1 = rand_t(4, 6, 44);
    let w2 = rand_t(6, 2, 45);
    check(
        rand_t(3, 4, 46),
        move |t, x| {
            let w1v = t.leaf(w1.clone(), false);
            let w2v = t.leaf(w2.clone(), false);
            let h = t.matmul(x, w1v);
            let h = t.relu(h);
            let logits = t.matmul(h, w2v);
            t.softmax_cross_entropy(logits, Rc::clone(&labels))
        },
        2e-2,
    );
}

#[test]
fn dropout_zero_p_is_identity() {
    let mut rng = StdRng::seed_from_u64(47);
    let mut tape = Tape::new();
    let x = tape.leaf(rand_t(3, 3, 48), true);
    let y = tape.dropout(x, 0.0, &mut rng);
    assert_eq!(x, y, "p=0 dropout must be a no-op returning the same var");
}

#[test]
fn dropout_mask_is_reused_in_backward() {
    // E[output] preserved and gradient equals the scaled mask.
    let mut rng = StdRng::seed_from_u64(49);
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::full(1, 1000, 1.0), true);
    let y = tape.dropout(x, 0.4, &mut rng);
    let s = tape.sum_all(y);
    tape.backward(s);
    let g = tape.grad(x).unwrap();
    // Gradient elements are exactly 0 or 1/0.6.
    for &v in g.data() {
        assert!(v == 0.0 || (v - 1.0 / 0.6).abs() < 1e-6);
    }
    // Value and grad agree elementwise (linear op).
    assert!(tape.value(y).max_abs_diff(g) < 1e-6);
    // Keep rate is near 60%.
    let kept = g.data().iter().filter(|&&v| v > 0.0).count();
    assert!((500..700).contains(&kept), "kept {kept} of 1000 at p=0.4");
}

#[test]
fn segment_softmax_rows_sum_to_one_per_segment() {
    let seg = Rc::new(vec![0usize, 0, 0, 1, 2, 2]);
    let mut tape = Tape::new();
    let x = tape.leaf(rand_t(6, 4, 50), false);
    let y = tape.segment_softmax(x, Rc::clone(&seg), 3);
    let v = tape.value(y);
    for c in 0..4 {
        let mut sums = [0.0f32; 3];
        for (r, &s) in seg.iter().enumerate() {
            sums[s] += v.get(r, c);
        }
        for s in sums {
            assert!((s - 1.0).abs() < 1e-5, "segment softmax column sums to {s}");
        }
    }
}
