//! Public-API coverage beyond the gradient checks: constructors, error
//! values, non-differentiable helpers, tape bookkeeping.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use xfraud_tensor::{softmax_rows, Tape, Tensor, TensorError};

#[test]
fn error_display_messages_are_actionable() {
    let e = TensorError::ShapeMismatch {
        op: "matmul",
        lhs: (2, 3),
        rhs: (4, 5),
    };
    let s = e.to_string();
    assert!(
        s.contains("matmul") && s.contains("2x3") && s.contains("4x5"),
        "{s}"
    );
    let e = TensorError::BadBuffer {
        expected: 6,
        actual: 5,
    };
    assert!(e.to_string().contains("6"), "{e}");
    let e = TensorError::OutOfBounds { index: 9, len: 3 };
    assert!(e.to_string().contains("9"), "{e}");
}

#[test]
fn map_and_scale_and_norms() {
    let t = Tensor::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
    let abs = t.map(f32::abs);
    assert_eq!(abs.row(1), &[3.0, 4.0]);
    assert_eq!(t.norm_sq(), 1.0 + 4.0 + 9.0 + 16.0);
    assert_eq!(t.sum(), -2.0);
    assert_eq!(t.mean(), -0.5);
    let mut z = t.clone();
    z.fill_zero();
    assert_eq!(z.sum(), 0.0);
    let mut s = t;
    s.scale_assign(2.0);
    assert_eq!(s.get(0, 1), -4.0);
}

#[test]
fn empty_tensor_edge_cases() {
    let t = Tensor::zeros(0, 3);
    assert!(t.is_empty());
    assert_eq!(t.mean(), 0.0);
    assert_eq!(t.sum(), 0.0);
}

#[test]
fn softmax_rows_sums_to_one_and_is_shift_invariant() {
    let logits = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
    let p = softmax_rows(&logits);
    for r in 0..2 {
        let s: f32 = p.row(r).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }
    // Uniform logits → uniform probabilities, even at large magnitude.
    assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    // Shift invariance.
    let shifted = logits.map(|x| x + 50.0);
    assert!(softmax_rows(&shifted).max_abs_diff(&p) < 1e-6);
}

#[test]
fn tape_bookkeeping() {
    let mut tape = Tape::new();
    assert!(tape.is_empty());
    let a = tape.leaf(Tensor::scalar(1.0), true);
    let b = tape.scale(a, 2.0);
    let _c = tape.add(a, b);
    assert_eq!(tape.len(), 3);
    // grad is None before backward.
    assert!(tape.grad(a).is_none());
}

#[test]
fn backward_can_run_twice_with_reset_gradients() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(3.0), true);
    let y = tape.mul(x, x);
    let loss = tape.sum_all(y);
    tape.backward(loss);
    assert_eq!(tape.grad(x).unwrap().item(), 6.0);
    // Second backward must not accumulate on top of the first.
    tape.backward(loss);
    assert_eq!(tape.grad(x).unwrap().item(), 6.0);
}

#[test]
#[should_panic(expected = "scalar")]
fn backward_from_non_scalar_panics() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::zeros(2, 2), true);
    tape.backward(x);
}

#[test]
fn segment_sum_with_empty_segments_produces_zero_rows() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[1.0], &[2.0]]), false);
    // Segments 0 and 3 used; 1 and 2 empty.
    let y = tape.segment_sum(x, Rc::new(vec![0, 3]), 4);
    let v = tape.value(y);
    assert_eq!(v.shape(), (4, 1));
    assert_eq!(v.get(0, 0), 1.0);
    assert_eq!(v.get(1, 0), 0.0);
    assert_eq!(v.get(2, 0), 0.0);
    assert_eq!(v.get(3, 0), 2.0);
}

#[test]
fn concat_cols_of_one_tensor_is_identity() {
    let mut tape = Tape::new();
    let x0 = Tensor::from_rows(&[&[1.0, 2.0]]);
    let x = tape.leaf(x0.clone(), false);
    let y = tape.concat_cols(&[x]);
    assert_eq!(tape.value(y), &x0);
}

#[test]
fn gather_rows_empty_index_list() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0]]), true);
    let y = tape.gather_rows(x, Rc::new(Vec::new()));
    assert_eq!(tape.value(y).shape(), (0, 2));
}

#[test]
fn rand_uniform_respects_bounds_and_seed() {
    let mut a = StdRng::seed_from_u64(5);
    let mut b = StdRng::seed_from_u64(5);
    let ta = Tensor::rand_uniform(10, 10, -0.25, 0.75, &mut a);
    let tb = Tensor::rand_uniform(10, 10, -0.25, 0.75, &mut b);
    assert_eq!(ta, tb);
    assert!(ta.data().iter().all(|&x| (-0.25..0.75).contains(&x)));
}

#[test]
fn dropout_keeps_expectation() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::full(1, 4000, 1.0), false);
    let y = tape.dropout(x, 0.25, &mut rng);
    let mean = tape.value(y).mean();
    assert!(
        (mean - 1.0).abs() < 0.05,
        "inverted dropout must preserve E[x]: {mean}"
    );
}
