//! `xfraud-cli` — run the pipeline from the command line.
//!
//! ```text
//! xfraud-cli train       [--preset small|large|xlarge] [--epochs N] [--seed S] [--workers W]
//! xfraud-cli explain     [--preset ...] [--epochs N] [--seed S] [--top K] [--workers W]
//! xfraud-cli stats       [--preset ...]
//! xfraud-cli serve-bench [--preset ...] [--epochs N] [--seed S] [--callers C]
//!                        [--requests R] [--batch B] [--no-cache]
//! xfraud-cli load-bench  [--preset ...] [--epochs N] [--seed S] [--rate R]
//!                        [--duration-secs D] [--pattern constant|diurnal|bursts]
//!                        [--connections C] [--batch B] [--smoke]
//! xfraud-cli datagen     --out-dir DIR [--nodes N] [--seed S] [--dim D]
//! xfraud-cli diskstore-bench [--out-dir DIR] [--nodes N] [--dim D] [--workers W]
//! ```
//!
//! `train` reports held-out metrics; `explain` additionally explains the
//! highest-scoring held-out fraud; `stats` prints dataset statistics;
//! `serve-bench` trains a pipeline, freezes it behind a
//! [`xfraud::serve::ScoringEngine`] and hammers it from `--callers`
//! concurrent threads, reporting throughput against the sequential
//! no-engine baseline plus the engine's own metrics snapshot;
//! `stream-bench` streams a fresh transaction log into the live engine —
//! every arrival is WAL-appended, applied as graph events and scored the
//! moment it lands — reporting WAL/ingest throughput (events/s) and
//! score-on-arrival p50/p99 latency, then verifies compaction leaves
//! scores bit-identical;
//! `load-bench` boots the network-facing scoring service
//! ([`xfraud::netserve::NetServer`]) on loopback and drives it with
//! **open-loop** arrivals: it calibrates closed-loop capacity, then offers
//! 0.5×, 1× and 2× that rate (latency measured from the *scheduled*
//! arrival), reporting goodput vs offered load, shed rate and p50/p99/p999
//! per step. `--smoke` instead runs one short constant-rate pass with
//! hard assertions (zero 5xx, zero transport errors, nonzero goodput,
//! wire scores bit-identical to the engine) and exits non-zero on any
//! violation — the CI gate.
//!
//! `datagen` streams a scaled eBay-large world straight to disk in bounded
//! memory — events log, graph topology and a disk-backed feature store —
//! sized so the surviving graph lands near `--nodes`; `diskstore-bench`
//! measures the out-of-core read path (sequential scan, random gets,
//! parallel feature loaders) against the in-RAM sharded store, reporting
//! resident-set size so the bounded-memory claim is checkable.
//!
//! Pipeline failures (bad flags, out-of-range config, unknown ids) print a
//! one-line diagnostic and exit non-zero — no panics, no backtraces.

use std::time::Instant;

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::explain::{ExplainerConfig, GnnExplainer};
use xfraud::gnn::TrainConfig;
use xfraud::hetgraph::NodeId;
use xfraud::{Pipeline, PipelineConfig};

struct Args {
    command: String,
    preset: DatasetPreset,
    epochs: usize,
    seed: u64,
    top: usize,
    /// Batch-engine sampling threads; results are identical for any value.
    workers: usize,
    /// serve-bench: concurrent caller threads.
    callers: usize,
    /// serve-bench: `score` calls issued per caller.
    requests: usize,
    /// serve-bench: transaction ids per `score` call.
    batch: usize,
    /// serve-bench: disable both cache tiers (the cold baseline).
    no_cache: bool,
    /// stream-bench: transactions streamed into the live graph.
    stream_txns: usize,
    /// stream-bench: WAL shard count.
    wal_shards: usize,
    /// load-bench: offered rate at 1× (req/s); 0 = calibrate closed-loop.
    rate: f64,
    /// load-bench: seconds per load step.
    duration_secs: u64,
    /// load-bench: offered-rate curve shape.
    pattern: String,
    /// load-bench: sender connections.
    connections: usize,
    /// load-bench: single short pass with hard pass/fail assertions.
    smoke: bool,
    /// datagen / diskstore-bench: dataset directory ("" = temp).
    out_dir: String,
    /// datagen: target graph size; diskstore-bench: feature rows.
    nodes: usize,
    /// datagen / diskstore-bench: feature width (0 = preset default).
    dim: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        preset: DatasetPreset::EbaySmallSim,
        epochs: 6,
        seed: 7,
        top: 5,
        workers: xfraud::gnn::default_num_workers(),
        callers: 8,
        requests: 40,
        batch: 8,
        no_cache: false,
        stream_txns: 300,
        wal_shards: 4,
        rate: 0.0,
        duration_secs: 5,
        pattern: "bursts".to_string(),
        connections: 16,
        smoke: false,
        out_dir: String::new(),
        nodes: 0,
        dim: 0,
    };
    while let Some(flag) = args.next() {
        if flag == "--no-cache" {
            parsed.no_cache = true;
            continue;
        }
        if flag == "--smoke" {
            parsed.smoke = true;
            continue;
        }
        let mut value = || args.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--preset" => {
                parsed.preset = match value()?.as_str() {
                    "small" => DatasetPreset::EbaySmallSim,
                    "large" => DatasetPreset::EbayLargeSim,
                    "xlarge" => DatasetPreset::EbayXlargeSim,
                    other => return Err(format!("unknown preset `{other}`")),
                }
            }
            "--epochs" => parsed.epochs = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => parsed.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--top" => parsed.top = value()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => parsed.workers = value()?.parse().map_err(|e| format!("{e}"))?,
            "--callers" => parsed.callers = value()?.parse().map_err(|e| format!("{e}"))?,
            "--requests" => parsed.requests = value()?.parse().map_err(|e| format!("{e}"))?,
            "--batch" => parsed.batch = value()?.parse().map_err(|e| format!("{e}"))?,
            "--stream-txns" => parsed.stream_txns = value()?.parse().map_err(|e| format!("{e}"))?,
            "--wal-shards" => parsed.wal_shards = value()?.parse().map_err(|e| format!("{e}"))?,
            "--rate" => parsed.rate = value()?.parse().map_err(|e| format!("{e}"))?,
            "--duration-secs" => {
                parsed.duration_secs = value()?.parse().map_err(|e| format!("{e}"))?
            }
            "--pattern" => parsed.pattern = value()?,
            "--connections" => parsed.connections = value()?.parse().map_err(|e| format!("{e}"))?,
            "--out-dir" => parsed.out_dir = value()?,
            "--nodes" => parsed.nodes = value()?.parse().map_err(|e| format!("{e}"))?,
            "--dim" => parsed.dim = value()?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: xfraud-cli <train|explain|stats|serve-bench|stream-bench|load-bench\
     |datagen|diskstore-bench> \
     [--preset small|large|xlarge] [--epochs N] [--seed S] [--top K] [--workers W] \
     [--callers C] [--requests R] [--batch B] [--no-cache] \
     [--stream-txns T] [--wal-shards K] \
     [--rate R] [--duration-secs D] [--pattern constant|diurnal|bursts] \
     [--connections C] [--smoke] \
     [--out-dir DIR] [--nodes N] [--dim D]"
        .to_string()
}

fn train_pipeline(args: &Args) -> Result<Pipeline, xfraud::Error> {
    let cfg = PipelineConfig::builder()
        .preset(args.preset)
        .data_seed(args.seed)
        .model_seed(args.seed)
        .train(TrainConfig {
            epochs: args.epochs,
            num_workers: args.workers,
            ..TrainConfig::default()
        })
        .build()?;
    Pipeline::run(cfg)
}

/// The request stream of one bench caller: `requests` calls of `batch` ids
/// cycling through the held-out transactions, offset per caller so the
/// streams overlap without being identical (realistic duplicate pressure).
fn caller_requests(
    pool: &[NodeId],
    caller: usize,
    requests: usize,
    batch: usize,
) -> Vec<Vec<NodeId>> {
    (0..requests)
        .map(|r| {
            (0..batch)
                .map(|i| pool[(caller * 3 + r * batch + i) % pool.len()])
                .collect()
        })
        .collect()
}

fn serve_bench(args: &Args) -> Result<(), xfraud::Error> {
    let pipeline = train_pipeline(args)?;
    let pool: Vec<NodeId> = pipeline.test_nodes.clone();
    let total_txns = args.callers * args.requests * args.batch;
    println!(
        "serve-bench: {} callers × {} requests × {} ids  ({} scorings over {} distinct txns, cache {})",
        args.callers,
        args.requests,
        args.batch,
        total_txns,
        pool.len().min(total_txns),
        if args.no_cache { "off" } else { "on" }
    );

    // Sequential baseline: the exact contract the engine must reproduce,
    // one transaction at a time, no engine, no cache.
    let seq_n = pool.len().clamp(1, 256);
    let started = Instant::now();
    let mut baseline = Vec::with_capacity(seq_n);
    for &t in pool.iter().take(seq_n) {
        baseline.push(pipeline.score_transaction(t)?);
    }
    let seq_rate = seq_n as f64 / started.elapsed().as_secs_f64();
    println!("sequential score_transaction: {seq_rate:.1} txn/s ({seq_n} scored)");

    let mut builder = pipeline.serving_engine().max_batch(args.callers.max(2) * 2);
    if args.no_cache {
        builder = builder.no_cache();
    }
    let engine = builder.build()?;

    let started = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..args.callers {
            let engine = &engine;
            let pool = &pool;
            handles.push(
                scope.spawn(move || -> Result<(), xfraud::serve::ServeError> {
                    for ids in caller_requests(pool, c, args.requests, args.batch) {
                        engine.score(&ids)?;
                    }
                    Ok(())
                }),
            );
        }
        for h in handles {
            h.join().expect("bench caller thread")?;
        }
        Ok::<(), xfraud::serve::ServeError>(())
    })
    .map_err(xfraud::Error::from)?;
    let engine_rate = total_txns as f64 / started.elapsed().as_secs_f64();

    // Spot-check the determinism contract on a handful of ids.
    for &t in pool.iter().take(8) {
        let served = engine.score(&[t])?[0];
        let sequential = pipeline.score_transaction(t)?;
        assert_eq!(served, sequential, "engine must match score_transaction");
    }

    println!(
        "engine: {engine_rate:.1} txn/s  ({:.2}× sequential)",
        engine_rate / seq_rate
    );
    println!("{}", engine.metrics());
    Ok(())
}

/// Network-service failures rendered into the CLI's error type.
fn net_err(e: impl std::fmt::Display) -> xfraud::Error {
    xfraud::Error::Serve(xfraud::serve::ServeError::InvalidConfig(format!("{e}")))
}

/// Closed-loop capacity probe: `connections` clients hammer the server
/// back-to-back for ~1.2 s; the aggregate 2xx rate is the saturation
/// throughput the open-loop multipliers are anchored to.
fn calibrate_capacity(
    addr: std::net::SocketAddr,
    pool: &[NodeId],
    connections: usize,
    batch: usize,
) -> Result<f64, xfraud::Error> {
    use xfraud::netserve::{ScoreClient, ScoreOutcome};
    let window = std::time::Duration::from_millis(1200);
    let timeout = std::time::Duration::from_secs(10);
    let started = Instant::now();
    let counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let Ok(mut client) = ScoreClient::connect(addr, timeout) else {
                        return 0u64;
                    };
                    let mut ok = 0u64;
                    let mut i = c;
                    while started.elapsed() < window {
                        let ids: Vec<NodeId> =
                            (0..batch).map(|k| pool[(i + k) % pool.len()]).collect();
                        i = i.wrapping_add(batch);
                        if matches!(client.score("calibrate", &ids), Ok(ScoreOutcome::Scores(_))) {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let total: u64 = counts.iter().sum();
    let rate = total as f64 / started.elapsed().as_secs_f64();
    if total == 0 {
        return Err(net_err(
            "capacity calibration produced no successful responses",
        ));
    }
    Ok(rate)
}

fn load_bench(args: &Args) -> Result<(), xfraud::Error> {
    use std::time::Duration;
    use xfraud::netserve::{
        run_load, LoadConfig, NetServer, RatePattern, ScoreClient, ScoreOutcome, ServerConfig,
    };

    let pattern = match args.pattern.as_str() {
        "constant" => RatePattern::Constant,
        "diurnal" => RatePattern::Diurnal { trough_frac: 0.2 },
        "bursts" => RatePattern::Bursts {
            period: Duration::from_secs(1),
            burst_frac: 0.2,
            amplitude: 4.0,
        },
        other => return Err(net_err(format!("unknown pattern `{other}`"))),
    };

    let pipeline = train_pipeline(args)?;
    let pool: Vec<NodeId> = pipeline.test_nodes.clone();
    let mut builder = pipeline
        .serving_engine()
        .max_batch(args.connections.max(2) * 2);
    if args.no_cache {
        builder = builder.no_cache();
    }
    let engine = std::sync::Arc::new(builder.build()?);
    // The in-flight cap sits below the sender concurrency so 2× overload
    // actually exercises 503 shedding instead of queueing without bound;
    // one scorer per permit so admitted requests never wait for a thread.
    let max_inflight = (args.connections / 2).max(4);
    let server_cfg = ServerConfig {
        max_inflight,
        score_threads: max_inflight,
        ..ServerConfig::default()
    };
    let server = NetServer::start(std::sync::Arc::clone(&engine), server_cfg).map_err(net_err)?;
    let addr = server.local_addr();
    println!(
        "load-bench: scoring service on {addr} ({} held-out txns, pattern {}, {} connections, \
         in-flight cap {max_inflight}, cache {})",
        pool.len(),
        args.pattern,
        args.connections,
        if args.no_cache { "off" } else { "on" }
    );

    let base = LoadConfig {
        duration: Duration::from_secs(args.duration_secs.max(1)),
        ids: pool.clone(),
        ids_per_request: args.batch,
        connections: args.connections,
        seed: args.seed,
        ..LoadConfig::default()
    };

    if args.smoke {
        // One short constant-rate pass, well under capacity, with hard
        // pass/fail assertions — the CI gate.
        let cfg = LoadConfig {
            rate_per_sec: if args.rate > 0.0 { args.rate } else { 30.0 },
            pattern: RatePattern::Constant,
            ..base
        };
        let report = run_load(addr, &cfg).map_err(net_err)?;
        println!("{report}");
        let m = server.metrics();
        println!("server: {m}");

        // Equivalence spot-check: wire scores must be engine bits.
        let probe: Vec<NodeId> = pool.iter().copied().take(8).collect();
        let direct = engine.score(&probe)?;
        let mut client = ScoreClient::connect(addr, Duration::from_secs(10)).map_err(net_err)?;
        let wire = match client.score("smoke", &probe).map_err(net_err)? {
            ScoreOutcome::Scores(s) => s,
            ScoreOutcome::Rejected { status, error } => {
                return Err(net_err(format!("smoke probe rejected: {status} {error}")))
            }
        };
        let mut failures = Vec::new();
        if wire
            .iter()
            .map(|s| s.to_bits())
            .ne(direct.iter().map(|s| s.to_bits()))
        {
            failures.push("wire scores are not bit-identical to the engine".to_string());
        }
        if report.completed_2xx == 0 || report.goodput() <= 0.0 {
            failures.push("zero goodput".to_string());
        }
        if report.responses_5xx > 0 || m.responses_5xx > 0 {
            failures.push(format!(
                "5xx responses observed (client {}, server {})",
                report.responses_5xx, m.responses_5xx
            ));
        }
        if report.transport_errors > 0 {
            failures.push(format!("{} transport errors", report.transport_errors));
        }
        server.shutdown();
        if failures.is_empty() {
            println!("smoke: PASS");
            return Ok(());
        }
        for f in &failures {
            eprintln!("smoke: FAIL: {f}");
        }
        std::process::exit(1);
    }

    // Warm both cache tiers (and the allocator) before measuring: the
    // first touch of each community pays sampling + a forward pass, and a
    // 1-second calibration window must not be dominated by that cold work.
    for chunk in pool.chunks(128) {
        engine.score(chunk)?;
    }

    let capacity = if args.rate > 0.0 {
        println!("capacity: {:.1} req/s (from --rate)", args.rate);
        args.rate
    } else {
        // Probe with exactly the in-flight budget: more senders would
        // spend the window shedding 503s instead of measuring saturation.
        let c = calibrate_capacity(addr, &pool, max_inflight, args.batch)?;
        println!("capacity: {c:.1} req/s (closed-loop, {max_inflight} connections)");
        c
    };

    println!("| load | offered/s | goodput/s | shed % | p50 ms | p99 ms | p999 ms | 5xx |");
    println!("|------|-----------|-----------|--------|--------|--------|---------|-----|");
    let mut any_5xx = 0u64;
    for mult in [0.5, 1.0, 2.0] {
        // Anchor to the pattern's *mean* so "1×" offers capacity on
        // average (bursts spike above it, by design).
        let cfg = LoadConfig {
            rate_per_sec: capacity * mult / pattern.mean(),
            pattern: pattern.clone(),
            ..base.clone()
        };
        let report = run_load(addr, &cfg).map_err(net_err)?;
        any_5xx += report.responses_5xx;
        println!(
            "| {mult:.1}× | {:9.1} | {:9.1} | {:6.1} | {:6.2} | {:6.2} | {:7.2} | {:3} |",
            report.offered_rate(),
            report.goodput(),
            100.0 * report.shed_rate(),
            report.p50_ms,
            report.p99_ms,
            report.p999_ms,
            report.responses_5xx,
        );
    }
    let m = server.metrics();
    println!("server: {m}");
    println!("engine: {}", engine.metrics());
    server.shutdown();
    if any_5xx > 0 || m.responses_5xx > 0 {
        return Err(net_err(format!(
            "5xx responses under load (client {any_5xx}, server {})",
            m.responses_5xx
        )));
    }
    Ok(())
}

/// `sorted` ascending; `p` in `[0, 1]` (nearest-rank on the closed index).
fn percentile(sorted: &[std::time::Duration], p: f64) -> std::time::Duration {
    let idx = ((sorted.len().saturating_sub(1)) as f64 * p).round() as usize;
    sorted[idx]
}

fn stream_bench(args: &Args) -> Result<(), xfraud::Error> {
    use xfraud::datagen::{event_stream, flatten_events, generate_log};
    use xfraud::ingest::{replay_dir, ShardedWal};

    let pipeline = train_pipeline(args)?;
    let engine = pipeline.serving_engine().build()?;
    let base_nodes = engine.n_nodes();

    // A fresh week of traffic: same world shape, different seed, entity ids
    // disjoint from the base graph (they continue its id space).
    let wcfg = args.preset.config(args.seed.wrapping_add(101));
    let world = generate_log(&wcfg);
    let mut arrivals = event_stream(&world, &wcfg, base_nodes);
    arrivals.truncate(args.stream_txns);
    let events = flatten_events(&arrivals);
    println!(
        "stream-bench: {} arriving txns ({} graph events) onto a {}-node base, {} WAL shards",
        arrivals.len(),
        events.len(),
        base_nodes,
        args.wal_shards
    );

    // Phase 1: WAL append throughput (durability path only).
    let wal_dir = std::env::temp_dir().join(format!("xfraud-stream-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal = ShardedWal::create(&wal_dir, args.wal_shards)?;
    let started = Instant::now();
    for e in &events {
        wal.append(e)?;
    }
    wal.sync()?;
    let wal_rate = events.len() as f64 / started.elapsed().as_secs_f64();
    println!("wal append: {wal_rate:.0} events/s");
    let replay = replay_dir(&wal_dir, None)?;
    assert_eq!(replay.events.len(), events.len(), "wal must replay in full");

    // Phase 2: ingest + score-on-arrival. Each arrival is applied to the
    // live graph and its transaction scored immediately.
    let mut latencies = Vec::with_capacity(arrivals.len());
    let started = Instant::now();
    for arrival in &arrivals {
        let t0 = Instant::now();
        let new_txns = engine.apply_events(&arrival.events)?;
        engine.score_txn(new_txns[0])?;
        latencies.push(t0.elapsed());
    }
    let ingest_rate = events.len() as f64 / started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
    let (ov_nodes, ov_edges) = engine.overlay_stats();
    println!(
        "ingest+score: {ingest_rate:.0} events/s  score-on-arrival p50 {:.2} ms  p99 {:.2} ms",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3
    );
    println!("overlay grew to {ov_nodes} nodes / {ov_edges} directed edges");

    // Phase 3: compaction is invisible to scores (the overlay contract).
    let probe = arrivals.last().expect("non-empty stream").txn_node;
    let before = engine.score_txn(probe)?;
    engine.compact()?;
    let after = engine.score_txn(probe)?;
    assert_eq!(before, after, "compaction must not move scores");
    println!("compacted: overlay folded, scores bit-identical");
    println!("{}", engine.metrics());
    let _ = std::fs::remove_dir_all(&wal_dir);
    Ok(())
}

/// Resident-set size from `/proc/self/status`, in MiB (0.0 where absent).
fn rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Storage failures rendered into the CLI's error type.
fn store_err(e: impl std::fmt::Display) -> xfraud::Error {
    xfraud::Error::Serve(xfraud::serve::ServeError::InvalidConfig(format!("{e}")))
}

fn datagen_cmd(args: &Args) -> Result<(), xfraud::Error> {
    use xfraud::datagen::{scaled_large_config, stream_dataset_to_dir};
    if args.out_dir.is_empty() {
        return Err(store_err("datagen requires --out-dir"));
    }
    let target = if args.nodes == 0 { 100_000 } else { args.nodes };
    let mut cfg = scaled_large_config(target, args.seed);
    if args.dim > 0 {
        cfg.feature_dim = args.dim;
    }
    println!(
        "datagen: streaming a ~{target}-node eBay-large world to {} (seed {}, dim {})",
        args.out_dir, args.seed, cfg.feature_dim
    );
    let started = Instant::now();
    let ds = stream_dataset_to_dir(&cfg, std::path::Path::new(&args.out_dir)).map_err(store_err)?;
    let s = &ds.stats;
    println!(
        "  records: {} emitted, {} kept after the small-neighbourhood filter",
        s.records_emitted, s.records_kept
    );
    println!(
        "  graph:   {} nodes ({} transactions, {} entities)",
        s.n_nodes,
        s.n_nodes - s.n_entities,
        s.n_entities
    );
    println!(
        "  store:   {} feature bytes in segments (dim {})",
        s.segment_bytes, s.feature_dim
    );
    println!(
        "  done in {:.1}s, RSS {:.0} MiB",
        started.elapsed().as_secs_f64(),
        rss_mib()
    );
    Ok(())
}

fn diskstore_bench(args: &Args) -> Result<(), xfraud::Error> {
    use std::sync::Arc;
    use xfraud::diskstore::{BlockStore, DiskStore, DiskStoreOptions};
    use xfraud::kvstore::{FeatureStore, KvStore, ShardedStore};

    let rows = if args.nodes == 0 { 50_000 } else { args.nodes };
    let dim = if args.dim == 0 { 48 } else { args.dim };
    let base = if args.out_dir.is_empty() {
        std::env::temp_dir()
    } else {
        std::path::PathBuf::from(&args.out_dir)
    };
    let dir = base.join(format!("diskstore-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "diskstore-bench: {rows} rows x {dim} f32 features in {}",
        dir.display()
    );
    let disk = Arc::new(DiskStore::open(&dir, DiskStoreOptions::default()).map_err(store_err)?);
    let dfs = FeatureStore::new(Arc::clone(&disk) as Arc<dyn KvStore>, dim);
    let row: Vec<f32> = (0..dim).map(|i| i as f32 * 0.5).collect();
    let started = Instant::now();
    for i in 0..rows {
        dfs.put_features(i, &row);
    }
    disk.flush().map_err(store_err)?;
    disk.compact().map_err(store_err)?;
    disk.sync().map_err(store_err)?;
    let st = disk.storage_stats();
    println!(
        "  write+seal: {:.1}s ({} segments, {} bytes, mmap {})",
        started.elapsed().as_secs_f64(),
        st.n_segments,
        st.segment_bytes,
        if st.mmap_active { "on" } else { "off" }
    );

    // Sequential scan over sealed segments (the compaction/backup path).
    let started = Instant::now();
    let mut n = 0usize;
    let mut bytes = 0usize;
    disk.scan(&mut |k, v| {
        n += 1;
        bytes += k.len() + v.len();
    });
    let secs = started.elapsed().as_secs_f64();
    println!(
        "  sequential scan: {n} records, {:.1} MiB in {secs:.3}s = {:.0} rows/s",
        bytes as f64 / (1 << 20) as f64,
        n as f64 / secs.max(1e-9)
    );

    // Random single-row gets (the online feature-lookup path).
    let n_gets = rows.min(100_000);
    let started = Instant::now();
    let mut x = 0x243f_6a88_85a3_08d3u64; // splitmix-style index walk
    for _ in 0..n_gets {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let got = dfs.get_features((x % rows as u64) as usize);
        assert_eq!(got.len(), dim, "bench rows must exist");
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "  random get: {n_gets} rows in {secs:.3}s = {:.0} rows/s",
        n_gets as f64 / secs.max(1e-9)
    );

    // Parallel loaders, disk-backed vs in-RAM sharded — Fig. 13 on files.
    let ids: Vec<usize> = (0..rows).cycle().take(rows * 2).collect();
    let sharded = Arc::new(ShardedStore::new(64));
    let sfs = FeatureStore::new(Arc::clone(&sharded) as Arc<dyn KvStore>, dim);
    for i in 0..rows {
        sfs.put_features(i, &row);
    }
    println!("  parallel loaders ({} ids per pass):", ids.len());
    for threads in [1usize, 2, 4, 8] {
        let (_, dsecs, dtput) = dfs.load_parallel(&ids, threads);
        let (_, ssecs, stput) = sfs.load_parallel(&ids, threads);
        println!(
            "    {threads} thread(s): diskstore {dtput:>9.0} rows/s ({dsecs:.3}s)   \
             sharded {stput:>9.0} rows/s ({ssecs:.3}s)"
        );
    }
    println!("  RSS {:.0} MiB", rss_mib());
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn real_main(args: &Args) -> Result<(), xfraud::Error> {
    match args.command.as_str() {
        "stats" => {
            let ds = Dataset::generate(args.preset, args.seed);
            println!("{}:\n{}", ds.name, ds.stats());
        }
        "serve-bench" => serve_bench(args)?,
        "stream-bench" => stream_bench(args)?,
        "load-bench" => load_bench(args)?,
        "datagen" => datagen_cmd(args)?,
        "diskstore-bench" => diskstore_bench(args)?,
        "train" | "explain" => {
            let pipeline = train_pipeline(args)?;
            for e in &pipeline.history {
                println!(
                    "epoch {:>3}  loss {:.4}  val AUC {:.4}  ({:.1}s)",
                    e.epoch, e.mean_loss, e.val_auc, e.secs
                );
            }
            let (auc, ap, acc) = pipeline.test_metrics();
            println!("test AUC {auc:.4}  AP {ap:.4}  accuracy@0.5 {acc:.4}");

            if args.command == "explain" {
                let (scores, labels) = pipeline.test_scores();
                let Some((idx, score)) = scores
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| labels[i])
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                else {
                    eprintln!("no fraud in the held-out set");
                    std::process::exit(1);
                };
                let txn = pipeline.test_nodes[idx];
                let community = xfraud::hetgraph::community_of(&pipeline.dataset.graph, txn, 400)?;
                println!(
                    "\nexplaining txn {txn} (score {score:.3}; community {} nodes / {} links)",
                    community.n_nodes(),
                    community.n_links()
                );
                let explainer = GnnExplainer::new(&pipeline.detector, ExplainerConfig::default());
                let (_, weights) = explainer.explain_community(&community);
                let links = community.graph.undirected_links();
                let mut ranked: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                for &(i, w) in ranked.iter().take(args.top) {
                    let (u, v) = links[i];
                    println!(
                        "  {} {} -- {} {}  weight {w:.3}",
                        community.graph.node_type(u),
                        u,
                        community.graph.node_type(v),
                        v
                    );
                }
            }
        }
        _ => {
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = real_main(&args) {
        eprintln!("xfraud-cli: {e}");
        std::process::exit(1);
    }
}
