//! `xfraud-cli` — run the pipeline from the command line.
//!
//! ```text
//! xfraud-cli train   [--preset small|large|xlarge] [--epochs N] [--seed S] [--workers W]
//! xfraud-cli explain [--preset ...] [--epochs N] [--seed S] [--top K] [--workers W]
//! xfraud-cli stats   [--preset ...]
//! ```
//!
//! `train` reports held-out metrics; `explain` additionally explains the
//! highest-scoring held-out fraud; `stats` prints dataset statistics.

use xfraud::datagen::{Dataset, DatasetPreset};
use xfraud::explain::{ExplainerConfig, GnnExplainer};
use xfraud::gnn::TrainConfig;
use xfraud::{Pipeline, PipelineConfig};

struct Args {
    command: String,
    preset: DatasetPreset,
    epochs: usize,
    seed: u64,
    top: usize,
    /// Batch-engine sampling threads; results are identical for any value.
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        preset: DatasetPreset::EbaySmallSim,
        epochs: 6,
        seed: 7,
        top: 5,
        workers: xfraud::gnn::default_num_workers(),
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--preset" => {
                parsed.preset = match value()?.as_str() {
                    "small" => DatasetPreset::EbaySmallSim,
                    "large" => DatasetPreset::EbayLargeSim,
                    "xlarge" => DatasetPreset::EbayXlargeSim,
                    other => return Err(format!("unknown preset `{other}`")),
                }
            }
            "--epochs" => parsed.epochs = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => parsed.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--top" => parsed.top = value()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => parsed.workers = value()?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: xfraud-cli <train|explain|stats> [--preset small|large|xlarge] \
     [--epochs N] [--seed S] [--top K] [--workers W]"
        .to_string()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match args.command.as_str() {
        "stats" => {
            let ds = Dataset::generate(args.preset, args.seed);
            println!("{}:\n{}", ds.name, ds.stats());
        }
        "train" | "explain" => {
            let pipeline = Pipeline::run(PipelineConfig {
                preset: args.preset,
                data_seed: args.seed,
                model_seed: args.seed,
                train: TrainConfig {
                    epochs: args.epochs,
                    num_workers: args.workers,
                    ..TrainConfig::default()
                },
                ..PipelineConfig::default()
            });
            for e in &pipeline.history {
                println!(
                    "epoch {:>3}  loss {:.4}  val AUC {:.4}  ({:.1}s)",
                    e.epoch, e.mean_loss, e.val_auc, e.secs
                );
            }
            let (auc, ap, acc) = pipeline.test_metrics();
            println!("test AUC {auc:.4}  AP {ap:.4}  accuracy@0.5 {acc:.4}");

            if args.command == "explain" {
                let (scores, labels) = pipeline.test_scores();
                let Some((idx, score)) = scores
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| labels[i])
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                else {
                    eprintln!("no fraud in the held-out set");
                    std::process::exit(1);
                };
                let txn = pipeline.test_nodes[idx];
                let community = xfraud::hetgraph::community_of(&pipeline.dataset.graph, txn, 400)
                    .expect("valid node");
                println!(
                    "\nexplaining txn {txn} (score {score:.3}; community {} nodes / {} links)",
                    community.n_nodes(),
                    community.n_links()
                );
                let explainer = GnnExplainer::new(&pipeline.detector, ExplainerConfig::default());
                let (_, weights) = explainer.explain_community(&community);
                let links = community.graph.undirected_links();
                let mut ranked: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                for &(i, w) in ranked.iter().take(args.top) {
                    let (u, v) = links[i];
                    println!(
                        "  {} {} -- {} {}  weight {w:.3}",
                        community.graph.node_type(u),
                        u,
                        community.graph.node_type(v),
                        v
                    );
                }
            }
        }
        _ => {
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
