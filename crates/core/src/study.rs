//! The §5.1 community annotation study, end to end: sample communities →
//! simulate expert annotators → run GNNExplainer → compute centrality
//! weights → hand everything to the hit-rate / hybrid machinery.
//!
//! The paper's sample: 41 communities (18 fraud seeds, 23 legit), 1 591
//! nodes, 3 344 edges, 81.56 edges/community on average; the first 21 are
//! the hybrid's training set, the last 20 its test set.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_explain::annotate::{
    edge_scores, node_scores, simulate_annotations, true_importance_for_seed, AnnotationConfig,
    EdgeAgg,
};
use xfraud_explain::centrality::{community_edge_weights, Measure};
use xfraud_explain::{CommunityWeights, ExplainerConfig, GnnExplainer};
use xfraud_hetgraph::Community;

use crate::pipeline::Pipeline;

/// Study settings.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of communities to sample (41 in the paper).
    pub n_communities: usize,
    /// Minimum links per community (keeps top-25 meaningful).
    pub min_links: usize,
    /// Community node cap.
    pub max_nodes: usize,
    pub annotation: AnnotationConfig,
    pub explainer: ExplainerConfig,
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            n_communities: 41,
            min_links: 6,
            // The paper's sample averages ~39 nodes / 81.6 edges per
            // community (1,591 nodes, 3,344 edges over 41 communities).
            max_nodes: 48,
            annotation: AnnotationConfig::default(),
            // The Appendix-D betas target the paper's 6-layer/400-hidden
            // detector; at our 2-layer/64-hidden scale the per-edge
            // confidence gradient is larger, so the edge-size penalty is
            // raised proportionally to keep the mask sparse and
            // discriminative instead of saturating.
            explainer: ExplainerConfig {
                beta_edge_size: 0.05,
                ..ExplainerConfig::default()
            },
            seed: 3,
        }
    }
}

/// One community's collected study data.
pub struct StudyCommunity {
    pub community: Community,
    /// Simulated-annotator edge importance (avg aggregation), aligned with
    /// `community.graph.undirected_links()`.
    pub human: Vec<f64>,
    /// Same, under all three aggregations (avg, sum, min).
    pub human_by_agg: [Vec<f64>; 3],
    /// GNNExplainer edge weights (directions collapsed by max).
    pub explainer: Vec<f64>,
    /// Per-annotator node scores, for IAA reporting.
    pub annotations: Vec<Vec<u8>>,
}

/// The full study sample.
pub struct CommunityStudy {
    pub communities: Vec<StudyCommunity>,
    pub cfg: StudyConfig,
}

impl CommunityStudy {
    /// Builds the study from a trained pipeline: samples communities,
    /// simulates annotators from the generator's ground-truth risk, and
    /// runs the GNNExplainer per community against the frozen detector.
    pub fn build(pipeline: &Pipeline, cfg: StudyConfig) -> CommunityStudy {
        let sampled = pipeline
            .sample_communities(cfg.n_communities, cfg.min_links, cfg.max_nodes, cfg.seed)
            // xlint: allow(p1, reason = "the pipeline validated these bounds when it trained; re-sampling its own split cannot fail")
            .expect("study samples from the pipeline's own test split");
        let explainer = GnnExplainer::new(&pipeline.detector, cfg.explainer.clone());
        let mut communities = Vec::with_capacity(sampled.len());
        for (i, community) in sampled.into_iter().enumerate() {
            let risk = pipeline.community_risk(&community);
            let truth = true_importance_for_seed(&risk, &community.graph, community.seed);
            let ann_cfg = AnnotationConfig {
                seed: cfg.annotation.seed ^ (i as u64).wrapping_mul(0x9e37_79b9),
                ..cfg.annotation.clone()
            };
            let annotations = simulate_annotations(&truth, &ann_cfg);
            let nodes = node_scores(&annotations);
            let links = community.graph.undirected_links();
            let human_by_agg = [
                edge_scores(&nodes, &links, EdgeAgg::Avg),
                edge_scores(&nodes, &links, EdgeAgg::Sum),
                edge_scores(&nodes, &links, EdgeAgg::Min),
            ];
            let (_, explainer_w) = explainer.explain_community(&community);
            communities.push(StudyCommunity {
                community,
                human: human_by_agg[0].clone(),
                human_by_agg,
                explainer: explainer_w,
                annotations,
            });
        }
        CommunityStudy { communities, cfg }
    }

    /// Centrality edge weights per community for one measure.
    pub fn centrality_weights(&self, measure: Measure) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xce17);
        self.communities
            .iter()
            .map(|sc| community_edge_weights(&sc.community.graph, measure, &mut rng))
            .collect()
    }

    /// Packs the study into the hybrid learner's input, using `measure` as
    /// `w(c)`.
    pub fn to_community_weights(&self, measure: Measure) -> Vec<CommunityWeights> {
        let centrality = self.centrality_weights(measure);
        self.communities
            .iter()
            .zip(centrality)
            .map(|(sc, c)| CommunityWeights {
                human: sc.human.clone(),
                centrality: c,
                explainer: sc.explainer.clone(),
            })
            .collect()
    }

    /// Split into the paper's train (first 21) / test (last 20) scheme,
    /// proportionally when fewer communities are available.
    pub fn train_test_split(
        &self,
        weights: &[CommunityWeights],
    ) -> (Vec<CommunityWeights>, Vec<CommunityWeights>) {
        let n = weights.len();
        let n_train = (n * 21 + 20) / 41; // ≈ 21/41 of the sample
        let (a, b) = weights.split_at(n_train.clamp(1, n.saturating_sub(1).max(1)));
        (a.to_vec(), b.to_vec())
    }

    /// Counts of fraud- vs legit-seeded communities (paper: 18 vs 23).
    pub fn seed_label_counts(&self) -> (usize, usize) {
        let fraud = self
            .communities
            .iter()
            .filter(|sc| sc.community.seed_label == Some(true))
            .count();
        (fraud, self.communities.len() - fraud)
    }

    /// Mean links per community (paper: 81.56).
    pub fn mean_links(&self) -> f64 {
        let total: usize = self
            .communities
            .iter()
            .map(|sc| sc.community.n_links())
            .sum();
        total as f64 / self.communities.len().max(1) as f64
    }
}
