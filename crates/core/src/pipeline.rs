use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_datagen::{Dataset, DatasetPreset};
use xfraud_gnn::{
    train_test_split, CommunitySampler, DetectorConfig, EpochStats, FullGraphSampler, SageSampler,
    Sampler, TrainConfig, Trainer, XFraudDetector,
};
use xfraud_hetgraph::{community_of, Community, NodeId};
use xfraud_metrics::{accuracy, average_precision, roc_auc};
use xfraud_serve::{score_one, ScoringEngine, ScoringEngineBuilder};

use crate::error::{ConfigError, Error};

/// Node cap of the per-transaction scoring community (matches the paper's
/// §5.1 explainer communities, which are bounded well below this).
const SCORING_COMMUNITY_CAP: usize = 4000;

/// End-to-end pipeline settings (Fig. 2: graph constructor → detector →
/// explainer).
///
/// Construct through [`PipelineConfig::builder`], which validates settings
/// at `build()` time — the deprecation cycle for struct-literal
/// construction is over and the struct is `#[non_exhaustive]`, so the
/// builder is the only public construction path. Fields stay readable, and
/// [`Pipeline::run`] re-validates in case a config was mutated after
/// `build()`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineConfig {
    pub preset: DatasetPreset,
    pub data_seed: u64,
    pub model_seed: u64,
    /// Detector hyper-parameters; `None` = a scaled-down default matched to
    /// the preset's feature dimension.
    pub detector: Option<DetectorConfig>,
    pub train: TrainConfig,
    /// GraphSAGE sampler shape (k hops, ≤ n per hop): detector+'s sampler.
    pub sage_hops: usize,
    pub sage_per_hop: usize,
    pub test_fraction: f64,
}

impl PipelineConfig {
    /// Starts a validated builder from the defaults. This is the only
    /// public construction path: the deprecated `Default` impl (the last
    /// struct-literal escape hatch, via `..Default::default()`) was removed
    /// once the deprecation cycle ended — see CHANGELOG "Migrating off
    /// PipelineConfig literals".
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: PipelineConfig {
                preset: DatasetPreset::EbaySmallSim,
                data_seed: 7,
                model_seed: 1,
                detector: None,
                train: TrainConfig {
                    epochs: 8,
                    ..TrainConfig::default()
                },
                sage_hops: 2,
                sage_per_hop: 8,
                test_fraction: 0.3,
            },
        }
    }

    /// Checks every range constraint the builder enforces. [`Pipeline::run`]
    /// calls this, so hand-assembled configs get the same diagnostics.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.test_fraction > 0.0 && self.test_fraction < 1.0) {
            return Err(ConfigError::TestFraction(self.test_fraction));
        }
        if self.sage_hops == 0 {
            return Err(ConfigError::SageHops(self.sage_hops));
        }
        if self.sage_per_hop == 0 {
            return Err(ConfigError::SagePerHop(self.sage_per_hop));
        }
        if self.train.epochs == 0 {
            return Err(ConfigError::Epochs(self.train.epochs));
        }
        if self.train.batch_size == 0 {
            return Err(ConfigError::BatchSize(self.train.batch_size));
        }
        if let Some(det) = &self.detector {
            let dataset_dim = self.preset.config(self.data_seed).feature_dim;
            if det.feature_dim != dataset_dim {
                return Err(ConfigError::DetectorDim {
                    detector: det.feature_dim,
                    dataset: dataset_dim,
                });
            }
        }
        Ok(())
    }
}

/// Typed-setter builder for [`PipelineConfig`]; [`build`] validates every
/// range constraint and reports the first violation as a [`ConfigError`].
///
/// [`build`]: PipelineConfigBuilder::build
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Dataset preset to generate (Table 2 scale analogue).
    pub fn preset(mut self, preset: DatasetPreset) -> Self {
        self.cfg.preset = preset;
        self
    }

    /// Seed of dataset generation and the train/test split.
    pub fn data_seed(mut self, seed: u64) -> Self {
        self.cfg.data_seed = seed;
        self
    }

    /// Seed of detector initialisation, evaluation and serving streams.
    pub fn model_seed(mut self, seed: u64) -> Self {
        self.cfg.model_seed = seed;
        self
    }

    /// Explicit detector hyper-parameters; its `feature_dim` must match the
    /// preset's (validated at `build()`).
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.cfg.detector = Some(detector);
        self
    }

    /// Full training configuration (epochs, batch size, lr, workers).
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.cfg.train = train;
        self
    }

    /// Training epochs (≥ 1); shorthand for mutating [`Self::train`].
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.train.epochs = epochs;
        self
    }

    /// GraphSAGE sampler depth in hops (≥ 1).
    pub fn sage_hops(mut self, hops: usize) -> Self {
        self.cfg.sage_hops = hops;
        self
    }

    /// GraphSAGE fan-out per hop (≥ 1).
    pub fn sage_per_hop(mut self, per_hop: usize) -> Self {
        self.cfg.sage_per_hop = per_hop;
        self
    }

    /// Fraction of labeled transactions held out for testing, in `(0, 1)`.
    pub fn test_fraction(mut self, fraction: f64) -> Self {
        self.cfg.test_fraction = fraction;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<PipelineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A trained end-to-end xFraud instance: dataset, detector+, split and
/// training history.
pub struct Pipeline {
    pub cfg: PipelineConfig,
    pub dataset: Dataset,
    pub detector: XFraudDetector,
    /// The training/evaluation sampler, held as a trait object so pipelines
    /// with different sampler shapes share one concrete `Pipeline` type.
    pub sampler: Arc<dyn Sampler + Send + Sync>,
    pub train_nodes: Vec<NodeId>,
    pub test_nodes: Vec<NodeId>,
    pub history: Vec<EpochStats>,
}

impl Pipeline {
    /// Generates the dataset, splits it, and trains the detector+.
    ///
    /// Fails fast on an out-of-range config ([`Error::Config`]) or a split
    /// that leaves either side empty ([`Error::EmptySplit`]).
    pub fn run(cfg: PipelineConfig) -> Result<Pipeline, Error> {
        cfg.validate()?;
        let dataset = Dataset::generate(cfg.preset, cfg.data_seed);
        let (train_nodes, test_nodes) =
            train_test_split(&dataset.graph, cfg.test_fraction, cfg.data_seed ^ 0x5711);
        if train_nodes.is_empty() || test_nodes.is_empty() {
            return Err(Error::EmptySplit {
                n_train: train_nodes.len(),
                n_test: test_nodes.len(),
            });
        }
        let det_cfg = cfg
            .detector
            .clone()
            .unwrap_or_else(|| DetectorConfig::small(dataset.graph.feature_dim(), cfg.model_seed));
        let mut detector = XFraudDetector::new(det_cfg);
        let sampler: Arc<dyn Sampler + Send + Sync> =
            Arc::new(SageSampler::new(cfg.sage_hops, cfg.sage_per_hop));
        let trainer = Trainer::new(cfg.train.clone());
        let history = trainer.fit(
            &mut detector,
            &dataset.graph,
            &sampler,
            &train_nodes,
            &test_nodes,
        );
        Ok(Pipeline {
            cfg,
            dataset,
            detector,
            sampler,
            train_nodes,
            test_nodes,
            history,
        })
    }

    /// Scores the held-out transactions; returns `(scores, labels)`.
    /// Batched on the [`xfraud_gnn::BatchEngine`] (`cfg.train.num_workers`
    /// parallel score workers); the fixed evaluation seed keeps the scores
    /// bit-identical at any worker count.
    pub fn test_scores(&self) -> (Vec<f32>, Vec<bool>) {
        let trainer = Trainer::new(self.cfg.train.clone());
        trainer.evaluate(
            &self.detector,
            &self.dataset.graph,
            &self.sampler,
            &self.test_nodes,
            self.cfg.model_seed ^ 0xe5a1,
        )
    }

    /// Headline test metrics `(AUC, AP, accuracy@0.5)` — the Table 3/7
    /// columns.
    pub fn test_metrics(&self) -> (f64, f64, f64) {
        let (scores, labels) = self.test_scores();
        (
            roc_auc(&scores, &labels),
            average_precision(&scores, &labels),
            accuracy(&scores, &labels, 0.5),
        )
    }

    /// The sampler the sequential scoring contract and the serving engine
    /// share: the transaction's connected community, capped like the
    /// explainer path.
    fn scoring_sampler(&self) -> CommunitySampler {
        CommunitySampler::new(SCORING_COMMUNITY_CAP)
    }

    /// Fraud probability of one transaction node, computed on its
    /// (capped) connected community like the explainer path does.
    ///
    /// This is the sequential reference the serving engine is bit-identical
    /// to: it delegates to [`xfraud_serve::score_one`] with the same
    /// sampler, seed and graph version an engine from
    /// [`Pipeline::serving_engine`] uses.
    pub fn score_transaction(&self, txn: NodeId) -> Result<f32, Error> {
        score_one(
            &self.detector,
            &self.dataset.graph,
            &self.scoring_sampler(),
            self.cfg.model_seed,
            0,
            txn,
        )
        .map_err(Error::from)
    }

    /// Starts configuring a [`ScoringEngine`] serving this pipeline's
    /// frozen detector over its graph: micro-batched, cache-backed, and
    /// bit-identical to [`Pipeline::score_transaction`] for every batch and
    /// cache configuration. Finish with `.build()`.
    pub fn serving_engine(&self) -> ScoringEngineBuilder {
        ScoringEngine::builder(
            self.detector.clone(),
            self.dataset.graph.clone(),
            Box::new(self.scoring_sampler()),
        )
        .seed(self.cfg.model_seed)
    }

    /// Draws the §5.1-style community sample: `n` random held-out seed
    /// transactions (a mix of fraud and legit), each expanded to its
    /// connected community, keeping communities with at least `min_links`
    /// and at most `max_nodes` (the paper's 41 communities average 81.6
    /// edges).
    pub fn sample_communities(
        &self,
        n: usize,
        min_links: usize,
        max_nodes: usize,
        seed: u64,
    ) -> Result<Vec<Community>, Error> {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        // Stratify towards the paper's 18-fraud / 23-legit mix: interleave
        // fraud- and legit-seeded candidates (fraud seeds are rare, so an
        // unstratified draw would yield almost none).
        let mut fraud: Vec<NodeId> = Vec::new();
        let mut legit: Vec<NodeId> = Vec::new();
        for &v in &self.test_nodes {
            match self.dataset.graph.label(v) {
                Some(true) => fraud.push(v),
                Some(false) => legit.push(v),
                None => {}
            }
        }
        fraud.shuffle(&mut rng);
        legit.shuffle(&mut rng);
        let mut candidates = Vec::with_capacity(fraud.len() + legit.len());
        let mut fi = fraud.into_iter();
        let mut li = legit.into_iter();
        loop {
            match (fi.next(), li.next()) {
                (None, None) => break,
                (f, l) => {
                    candidates.extend(f);
                    candidates.extend(l);
                }
            }
        }
        let mut out = Vec::new();
        let mut used_nodes: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for &txn in &candidates {
            if out.len() >= n {
                break;
            }
            if used_nodes.contains(&txn) {
                continue; // avoid overlapping communities
            }
            let c = community_of(&self.dataset.graph, txn, max_nodes)?;
            if c.n_links() < min_links {
                continue;
            }
            used_nodes.extend(c.original_ids.iter().copied());
            out.push(c);
        }
        Ok(out)
    }

    /// Risk ground truth for a community's nodes (for annotator simulation).
    pub fn community_risk(&self, community: &Community) -> Vec<f32> {
        community
            .original_ids
            .iter()
            .map(|&v| self.dataset.node_risk[v])
            .collect()
    }

    /// A full-graph sampler for exact (unsampled) inference, as used in the
    /// explainer path.
    pub fn full_sampler(&self) -> FullGraphSampler {
        FullGraphSampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PipelineConfig {
        PipelineConfig::builder()
            .epochs(4)
            .build()
            .expect("default-based config is valid")
    }

    #[test]
    fn pipeline_end_to_end_learns() {
        // The simulated small dataset plateaus near the paper's eBay-small
        // AUC (~0.725, Fig. 10); four epochs must be clearly above chance.
        let p = Pipeline::run(quick_cfg()).unwrap();
        let (auc, ap, acc) = p.test_metrics();
        assert!(auc > 0.65, "AUC {auc}");
        assert!(ap > 0.15, "AP {ap}");
        assert!(acc > 0.7, "accuracy {acc}");
        assert!(!p.history.is_empty());
    }

    #[test]
    fn community_sampling_respects_bounds() {
        let p = Pipeline::run(quick_cfg()).unwrap();
        let comms = p.sample_communities(6, 5, 300, 3).unwrap();
        assert!(!comms.is_empty());
        for c in &comms {
            assert!(c.n_links() >= 5);
            assert!(c.n_nodes() <= 300);
            let risk = p.community_risk(c);
            assert_eq!(risk.len(), c.n_nodes());
        }
    }

    #[test]
    fn score_transaction_returns_probability_and_typed_errors() {
        let p = Pipeline::run(quick_cfg()).unwrap();
        let txn = p.test_nodes[0];
        let s = p.score_transaction(txn).unwrap();
        assert!((0.0..=1.0).contains(&s));

        let bogus = p.dataset.graph.n_nodes() + 1;
        assert_eq!(
            p.score_transaction(bogus),
            Err(Error::UnknownTransaction(bogus))
        );
        let entity = (0..p.dataset.graph.n_nodes())
            .find(|&v| p.dataset.graph.node_type(v) != xfraud_hetgraph::NodeType::Txn)
            .expect("graph has entities");
        assert_eq!(
            p.score_transaction(entity),
            Err(Error::NotATransaction(entity))
        );
    }

    #[test]
    fn builder_validates_every_range_constraint() {
        assert!(matches!(
            PipelineConfig::builder().test_fraction(0.0).build(),
            Err(ConfigError::TestFraction(_))
        ));
        assert!(matches!(
            PipelineConfig::builder().test_fraction(1.0).build(),
            Err(ConfigError::TestFraction(_))
        ));
        assert!(matches!(
            PipelineConfig::builder().sage_hops(0).build(),
            Err(ConfigError::SageHops(0))
        ));
        assert!(matches!(
            PipelineConfig::builder().sage_per_hop(0).build(),
            Err(ConfigError::SagePerHop(0))
        ));
        assert!(matches!(
            PipelineConfig::builder().epochs(0).build(),
            Err(ConfigError::Epochs(0))
        ));
        let bad_train = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            PipelineConfig::builder().train(bad_train).build(),
            Err(ConfigError::BatchSize(0))
        ));
        // Detector width must match the preset's feature dimension.
        let preset_dim = DatasetPreset::EbaySmallSim.config(7).feature_dim;
        assert!(matches!(
            PipelineConfig::builder()
                .detector(DetectorConfig::small(preset_dim + 1, 0))
                .build(),
            Err(ConfigError::DetectorDim { .. })
        ));
        let ok = PipelineConfig::builder()
            .detector(DetectorConfig::small(preset_dim, 0))
            .build()
            .unwrap();
        assert_eq!(ok.detector.unwrap().feature_dim, preset_dim);
        // Pipeline::run re-validates configs mutated after build() too —
        // fields stay `pub` for reading and in-crate tweaking, but every
        // construction goes through the builder now.
        let mut mutated = PipelineConfig::builder().build().unwrap();
        mutated.test_fraction = -0.25;
        assert!(matches!(
            Pipeline::run(mutated),
            Err(Error::Config(ConfigError::TestFraction(_)))
        ));
    }

    #[test]
    fn serving_engine_matches_score_transaction() {
        let p = Pipeline::run(quick_cfg()).unwrap();
        let engine = p.serving_engine().build().unwrap();
        let ids: Vec<NodeId> = p.test_nodes.iter().copied().take(8).collect();
        let sequential: Vec<f32> = ids
            .iter()
            .map(|&t| p.score_transaction(t).unwrap())
            .collect();
        assert_eq!(engine.score(&ids).unwrap(), sequential);
        assert_eq!(engine.score(&ids).unwrap(), sequential, "warm pass");
    }
}
