use rand::rngs::StdRng;
use rand::SeedableRng;

use xfraud_datagen::{Dataset, DatasetPreset};
use xfraud_gnn::{
    predict_scores, train_test_split, DetectorConfig, EpochStats, FullGraphSampler, SageSampler,
    TrainConfig, Trainer, XFraudDetector,
};
use xfraud_hetgraph::{community_of, Community, NodeId};
use xfraud_metrics::{accuracy, average_precision, roc_auc};

/// End-to-end pipeline settings (Fig. 2: graph constructor → detector →
/// explainer).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub preset: DatasetPreset,
    pub data_seed: u64,
    pub model_seed: u64,
    /// Detector hyper-parameters; `None` = a scaled-down default matched to
    /// the preset's feature dimension.
    pub detector: Option<DetectorConfig>,
    pub train: TrainConfig,
    /// GraphSAGE sampler shape (k hops, ≤ n per hop): detector+'s sampler.
    pub sage_hops: usize,
    pub sage_per_hop: usize,
    pub test_fraction: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            preset: DatasetPreset::EbaySmallSim,
            data_seed: 7,
            model_seed: 1,
            detector: None,
            train: TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
            sage_hops: 2,
            sage_per_hop: 8,
            test_fraction: 0.3,
        }
    }
}

/// A trained end-to-end xFraud instance: dataset, detector+, split and
/// training history.
pub struct Pipeline {
    pub cfg: PipelineConfig,
    pub dataset: Dataset,
    pub detector: XFraudDetector,
    pub sampler: SageSampler,
    pub train_nodes: Vec<NodeId>,
    pub test_nodes: Vec<NodeId>,
    pub history: Vec<EpochStats>,
}

impl Pipeline {
    /// Generates the dataset, splits it, and trains the detector+.
    pub fn run(cfg: PipelineConfig) -> Pipeline {
        let dataset = Dataset::generate(cfg.preset, cfg.data_seed);
        let (train_nodes, test_nodes) =
            train_test_split(&dataset.graph, cfg.test_fraction, cfg.data_seed ^ 0x5711);
        let det_cfg = cfg
            .detector
            .clone()
            .unwrap_or_else(|| DetectorConfig::small(dataset.graph.feature_dim(), cfg.model_seed));
        let mut detector = XFraudDetector::new(det_cfg);
        let sampler = SageSampler::new(cfg.sage_hops, cfg.sage_per_hop);
        let trainer = Trainer::new(cfg.train.clone());
        let history = trainer.fit(
            &mut detector,
            &dataset.graph,
            &sampler,
            &train_nodes,
            &test_nodes,
        );
        Pipeline {
            cfg,
            dataset,
            detector,
            sampler,
            train_nodes,
            test_nodes,
            history,
        }
    }

    /// Scores the held-out transactions; returns `(scores, labels)`.
    /// Batched on the [`xfraud_gnn::BatchEngine`] (`cfg.train.num_workers`
    /// parallel score workers); the fixed evaluation seed keeps the scores
    /// bit-identical at any worker count.
    pub fn test_scores(&self) -> (Vec<f32>, Vec<bool>) {
        let trainer = Trainer::new(self.cfg.train.clone());
        trainer.evaluate(
            &self.detector,
            &self.dataset.graph,
            &self.sampler,
            &self.test_nodes,
            self.cfg.model_seed ^ 0xe5a1,
        )
    }

    /// Headline test metrics `(AUC, AP, accuracy@0.5)` — the Table 3/7
    /// columns.
    pub fn test_metrics(&self) -> (f64, f64, f64) {
        let (scores, labels) = self.test_scores();
        (
            roc_auc(&scores, &labels),
            average_precision(&scores, &labels),
            accuracy(&scores, &labels, 0.5),
        )
    }

    /// Fraud probability of one transaction node, computed on its full
    /// connected community (no sampling) like the explainer path does.
    pub fn score_transaction(&self, txn: NodeId) -> f32 {
        let community = community_of(&self.dataset.graph, txn, 4000).expect("valid transaction id");
        let nodes: Vec<NodeId> = (0..community.graph.n_nodes()).collect();
        let batch =
            xfraud_gnn::SubgraphBatch::from_nodes(&community.graph, &nodes, &[community.seed]);
        let mut rng = StdRng::seed_from_u64(0);
        predict_scores(&self.detector, &batch, &mut rng)[0]
    }

    /// Draws the §5.1-style community sample: `n` random held-out seed
    /// transactions (a mix of fraud and legit), each expanded to its
    /// connected community, keeping communities with at least `min_links`
    /// and at most `max_nodes` (the paper's 41 communities average 81.6
    /// edges).
    pub fn sample_communities(
        &self,
        n: usize,
        min_links: usize,
        max_nodes: usize,
        seed: u64,
    ) -> Vec<Community> {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        // Stratify towards the paper's 18-fraud / 23-legit mix: interleave
        // fraud- and legit-seeded candidates (fraud seeds are rare, so an
        // unstratified draw would yield almost none).
        let mut fraud: Vec<NodeId> = Vec::new();
        let mut legit: Vec<NodeId> = Vec::new();
        for &v in &self.test_nodes {
            match self.dataset.graph.label(v) {
                Some(true) => fraud.push(v),
                Some(false) => legit.push(v),
                None => {}
            }
        }
        fraud.shuffle(&mut rng);
        legit.shuffle(&mut rng);
        let mut candidates = Vec::with_capacity(fraud.len() + legit.len());
        let mut fi = fraud.into_iter();
        let mut li = legit.into_iter();
        loop {
            match (fi.next(), li.next()) {
                (None, None) => break,
                (f, l) => {
                    candidates.extend(f);
                    candidates.extend(l);
                }
            }
        }
        let mut out = Vec::new();
        let mut used_nodes: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for &txn in &candidates {
            if out.len() >= n {
                break;
            }
            if used_nodes.contains(&txn) {
                continue; // avoid overlapping communities
            }
            let c = community_of(&self.dataset.graph, txn, max_nodes).expect("test node exists");
            if c.n_links() < min_links {
                continue;
            }
            used_nodes.extend(c.original_ids.iter().copied());
            out.push(c);
        }
        out
    }

    /// Risk ground truth for a community's nodes (for annotator simulation).
    pub fn community_risk(&self, community: &Community) -> Vec<f32> {
        community
            .original_ids
            .iter()
            .map(|&v| self.dataset.node_risk[v])
            .collect()
    }

    /// A full-graph sampler for exact (unsampled) inference, as used in the
    /// explainer path.
    pub fn full_sampler(&self) -> FullGraphSampler {
        FullGraphSampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PipelineConfig {
        PipelineConfig {
            train: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_end_to_end_learns() {
        // The simulated small dataset plateaus near the paper's eBay-small
        // AUC (~0.725, Fig. 10); four epochs must be clearly above chance.
        let p = Pipeline::run(quick_cfg());
        let (auc, ap, acc) = p.test_metrics();
        assert!(auc > 0.65, "AUC {auc}");
        assert!(ap > 0.15, "AP {ap}");
        assert!(acc > 0.7, "accuracy {acc}");
        assert!(!p.history.is_empty());
    }

    #[test]
    fn community_sampling_respects_bounds() {
        let p = Pipeline::run(quick_cfg());
        let comms = p.sample_communities(6, 5, 300, 3);
        assert!(!comms.is_empty());
        for c in &comms {
            assert!(c.n_links() >= 5);
            assert!(c.n_nodes() <= 300);
            let risk = p.community_risk(c);
            assert_eq!(risk.len(), c.n_nodes());
        }
    }

    #[test]
    fn score_transaction_returns_probability() {
        let p = Pipeline::run(quick_cfg());
        let txn = p.test_nodes[0];
        let s = p.score_transaction(txn);
        assert!((0.0..=1.0).contains(&s));
    }
}
