//! Typed errors for the end-to-end pipeline.
//!
//! Every failure mode a caller can trigger through the public API —
//! out-of-range configuration, an id that is not a scoreable transaction,
//! a split with nothing in it — surfaces as a variant here instead of a
//! panic, so `xfraud-cli` can print one diagnostic line and exit non-zero.

use std::fmt;

use xfraud_hetgraph::GraphError;
use xfraud_ingest::IngestError;
use xfraud_serve::ServeError;

/// A [`PipelineConfig`](crate::PipelineConfig) setting out of range,
/// reported by [`PipelineConfigBuilder::build`](crate::PipelineConfigBuilder)
/// and by [`Pipeline::run`](crate::Pipeline::run) for hand-assembled
/// configs.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `test_fraction` must lie strictly inside `(0, 1)`.
    TestFraction(f64),
    /// `sage_hops` must be ≥ 1 (a 0-hop sampler sees only the seed).
    SageHops(usize),
    /// `sage_per_hop` must be ≥ 1.
    SagePerHop(usize),
    /// `train.epochs` must be ≥ 1.
    Epochs(usize),
    /// `train.batch_size` must be ≥ 1.
    BatchSize(usize),
    /// An explicit detector config whose input width disagrees with the
    /// dataset preset's feature dimension.
    DetectorDim { detector: usize, dataset: usize },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TestFraction(v) => {
                write!(f, "test_fraction must be in (0, 1), got {v}")
            }
            ConfigError::SageHops(v) => write!(f, "sage_hops must be ≥ 1, got {v}"),
            ConfigError::SagePerHop(v) => write!(f, "sage_per_hop must be ≥ 1, got {v}"),
            ConfigError::Epochs(v) => write!(f, "train.epochs must be ≥ 1, got {v}"),
            ConfigError::BatchSize(v) => write!(f, "train.batch_size must be ≥ 1, got {v}"),
            ConfigError::DetectorDim { detector, dataset } => write!(
                f,
                "detector expects {detector} input features but the dataset preset generates {dataset}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any failure of the end-to-end pipeline API.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration value was out of range (see [`ConfigError`]).
    Config(ConfigError),
    /// A graph construction or query failure bubbled up.
    Graph(GraphError),
    /// A serving-engine failure bubbled up.
    Serve(ServeError),
    /// The train/test split left one side empty — the dataset is too small
    /// for the requested `test_fraction`.
    EmptySplit { n_train: usize, n_test: usize },
    /// A transaction id that does not exist in the graph.
    UnknownTransaction(usize),
    /// A node id that exists but is an entity, not a transaction.
    NotATransaction(usize),
    /// A streaming-ingestion (WAL) failure, rendered to one line — the
    /// underlying `IngestError` wraps `std::io::Error`, which is neither
    /// `Clone` nor `PartialEq`.
    Ingest(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "invalid pipeline config: {e}"),
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Serve(e) => write!(f, "serving error: {e}"),
            Error::EmptySplit { n_train, n_test } => write!(
                f,
                "train/test split is degenerate ({n_train} train / {n_test} test labeled \
                 transactions); adjust test_fraction or use a larger preset"
            ),
            Error::UnknownTransaction(id) => write!(f, "unknown transaction id {id}"),
            Error::NotATransaction(id) => {
                write!(f, "node {id} is not a transaction and cannot be scored")
            }
            Error::Ingest(msg) => write!(f, "ingest error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::UnknownNode(id) => Error::UnknownTransaction(id),
            other => Error::Graph(other),
        }
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e.to_string())
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::UnknownNode(id) => Error::UnknownTransaction(id),
            ServeError::NotATransaction(id) => Error::NotATransaction(id),
            other => Error::Serve(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_errors_map_onto_pipeline_errors() {
        assert_eq!(
            Error::from(ServeError::UnknownNode(9)),
            Error::UnknownTransaction(9)
        );
        assert_eq!(
            Error::from(ServeError::NotATransaction(4)),
            Error::NotATransaction(4)
        );
        assert!(matches!(
            Error::from(ServeError::Shutdown),
            Error::Serve(ServeError::Shutdown)
        ));
        assert_eq!(
            Error::from(GraphError::UnknownNode(2)),
            Error::UnknownTransaction(2)
        );
    }

    #[test]
    fn errors_render_single_line_diagnostics() {
        for e in [
            Error::Config(ConfigError::TestFraction(1.5)),
            Error::EmptySplit {
                n_train: 0,
                n_test: 12,
            },
            Error::UnknownTransaction(3),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }
}
