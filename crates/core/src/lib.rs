//! # xFraud — explainable fraud transaction detection (Rust reproduction)
//!
//! A from-scratch reproduction of *"xFraud: Explainable Fraud Transaction
//! Detection"* (Rao et al., PVLDB 15(3), VLDB 2021): a heterogeneous-GNN
//! **detector** scoring transactions for fraud, and a hybrid **explainer**
//! combining GNNExplainer masks with graph centrality measures.
//!
//! This crate is the front door: it re-exports every subsystem and offers
//! the end-to-end [`Pipeline`] of the paper's Fig. 2 plus the
//! community-annotation [`study`] used by the explainer evaluation (§5).
//!
//! ```no_run
//! use xfraud::{Pipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), xfraud::Error> {
//! let cfg = PipelineConfig::builder().epochs(8).build()?;
//! let pipeline = Pipeline::run(cfg)?;
//! let (auc, ap, acc) = pipeline.test_metrics();
//! println!("test AUC = {auc:.4}, AP = {ap:.4}, accuracy = {acc:.4}");
//!
//! // Freeze the detector behind the online scoring engine (micro-batching
//! // + subgraph/score caches; bit-identical to `score_transaction`).
//! let engine = pipeline.serving_engine().build()?;
//! let scores = engine.score(&pipeline.test_nodes[..4])?;
//! # let _ = scores; Ok(()) }
//! ```
//!
//! Subsystem map (one crate per substrate the paper depends on):
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`tensor`] | `xfraud-tensor` | autodiff substrate |
//! | [`hetgraph`] | `xfraud-hetgraph` | §3.1 graph construction |
//! | [`datagen`] | `xfraud-datagen` | Table 2 datasets (simulated) |
//! | [`nn`] | `xfraud-nn` | layers/AdamW (Appendix C) |
//! | [`gnn`] | `xfraud-gnn` | §3.2 detector(+), baselines, samplers |
//! | [`explain`] | `xfraud-explain` | §3.4/§5 explainers |
//! | [`kvstore`] | `xfraud-kvstore` | §3.3.3 data loading |
//! | [`diskstore`] | `xfraud-diskstore` | §3.3.3 out-of-core storage (mmap block store) |
//! | [`ingest`] | `xfraud-ingest` | streaming ingestion + WAL replay |
//! | [`dist`] | `xfraud-dist` | §3.3 distributed training |
//! | [`metrics`] | `xfraud-metrics` | §4 evaluation |
//! | [`serve`] | `xfraud-serve` | §3.3 online near-real-time scoring |

pub use xfraud_datagen as datagen;
pub use xfraud_diskstore as diskstore;
pub use xfraud_dist as dist;
pub use xfraud_explain as explain;
pub use xfraud_gnn as gnn;
pub use xfraud_hetgraph as hetgraph;
pub use xfraud_ingest as ingest;
pub use xfraud_kernels as kernels;
pub use xfraud_kvstore as kvstore;
pub use xfraud_metrics as metrics;
pub use xfraud_netserve as netserve;
pub use xfraud_nn as nn;
pub use xfraud_rules as rules;
pub use xfraud_serve as serve;
pub use xfraud_tensor as tensor;

mod error;
mod pipeline;
pub mod study;

pub use error::{ConfigError, Error};
pub use pipeline::{Pipeline, PipelineConfig, PipelineConfigBuilder};
