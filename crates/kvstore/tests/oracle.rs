//! Model-based tests: every store implementation must behave exactly like
//! a `BTreeMap` for arbitrary operation sequences (the linearisable
//! single-thread semantics all three promise).

// Proptest volume aside, the LogStore arm writes real files, which Miri's
// isolation forbids; the Miri job covers the stores via the unit tests.
#![cfg(not(miri))]

use std::sync::Arc;

use proptest::prelude::*;
use xfraud_kvstore::{FeatureStore, KvStore, LogStore, ShardedStore, SingleLockStore};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..12)).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Get),
    ]
}

fn temp_log(name: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("xfraud-oracle-{}-{name}.log", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_stores_match_the_oracle(ops in prop::collection::vec(op_strategy(), 1..80),
                                   salt in any::<u64>()) {
        let log_path = temp_log(salt);
        let stores: Vec<Box<dyn KvStore>> = vec![
            Box::new(SingleLockStore::new()),
            Box::new(ShardedStore::new(4)),
            Box::new(LogStore::create(&log_path, 4).expect("log store")),
        ];
        let mut oracle: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    for s in &stores {
                        s.put(&[*k], v);
                    }
                    oracle.insert(vec![*k], v.clone());
                }
                Op::Get(k) => {
                    let expected = oracle.get(&vec![*k]).map(|v| v.as_slice());
                    for s in &stores {
                        let got = s.get(&[*k]);
                        prop_assert_eq!(got.as_deref(), expected, "{} diverged", s.store_name());
                    }
                }
            }
        }
        for s in &stores {
            prop_assert_eq!(s.len(), oracle.len(), "{} len diverged", s.store_name());
        }
        let _ = std::fs::remove_file(log_path);
    }

    #[test]
    fn feature_store_roundtrips_arbitrary_floats(
        rows in prop::collection::vec(prop::collection::vec(-1e6f32..1e6, 4), 1..20)
    ) {
        let fs = FeatureStore::new(Arc::new(ShardedStore::new(4)), 4);
        for (i, row) in rows.iter().enumerate() {
            fs.put_features(i, row);
        }
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&fs.get_features(i), row);
        }
    }
}
