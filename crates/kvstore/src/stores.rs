use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

/// A byte-keyed value store usable from many threads.
///
/// Methods take `&self`: implementations do their own locking, so the same
/// store can be shared across loader threads behind an `Arc`.
pub trait KvStore: Send + Sync {
    fn put(&self, key: &[u8], value: &[u8]);
    fn get(&self, key: &[u8]) -> Option<Bytes>;
    /// Visits the value for `key` in place, returning whether it existed.
    ///
    /// The default copies via [`KvStore::get`]; stores that can expose the
    /// stored bytes directly (e.g. a memory-mapped segment) override this to
    /// skip the copy — the zero-copy read path of the paper's LMDB profile.
    fn get_with(&self, key: &[u8], f: &mut dyn FnMut(&[u8])) -> bool {
        match self.get(key) {
            Some(bytes) => {
                f(&bytes);
                true
            }
            None => false,
        }
    }
    /// Number of live keys.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn store_name(&self) -> &'static str;
    /// Number of lock acquisitions that found the lock already held — the
    /// contention signal behind the paper's Fig. 12 bottleneck. (On a
    /// single-core host, wall-clock parallel speedups are invisible, but
    /// serialisation still shows up here.)
    fn contended_ops(&self) -> u64 {
        0
    }
}

/// One big lock around the whole map: the LevelDB-like profile the paper
/// moved away from. Correct, simple — and every reader serialises against
/// every other reader, which is precisely the Fig. 12 bottleneck.
#[derive(Default)]
pub struct SingleLockStore {
    inner: Mutex<BTreeMap<Vec<u8>, Bytes>>,
    contended: AtomicU64,
}

impl SingleLockStore {
    pub fn new() -> Self {
        SingleLockStore::default()
    }

    fn acquire(&self) -> parking_lot::MutexGuard<'_, BTreeMap<Vec<u8>, Bytes>> {
        match self.inner.try_lock() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock()
            }
        }
    }
}

impl KvStore for SingleLockStore {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.acquire()
            .insert(key.to_vec(), Bytes::copy_from_slice(value));
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.acquire().get(key).cloned()
    }

    fn len(&self) -> usize {
        self.acquire().len()
    }

    fn store_name(&self) -> &'static str {
        "single-lock"
    }

    fn contended_ops(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// Lock-striped store: keys are hashed onto `n_shards` independent
/// `RwLock<HashMap>`s, so readers of different shards (and readers of the
/// *same* shard) proceed concurrently — the LMDB-like multi-reader profile
/// of Fig. 13 that "turned out significant in reducing the training and
/// inference time".
pub struct ShardedStore {
    shards: Vec<RwLock<HashMap<Vec<u8>, Bytes>>>,
    contended: AtomicU64,
}

impl ShardedStore {
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0);
        ShardedStore {
            shards: (0..n_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            contended: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        // FNV-1a: tiny, decent spread, no dependency.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }
}

impl KvStore for ShardedStore {
    fn put(&self, key: &[u8], value: &[u8]) {
        let shard = &self.shards[self.shard_of(key)];
        let mut guard = match shard.try_write() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                shard.write()
            }
        };
        guard.insert(key.to_vec(), Bytes::copy_from_slice(value));
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        let shard = &self.shards[self.shard_of(key)];
        let guard = match shard.try_read() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                shard.read()
            }
        };
        guard.get(key).cloned()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn store_name(&self) -> &'static str {
        "sharded"
    }

    fn contended_ops(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip(store: &dyn KvStore) {
        assert!(store.is_empty());
        store.put(b"a", b"1");
        store.put(b"b", b"2");
        assert_eq!(store.get(b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(store.get(b"missing"), None);
        store.put(b"a", b"overwritten");
        assert_eq!(store.get(b"a").as_deref(), Some(&b"overwritten"[..]));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn single_lock_roundtrip() {
        roundtrip(&SingleLockStore::new());
    }

    #[test]
    fn sharded_roundtrip() {
        roundtrip(&ShardedStore::new(8));
    }

    #[test]
    fn sharded_single_shard_degenerates_gracefully() {
        roundtrip(&ShardedStore::new(1));
    }

    fn concurrent_writes_then_reads(store: Arc<dyn KvStore>) {
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..250u64 {
                        let k = (t * 1000 + i).to_be_bytes();
                        store.put(&k, &k);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.len(), 1000);
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..250u64 {
                        let k = (t * 1000 + i).to_be_bytes();
                        assert_eq!(store.get(&k).as_deref(), Some(&k[..]));
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn single_lock_is_thread_safe() {
        concurrent_writes_then_reads(Arc::new(SingleLockStore::new()));
    }

    #[test]
    fn sharded_is_thread_safe() {
        concurrent_writes_then_reads(Arc::new(ShardedStore::new(16)));
    }
}
