//! The KV-store data-loading substrate (§3.3.3, Appendix C, Fig. 12/13).
//!
//! The paper stores "all graph-related information" in a lightweight KV
//! store and found the choice decisive: LevelDB's effectively
//! single-threaded access pattern made loading the bottleneck (45 min/epoch
//! on eBay-large), while LMDB's multi-reader design brought it to ~1
//! min/epoch. We reproduce the *contention profile* of that finding with
//! three stores behind one trait:
//!
//! * [`SingleLockStore`] — one global mutex around a `BTreeMap`; every
//!   reader serialises (the LevelDB-like "single threaded KVStore" of
//!   Fig. 12);
//! * [`ShardedStore`] — lock-striped shards with `RwLock`s, so concurrent
//!   readers proceed in parallel (the LMDB-like "multi threaded KVStore" of
//!   Fig. 13);
//! * [`LogStore`] — an append-only file log with an in-memory sharded
//!   index and positional reads, for durability-shaped workloads.
//!
//! [`FeatureStore`] layers the GNN-specific API on top: node features in,
//! dense batch matrices out, with a multi-threaded loader
//! ([`FeatureStore::load_parallel`]) that is what the distributed workers
//! use per §3.3.3 ("each worker has its own data loader").

mod feature;
pub mod framing;
mod log_store;
mod stores;

pub use feature::FeatureStore;
pub use log_store::LogStore;
pub use stores::{KvStore, ShardedStore, SingleLockStore};
