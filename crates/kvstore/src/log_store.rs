use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::Path;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::stores::KvStore;

/// One shard of the lock-striped index: key → `(offset, len)` in the log.
type IndexShard = RwLock<std::collections::HashMap<Vec<u8>, (u64, u32)>>;

/// Append-only log with an in-memory index — the durability-shaped store.
///
/// * Writes: a single appender lock serialises `(key_len, key, val_len,
///   val)` records onto the log file and publishes `(offset, len)` into a
///   lock-striped index.
/// * Reads: resolve the index shard under a read lock, then `pread` the
///   value bytes positionally — concurrent readers never contend on the
///   file descriptor (the property that makes LMDB-style readers scale).
pub struct LogStore {
    file: File,
    appender: Mutex<AppendState>,
    index: Vec<IndexShard>,
}

struct AppendState {
    write_handle: File,
    offset: u64,
}

impl LogStore {
    /// Creates (or truncates) a log file at `path`.
    pub fn create(path: &Path, n_shards: usize) -> std::io::Result<Self> {
        assert!(n_shards > 0);
        let write_handle = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let file = File::open(path)?;
        Ok(LogStore {
            file,
            appender: Mutex::new(AppendState {
                write_handle,
                offset: 0,
            }),
            index: (0..n_shards)
                .map(|_| RwLock::new(std::collections::HashMap::new()))
                .collect(),
        })
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % self.index.len() as u64) as usize
    }

    /// Bytes appended so far (log length, including overwritten records —
    /// an append-only log never reclaims).
    pub fn log_bytes(&self) -> u64 {
        self.appender.lock().offset
    }
}

impl KvStore for LogStore {
    fn put(&self, key: &[u8], value: &[u8]) {
        let mut rec = Vec::new();
        crate::framing::encode_into(key, value, &mut rec);
        let value_offset;
        {
            let mut app = self.appender.lock();
            // xlint: allow(p1, reason = "the KvStore trait is infallible by design (PR 1); an append failure leaves no sane continuation")
            app.write_handle.write_all(&rec).expect("log append");
            value_offset = app.offset + crate::framing::value_offset(key.len()) as u64;
            app.offset += rec.len() as u64;
        }
        self.index[self.shard_of(key)]
            .write()
            .insert(key.to_vec(), (value_offset, value.len() as u32));
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        let (offset, len) = *self.index[self.shard_of(key)].read().get(key)?;
        let mut buf = vec![0u8; len as usize];
        // xlint: allow(p1, reason = "offset/len come from our own index; a short read means the log file was truncated externally")
        self.file.read_exact_at(&mut buf, offset).expect("log read");
        Some(Bytes::from(buf))
    }

    fn len(&self) -> usize {
        self.index.iter().map(|s| s.read().len()).sum()
    }

    fn store_name(&self) -> &'static str {
        "append-log"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xfraud-kv-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "backed by a real file; Miri's isolation forbids host I/O"
    )]
    fn log_store_roundtrip_and_overwrite() {
        let path = temp_path("roundtrip");
        let store = LogStore::create(&path, 4).unwrap();
        store.put(b"k1", b"value-one");
        store.put(b"k2", b"value-two");
        assert_eq!(store.get(b"k1").as_deref(), Some(&b"value-one"[..]));
        store.put(b"k1", b"replaced");
        assert_eq!(store.get(b"k1").as_deref(), Some(&b"replaced"[..]));
        assert_eq!(store.len(), 2);
        // Overwrites grow the log (append-only).
        assert!(store.log_bytes() > (b"value-one".len() + b"value-two".len()) as u64);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "backed by a real file; Miri's isolation forbids host I/O"
    )]
    fn log_store_concurrent_readers() {
        let path = temp_path("concurrent");
        let store = Arc::new(LogStore::create(&path, 8).unwrap());
        for i in 0..500u64 {
            store.put(&i.to_be_bytes(), format!("payload-{i}").as_bytes());
        }
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move |_| {
                    for i in 0..500u64 {
                        let expected = format!("payload-{i}");
                        assert_eq!(
                            store.get(&i.to_be_bytes()).as_deref(),
                            Some(expected.as_bytes())
                        );
                    }
                });
            }
        })
        .unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "backed by a real file; Miri's isolation forbids host I/O"
    )]
    fn missing_key_is_none() {
        let path = temp_path("missing");
        let store = LogStore::create(&path, 2).unwrap();
        assert_eq!(store.get(b"nope"), None);
        let _ = std::fs::remove_file(path);
    }
}
