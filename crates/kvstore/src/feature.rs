use std::sync::Arc;
use std::time::Instant;

use xfraud_tensor::Tensor;

use crate::stores::KvStore;

/// Node-feature loading on top of any [`KvStore`]: the role the KV store
/// plays in the paper's training pipeline (features are fetched per sampled
/// subgraph, by every worker, every step).
pub struct FeatureStore {
    store: Arc<dyn KvStore>,
    dim: usize,
}

impl FeatureStore {
    pub fn new(store: Arc<dyn KvStore>, dim: usize) -> Self {
        FeatureStore { store, dim }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn store_name(&self) -> &'static str {
        self.store.store_name()
    }

    fn key(node: usize) -> [u8; 8] {
        (node as u64).to_be_bytes()
    }

    /// Writes one node's feature row.
    pub fn put_features(&self, node: usize, features: &[f32]) {
        assert_eq!(features.len(), self.dim, "feature length mismatch");
        let mut buf = Vec::with_capacity(self.dim * 4);
        for &f in features {
            buf.extend_from_slice(&f.to_le_bytes());
        }
        self.store.put(&Self::key(node), &buf);
    }

    /// Bulk-loads an entire feature matrix (row i = node `base + i`).
    pub fn put_matrix(&self, base: usize, features: &Tensor) {
        assert_eq!(features.cols(), self.dim);
        for r in 0..features.rows() {
            self.put_features(base + r, features.row(r));
        }
    }

    /// Fetches one node's features (zeros if absent — entity nodes are
    /// featureless in the paper's pipeline).
    pub fn get_features(&self, node: usize) -> Vec<f32> {
        let mut row = vec![0.0; self.dim];
        self.fill_row(node, &mut row);
        row
    }

    /// Overwrites `out` in place with one node's stored features (zeros if
    /// absent) — the serving path's per-row rehydration, avoiding the
    /// per-call allocation of [`FeatureStore::get_features`]. Goes through
    /// [`KvStore::get_with`] so mmap-backed stores decode straight from the
    /// mapped page with no intermediate copy. Returns whether the node had a
    /// stored row.
    pub fn fill_row(&self, node: usize, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim, "feature length mismatch");
        let found = self.store.get_with(&Self::key(node), &mut |bytes| {
            for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
                *o = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            }
        });
        if !found {
            out.fill(0.0);
        }
        found
    }

    /// Gathers a dense `[ids.len(), dim]` batch matrix.
    pub fn load_batch(&self, ids: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            self.fill_row(id, out.row_mut(r));
        }
        out
    }

    /// Wraps this store as a shared [`xfraud_hetgraph::FeatureSource`], the
    /// form [`xfraud_hetgraph::ExternalFeatureGraph`] takes to serve
    /// features out-of-core during training/scoring.
    pub fn into_source(self) -> Arc<FeatureStore> {
        Arc::new(self)
    }

    /// The multi-loader experiment of Fig. 12/13: `n_threads` loaders each
    /// gather their slice of `ids` concurrently. Returns
    /// `(rows, elapsed_secs, rows_per_sec)`.
    pub fn load_parallel(&self, ids: &[usize], n_threads: usize) -> (usize, f64, f64) {
        assert!(n_threads > 0);
        // xlint: allow(d2, reason = "throughput measurement is the whole point of this Fig. 12/13 harness")
        let start = Instant::now();
        crossbeam::scope(|scope| {
            for chunk in ids.chunks(ids.len().div_ceil(n_threads)) {
                scope.spawn(move |_| {
                    // Throughput harness: the gathered rows are discarded;
                    // only the wall-clock matters.
                    let _rows = self.load_batch(chunk);
                });
            }
        })
        // xlint: allow(p1, reason = "a panicked loader thread means the benchmark result is meaningless; propagating is correct")
        .expect("loader thread panicked");
        let secs = start.elapsed().as_secs_f64();
        (ids.len(), secs, ids.len() as f64 / secs.max(1e-12))
    }
}

/// A [`FeatureStore`] is a [`xfraud_hetgraph::FeatureSource`]: graphs built
/// topology-only (`GraphBuilder::new(0)`) get their transaction rows served
/// from the store via `ExternalFeatureGraph` — the out-of-core loader path.
impl xfraud_hetgraph::FeatureSource for FeatureStore {
    fn feature_dim(&self) -> usize {
        self.dim
    }

    fn fill_features(&self, v: xfraud_hetgraph::NodeId, out: &mut [f32]) -> bool {
        self.fill_row(v, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stores::{ShardedStore, SingleLockStore};

    #[test]
    fn feature_roundtrip_preserves_floats() {
        let fs = FeatureStore::new(Arc::new(ShardedStore::new(4)), 3);
        fs.put_features(7, &[1.5, -2.25, 0.0]);
        assert_eq!(fs.get_features(7), vec![1.5, -2.25, 0.0]);
    }

    #[test]
    fn absent_nodes_read_as_zeros() {
        let fs = FeatureStore::new(Arc::new(SingleLockStore::new()), 2);
        assert_eq!(fs.get_features(42), vec![0.0, 0.0]);
    }

    #[test]
    fn batch_matrix_matches_rows() {
        let fs = FeatureStore::new(Arc::new(ShardedStore::new(4)), 2);
        let m = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        fs.put_matrix(10, &m);
        let batch = fs.load_batch(&[12, 10]);
        assert_eq!(batch.row(0), &[5.0, 6.0]);
        assert_eq!(batch.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn fill_row_overwrites_stale_contents() {
        let fs = FeatureStore::new(Arc::new(ShardedStore::new(2)), 3);
        fs.put_features(1, &[9.0, 8.0, 7.0]);
        let mut row = [1.0f32, 2.0, 3.0];
        fs.fill_row(1, &mut row);
        assert_eq!(row, [9.0, 8.0, 7.0]);
        fs.fill_row(2, &mut row); // absent → zeros, not leftovers
        assert_eq!(row, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn parallel_load_covers_all_rows() {
        let fs = FeatureStore::new(Arc::new(ShardedStore::new(8)), 4);
        for i in 0..200 {
            fs.put_features(i, &[i as f32; 4]);
        }
        let ids: Vec<usize> = (0..200).collect();
        let (rows, secs, tput) = fs.load_parallel(&ids, 4);
        assert_eq!(rows, 200);
        assert!(secs >= 0.0);
        assert!(tput > 0.0);
    }
}
