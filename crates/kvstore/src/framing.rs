//! Length-prefixed record framing shared by [`crate::LogStore`], the
//! streaming write-ahead log in `xfraud-ingest` and the block segments of
//! `xfraud-diskstore`.
//!
//! A record is `(key_len: u32 LE, key, val_len: u32 LE, val)`. The format is
//! self-delimiting, so a reader can scan a byte stream record-by-record and
//! tell a *clean* end (the stream stops exactly at a record boundary) apart
//! from a *torn* tail (the process died mid-append) — the distinction WAL
//! replay needs: a torn final record is dropped, everything before it is
//! intact.
//!
//! The **checked** variant appends a CRC-32 (IEEE) over the lengths and
//! payload — `(key_len, key, val_len, val, crc32: u32 LE)` — so a reader can
//! additionally tell a *corrupt* record (bits flipped at rest, or a torn
//! write that still happens to parse) from an intact one. New on-disk
//! formats (segment blocks, streamed dataset files) use the checked frames;
//! the unchecked format stays as-is so existing WAL files remain readable.

use std::ops::Range;

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled:
/// the offline workspace has no checksum crate, and 8 lines of const table
/// generation beat vendoring one.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE) hasher over multiple byte slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC32_TABLE[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Bytes a framed record occupies on disk.
pub fn encoded_len(key_len: usize, val_len: usize) -> usize {
    8 + key_len + val_len
}

/// Offset of the value bytes inside a framed record.
pub fn value_offset(key_len: usize) -> usize {
    8 + key_len
}

/// Appends one framed record to `out`.
pub fn encode_into(key: &[u8], value: &[u8], out: &mut Vec<u8>) {
    out.reserve(encoded_len(key.len(), value.len()));
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
}

/// Outcome of decoding the record starting at `pos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStep {
    /// A complete record; `next` is the offset just past it.
    Record {
        key: Range<usize>,
        value: Range<usize>,
        next: usize,
    },
    /// `pos` is exactly the end of the buffer — a clean record boundary.
    Clean,
    /// The buffer ends mid-record (torn append). Bytes from `pos` on are
    /// not a usable record.
    Truncated,
}

/// Decodes the record starting at byte `pos` of `buf`.
pub fn next_frame(buf: &[u8], pos: usize) -> FrameStep {
    if pos == buf.len() {
        return FrameStep::Clean;
    }
    let Some(key_len) = read_u32(buf, pos) else {
        return FrameStep::Truncated;
    };
    let key_start = pos + 4;
    let Some(val_len) = read_u32(buf, key_start + key_len) else {
        return FrameStep::Truncated;
    };
    let val_start = key_start + key_len + 4;
    let next = val_start + val_len;
    if next > buf.len() {
        return FrameStep::Truncated;
    }
    FrameStep::Record {
        key: key_start..key_start + key_len,
        value: val_start..next,
        next,
    }
}

fn read_u32(buf: &[u8], pos: usize) -> Option<usize> {
    let bytes: &[u8; 4] = buf.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(*bytes) as usize)
}

/// Iterator over the complete records of a framed byte buffer. Stops before
/// a torn tail; [`FrameIter::scanned`] tells how many bytes of intact
/// records were consumed and [`FrameIter::clean_end`] whether the buffer
/// ended exactly on a record boundary.
pub struct FrameIter<'a> {
    buf: &'a [u8],
    pos: usize,
    clean: bool,
    done: bool,
}

impl<'a> FrameIter<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        FrameIter {
            buf,
            pos: 0,
            clean: false,
            done: false,
        }
    }

    /// Bytes of complete records scanned so far (a safe truncation point).
    pub fn scanned(&self) -> u64 {
        self.pos as u64
    }

    /// `true` iff iteration exhausted the buffer without a torn tail.
    /// Meaningful only after the iterator returns `None`.
    pub fn clean_end(&self) -> bool {
        self.clean
    }
}

impl<'a> Iterator for FrameIter<'a> {
    /// `(key, value)` byte slices of one record.
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match next_frame(self.buf, self.pos) {
            FrameStep::Record { key, value, next } => {
                self.pos = next;
                Some((&self.buf[key], &self.buf[value]))
            }
            FrameStep::Clean => {
                self.clean = true;
                self.done = true;
                None
            }
            FrameStep::Truncated => {
                self.done = true;
                None
            }
        }
    }
}

/// Bytes a *checked* framed record occupies on disk.
pub fn encoded_len_checked(key_len: usize, val_len: usize) -> usize {
    encoded_len(key_len, val_len) + 4
}

/// Appends one checked framed record — the unchecked layout plus a trailing
/// CRC-32 over everything before it (both length prefixes, key and value).
pub fn encode_checked_into(key: &[u8], value: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.reserve(encoded_len_checked(key.len(), value.len()));
    encode_into(key, value, out);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Outcome of decoding the checked record starting at `pos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckedFrameStep {
    /// A complete, checksum-valid record; `next` is the offset just past it.
    Record {
        key: Range<usize>,
        value: Range<usize>,
        next: usize,
    },
    /// `pos` is exactly the end of the buffer — a clean record boundary.
    Clean,
    /// The buffer ends mid-record (torn append).
    Truncated,
    /// A structurally complete record whose CRC does not match its bytes —
    /// corruption at rest, or a torn write that still parses.
    Corrupt,
}

/// Decodes the checked record starting at byte `pos` of `buf`.
pub fn next_checked_frame(buf: &[u8], pos: usize) -> CheckedFrameStep {
    match next_frame(buf, pos) {
        FrameStep::Clean => CheckedFrameStep::Clean,
        FrameStep::Truncated => CheckedFrameStep::Truncated,
        FrameStep::Record { key, value, next } => {
            let Some(stored) = buf.get(next..next + 4) else {
                return CheckedFrameStep::Truncated;
            };
            // xlint: allow(p1, reason = "get() above proved the 4-byte slice exists; try_into on &[u8;4] cannot fail")
            let stored = u32::from_le_bytes(stored.try_into().expect("4-byte slice"));
            if crc32(&buf[pos..next]) != stored {
                return CheckedFrameStep::Corrupt;
            }
            CheckedFrameStep::Record {
                key,
                value,
                next: next + 4,
            }
        }
    }
}

/// Why a checked-frame read stopped before the end of its buffer.
///
/// Unlike the unchecked [`FrameIter`] (whose torn tail is an *expected*
/// outcome of WAL replay), a checked stream is sealed data: anything short
/// of a clean end is a defect the reader must not confuse with EOF. `at` is
/// the byte offset of the offending record — everything before it is intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends mid-record (torn append) at byte `at`.
    Truncated { at: u64 },
    /// The record starting at byte `at` parses but fails its CRC —
    /// corruption at rest, or a torn write that still happens to parse.
    Corrupt { at: u64 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { at } => write!(f, "torn record at byte {at}"),
            FrameError::Corrupt { at } => write!(f, "record checksum mismatch at byte {at}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Iterator over the records of a checked-framed buffer, yielding a typed
/// [`FrameError`] for a torn tail or a corrupt record instead of silently
/// ending — a CRC mismatch at the final frame must not read as EOF. After
/// an error (reported once) the iterator is exhausted;
/// [`CheckedFrameIter::clean_end`] / [`CheckedFrameIter::corrupt`] remain
/// for callers that drain first and inspect afterwards.
pub struct CheckedFrameIter<'a> {
    buf: &'a [u8],
    pos: usize,
    clean: bool,
    corrupt: bool,
    done: bool,
}

impl<'a> CheckedFrameIter<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        CheckedFrameIter {
            buf,
            pos: 0,
            clean: false,
            corrupt: false,
            done: false,
        }
    }

    /// Bytes of complete valid records scanned so far (a safe truncation
    /// point).
    pub fn scanned(&self) -> u64 {
        self.pos as u64
    }

    /// `true` iff iteration exhausted the buffer without a torn tail or a
    /// corrupt record. Meaningful only after the iterator returns `None`.
    pub fn clean_end(&self) -> bool {
        self.clean
    }

    /// `true` iff iteration stopped on a checksum mismatch (as opposed to a
    /// torn tail or a clean end).
    pub fn corrupt(&self) -> bool {
        self.corrupt
    }
}

impl<'a> Iterator for CheckedFrameIter<'a> {
    /// `(key, value)` byte slices of one record, or why reading stopped.
    type Item = Result<(&'a [u8], &'a [u8]), FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match next_checked_frame(self.buf, self.pos) {
            CheckedFrameStep::Record { key, value, next } => {
                self.pos = next;
                Some(Ok((&self.buf[key], &self.buf[value])))
            }
            CheckedFrameStep::Clean => {
                self.clean = true;
                self.done = true;
                None
            }
            CheckedFrameStep::Truncated => {
                self.done = true;
                Some(Err(FrameError::Truncated {
                    at: self.pos as u64,
                }))
            }
            CheckedFrameStep::Corrupt => {
                self.corrupt = true;
                self.done = true;
                Some(Err(FrameError::Corrupt {
                    at: self.pos as u64,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut buf = Vec::new();
        encode_into(b"alpha", b"one", &mut buf);
        encode_into(b"", b"empty-key", &mut buf);
        encode_into(b"beta", b"", &mut buf);
        let mut it = FrameIter::new(&buf);
        assert_eq!(it.next(), Some((&b"alpha"[..], &b"one"[..])));
        assert_eq!(it.next(), Some((&b""[..], &b"empty-key"[..])));
        assert_eq!(it.next(), Some((&b"beta"[..], &b""[..])));
        assert_eq!(it.next(), None);
        assert!(it.clean_end());
        assert_eq!(it.scanned(), buf.len() as u64);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut buf = Vec::new();
        encode_into(b"k1", b"v1", &mut buf);
        let intact = buf.len();
        encode_into(b"k2", b"v2-long-value", &mut buf);
        // Chop the second record anywhere inside it: after 1 byte of the
        // length prefix, inside the key, inside the value.
        for cut in [intact + 1, intact + 5, buf.len() - 1] {
            let mut it = FrameIter::new(&buf[..cut]);
            assert_eq!(it.next(), Some((&b"k1"[..], &b"v1"[..])));
            assert_eq!(it.next(), None);
            assert!(!it.clean_end(), "cut at {cut} must read as torn");
            assert_eq!(it.scanned(), intact as u64);
        }
    }

    #[test]
    fn value_offset_matches_encoding() {
        let mut buf = Vec::new();
        encode_into(b"key", b"value", &mut buf);
        let off = value_offset(3);
        assert_eq!(&buf[off..off + 5], b"value");
        assert_eq!(buf.len(), encoded_len(3, 5));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.finish(), 0xcbf4_3926);
    }

    #[test]
    fn checked_roundtrip_multiple_records() {
        let mut buf = Vec::new();
        encode_checked_into(b"alpha", b"one", &mut buf);
        encode_checked_into(b"", b"empty-key", &mut buf);
        encode_checked_into(b"beta", b"", &mut buf);
        assert_eq!(
            buf.len(),
            encoded_len_checked(5, 3) + encoded_len_checked(0, 9) + encoded_len_checked(4, 0)
        );
        let mut it = CheckedFrameIter::new(&buf);
        assert_eq!(it.next(), Some(Ok((&b"alpha"[..], &b"one"[..]))));
        assert_eq!(it.next(), Some(Ok((&b""[..], &b"empty-key"[..]))));
        assert_eq!(it.next(), Some(Ok((&b"beta"[..], &b""[..]))));
        assert_eq!(it.next(), None);
        assert!(it.clean_end());
        assert!(!it.corrupt());
        assert_eq!(it.scanned(), buf.len() as u64);
    }

    #[test]
    fn checked_torn_tail_reads_as_truncated_not_corrupt() {
        let mut buf = Vec::new();
        encode_checked_into(b"k1", b"v1", &mut buf);
        let intact = buf.len();
        encode_checked_into(b"k2", b"v2-long-value", &mut buf);
        // Cuts inside the second record: mid-payload and mid-crc-trailer.
        for cut in [intact + 1, intact + 9, buf.len() - 2] {
            let mut it = CheckedFrameIter::new(&buf[..cut]);
            assert_eq!(it.next(), Some(Ok((&b"k1"[..], &b"v1"[..]))));
            assert_eq!(
                it.next(),
                Some(Err(FrameError::Truncated { at: intact as u64 })),
                "cut at {cut}"
            );
            assert_eq!(it.next(), None, "the error is reported once");
            assert!(!it.clean_end(), "cut at {cut}");
            assert!(!it.corrupt(), "a torn tail is not corruption (cut {cut})");
            assert_eq!(it.scanned(), intact as u64);
        }
    }

    #[test]
    fn checked_bit_flip_reads_as_corrupt() {
        let mut buf = Vec::new();
        encode_checked_into(b"k1", b"v1", &mut buf);
        let intact = buf.len();
        encode_checked_into(b"k2", b"v2", &mut buf);
        // Flip one payload bit in the second record's value bytes.
        buf[intact + 10] ^= 0x01;
        let mut it = CheckedFrameIter::new(&buf);
        assert_eq!(it.next(), Some(Ok((&b"k1"[..], &b"v1"[..]))));
        assert_eq!(
            it.next(),
            Some(Err(FrameError::Corrupt { at: intact as u64 }))
        );
        assert_eq!(it.next(), None);
        assert!(it.corrupt());
        assert!(!it.clean_end());
        assert_eq!(it.scanned(), intact as u64);
        // The structural (unchecked) parse still sees a complete record at
        // that offset — the crc is the only thing that flags it.
        assert!(matches!(next_frame(&buf, intact), FrameStep::Record { .. }));
    }

    /// The regression this iterator's typed error exists for: a CRC
    /// mismatch in the *final* frame must surface as an error, not read as
    /// a clean EOF one record early.
    #[test]
    fn corrupt_final_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        encode_checked_into(b"k1", b"v1", &mut buf);
        let last = buf.len();
        encode_checked_into(b"k2", b"v2", &mut buf);
        let crc_byte = buf.len() - 1;
        buf[crc_byte] ^= 0xff;
        let mut it = CheckedFrameIter::new(&buf);
        assert_eq!(it.next(), Some(Ok((&b"k1"[..], &b"v1"[..]))));
        assert_eq!(
            it.next(),
            Some(Err(FrameError::Corrupt { at: last as u64 }))
        );
        assert_eq!(it.next(), None);
        let err = FrameError::Corrupt { at: last as u64 };
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn unchecked_reader_cannot_misparse_checked_stream_cleanly() {
        // The two formats are distinct: a checked stream read as unchecked
        // frames misaligns on the crc trailer (the crc bytes get consumed
        // as the next record's length prefix), so mixing them up is loud
        // rather than silently plausible.
        let mut buf = Vec::new();
        encode_checked_into(b"key-a", b"val-a", &mut buf);
        encode_checked_into(b"key-b", b"val-b", &mut buf);
        let mut it = FrameIter::new(&buf);
        let _ = it.by_ref().count();
        assert!(!it.clean_end());
    }
}
