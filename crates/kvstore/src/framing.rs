//! Length-prefixed record framing shared by [`crate::LogStore`] and the
//! streaming write-ahead log in `xfraud-ingest`.
//!
//! A record is `(key_len: u32 LE, key, val_len: u32 LE, val)`. The format is
//! self-delimiting, so a reader can scan a byte stream record-by-record and
//! tell a *clean* end (the stream stops exactly at a record boundary) apart
//! from a *torn* tail (the process died mid-append) — the distinction WAL
//! replay needs: a torn final record is dropped, everything before it is
//! intact.

use std::ops::Range;

/// Bytes a framed record occupies on disk.
pub fn encoded_len(key_len: usize, val_len: usize) -> usize {
    8 + key_len + val_len
}

/// Offset of the value bytes inside a framed record.
pub fn value_offset(key_len: usize) -> usize {
    8 + key_len
}

/// Appends one framed record to `out`.
pub fn encode_into(key: &[u8], value: &[u8], out: &mut Vec<u8>) {
    out.reserve(encoded_len(key.len(), value.len()));
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
}

/// Outcome of decoding the record starting at `pos`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStep {
    /// A complete record; `next` is the offset just past it.
    Record {
        key: Range<usize>,
        value: Range<usize>,
        next: usize,
    },
    /// `pos` is exactly the end of the buffer — a clean record boundary.
    Clean,
    /// The buffer ends mid-record (torn append). Bytes from `pos` on are
    /// not a usable record.
    Truncated,
}

/// Decodes the record starting at byte `pos` of `buf`.
pub fn next_frame(buf: &[u8], pos: usize) -> FrameStep {
    if pos == buf.len() {
        return FrameStep::Clean;
    }
    let Some(key_len) = read_u32(buf, pos) else {
        return FrameStep::Truncated;
    };
    let key_start = pos + 4;
    let Some(val_len) = read_u32(buf, key_start + key_len) else {
        return FrameStep::Truncated;
    };
    let val_start = key_start + key_len + 4;
    let next = val_start + val_len;
    if next > buf.len() {
        return FrameStep::Truncated;
    }
    FrameStep::Record {
        key: key_start..key_start + key_len,
        value: val_start..next,
        next,
    }
}

fn read_u32(buf: &[u8], pos: usize) -> Option<usize> {
    let bytes: &[u8; 4] = buf.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(*bytes) as usize)
}

/// Iterator over the complete records of a framed byte buffer. Stops before
/// a torn tail; [`FrameIter::scanned`] tells how many bytes of intact
/// records were consumed and [`FrameIter::clean_end`] whether the buffer
/// ended exactly on a record boundary.
pub struct FrameIter<'a> {
    buf: &'a [u8],
    pos: usize,
    clean: bool,
    done: bool,
}

impl<'a> FrameIter<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        FrameIter {
            buf,
            pos: 0,
            clean: false,
            done: false,
        }
    }

    /// Bytes of complete records scanned so far (a safe truncation point).
    pub fn scanned(&self) -> u64 {
        self.pos as u64
    }

    /// `true` iff iteration exhausted the buffer without a torn tail.
    /// Meaningful only after the iterator returns `None`.
    pub fn clean_end(&self) -> bool {
        self.clean
    }
}

impl<'a> Iterator for FrameIter<'a> {
    /// `(key, value)` byte slices of one record.
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match next_frame(self.buf, self.pos) {
            FrameStep::Record { key, value, next } => {
                self.pos = next;
                Some((&self.buf[key], &self.buf[value]))
            }
            FrameStep::Clean => {
                self.clean = true;
                self.done = true;
                None
            }
            FrameStep::Truncated => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut buf = Vec::new();
        encode_into(b"alpha", b"one", &mut buf);
        encode_into(b"", b"empty-key", &mut buf);
        encode_into(b"beta", b"", &mut buf);
        let mut it = FrameIter::new(&buf);
        assert_eq!(it.next(), Some((&b"alpha"[..], &b"one"[..])));
        assert_eq!(it.next(), Some((&b""[..], &b"empty-key"[..])));
        assert_eq!(it.next(), Some((&b"beta"[..], &b""[..])));
        assert_eq!(it.next(), None);
        assert!(it.clean_end());
        assert_eq!(it.scanned(), buf.len() as u64);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut buf = Vec::new();
        encode_into(b"k1", b"v1", &mut buf);
        let intact = buf.len();
        encode_into(b"k2", b"v2-long-value", &mut buf);
        // Chop the second record anywhere inside it: after 1 byte of the
        // length prefix, inside the key, inside the value.
        for cut in [intact + 1, intact + 5, buf.len() - 1] {
            let mut it = FrameIter::new(&buf[..cut]);
            assert_eq!(it.next(), Some((&b"k1"[..], &b"v1"[..])));
            assert_eq!(it.next(), None);
            assert!(!it.clean_end(), "cut at {cut} must read as torn");
            assert_eq!(it.scanned(), intact as u64);
        }
    }

    #[test]
    fn value_offset_matches_encoding() {
        let mut buf = Vec::new();
        encode_into(b"key", b"value", &mut buf);
        let off = value_offset(3);
        assert_eq!(&buf[off..off + 5], b"value");
        assert_eq!(buf.len(), encoded_len(3, 5));
    }
}
