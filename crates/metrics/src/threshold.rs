/// Confusion counts at one threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl Confusion {
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.tp + self.fn_)
    }
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.tn + self.fp)
    }
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }
    /// Recall is the TPR by another name (Appendix H.1).
    pub fn recall(&self) -> f64 {
        self.tpr()
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Confusion counts with decision rule `score >= threshold → fraud`.
pub fn confusion_at(scores: &[f32], labels: &[bool], threshold: f32) -> Confusion {
    assert_eq!(scores.len(), labels.len());
    let mut c = Confusion {
        tp: 0,
        fp: 0,
        tn: 0,
        fn_: 0,
    };
    for (&s, &y) in scores.iter().zip(labels) {
        match (s >= threshold, y) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// A sweep over an explicit threshold grid — the machinery behind Tables
/// 14–19. Follows the paper's `-` convention: a threshold that no score
/// reaches yields `None` ("the scores do not exist for scores ≥ threshold").
#[derive(Debug, Clone)]
pub struct ThresholdReport {
    pub thresholds: Vec<f32>,
    pub cells: Vec<Option<Confusion>>,
}

impl ThresholdReport {
    pub fn sweep(scores: &[f32], labels: &[bool], thresholds: &[f32]) -> Self {
        let max_score = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let cells = thresholds
            .iter()
            .map(|&t| (max_score >= t).then(|| confusion_at(scores, labels, t)))
            .collect();
        ThresholdReport {
            thresholds: thresholds.to_vec(),
            cells,
        }
    }

    /// The three standard grids of the paper's appendix tables.
    pub fn paper_grids() -> [Vec<f32>; 3] {
        let coarse: Vec<f32> = (1..=9).map(|i| i as f32 / 10.0).collect(); // Table 14/17
        let mut mid = vec![0.95, 0.96];
        mid.extend((970..=977).map(|i| i as f32 / 1000.0)); // Table 15/18
        let fine: Vec<f32> = (978..=987).map(|i| i as f32 / 1000.0).collect(); // Table 16/19
        [coarse, mid, fine]
    }

    /// Formats one metric row ("-" where the cell is undefined).
    pub fn row(&self, metric: impl Fn(&Confusion) -> f64) -> String {
        self.cells
            .iter()
            .map(|c| match c {
                Some(c) => format!("{:.4}", metric(c)),
                None => "-".to_string(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f32; 6] = [0.95, 0.8, 0.6, 0.4, 0.2, 0.05];
    const LABELS: [bool; 6] = [true, true, false, true, false, false];

    #[test]
    fn confusion_counts_are_exact() {
        let c = confusion_at(&SCORES, &LABELS, 0.5);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 2,
                fn_: 1
            }
        );
        assert!((c.tpr() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fpr() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complementary_rates() {
        let c = confusion_at(&SCORES, &LABELS, 0.3);
        assert!((c.tpr() + c.fnr() - 1.0).abs() < 1e-12);
        assert!((c.tnr() + c.fpr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_marks_unreachable_thresholds_as_none() {
        let rep = ThresholdReport::sweep(&SCORES, &LABELS, &[0.5, 0.9, 0.99]);
        assert!(rep.cells[0].is_some());
        assert!(rep.cells[1].is_some());
        assert!(rep.cells[2].is_none(), "no score reaches 0.99");
        assert!(rep.row(Confusion::tpr).ends_with('-'));
    }

    #[test]
    fn paper_grids_cover_the_published_ranges() {
        let [coarse, mid, fine] = ThresholdReport::paper_grids();
        assert_eq!(coarse.first().copied(), Some(0.1));
        assert_eq!(coarse.last().copied(), Some(0.9));
        assert!((mid[2] - 0.97).abs() < 1e-6);
        assert!((fine.last().unwrap() - 0.987).abs() < 1e-6);
    }

    #[test]
    fn empty_input_gives_zero_rates() {
        let c = confusion_at(&[], &[], 0.5);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.precision(), 0.0);
    }
}
