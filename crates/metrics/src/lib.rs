//! Classification metrics for the detector evaluation (§4, Appendix H).
//!
//! Everything operates on parallel `scores: &[f32]` / `labels: &[bool]`
//! slices where `true` = fraud = positive. Implemented from first
//! principles:
//!
//! * [`roc_auc`] — rank-based (Mann–Whitney) with proper tie handling;
//! * [`average_precision`] — the AP column of Table 7;
//! * [`pr_curve`] / [`roc_curve`] — the series behind Fig. 8/9/15;
//! * [`ThresholdReport`] — TPR/TNR/FPR/FNR + precision/recall at an explicit
//!   threshold grid (Tables 14–19), including the paper's `-` convention
//!   when no score reaches a threshold;
//! * [`precision_at_base_rate`] — the Appendix-H.4 back-mapping of precision
//!   onto the unsampled fraud rate.

mod curves;
mod threshold;

pub use curves::{pr_curve, roc_curve, trapezoid_area, CurvePoint};
pub use threshold::{confusion_at, Confusion, ThresholdReport};

/// Area under the ROC curve via the rank statistic, with average ranks for
/// tied scores. Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Assign average ranks over tie groups (1-based ranks).
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let n_pos = n_pos as f64;
    let n_neg = n_neg as f64;
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Average precision: the area under the precision-recall curve computed as
/// `Σ (R_k − R_{k−1}) · P_k` over descending score order (sklearn's
/// definition, which the paper's AP column uses).
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    let mut prev_recall = 0.0f64;
    let mut k = 0;
    while k < order.len() {
        // Process tie groups atomically so equal scores share a threshold.
        let mut j = k;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[k]] {
            j += 1;
        }
        for &idx in &order[k..=j] {
            if labels[idx] {
                tp += 1;
            }
        }
        let precision = tp as f64 / (j + 1) as f64;
        let recall = tp as f64 / n_pos as f64;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
        k = j + 1;
    }
    ap
}

/// Accuracy at a fixed decision threshold (0.5 unless stated otherwise).
pub fn accuracy(scores: &[f32], labels: &[bool], threshold: f32) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = scores
        .iter()
        .zip(labels)
        .filter(|(&s, &y)| (s >= threshold) == y)
        .count();
    correct as f64 / labels.len() as f64
}

/// Appendix H.4: maps a precision measured on the *down-sampled* label set
/// (fraud rate `sampled_rate`) back to the precision on the original stream
/// (fraud rate `true_rate`), assuming recall is unchanged and benign were
/// uniformly down-sampled. E.g. the paper's 0.98 precision at 4.33 % maps to
/// ≈0.32 at 0.043 %... scaled for the pre-filter rate.
pub fn precision_at_base_rate(precision: f64, sampled_rate: f64, true_rate: f64) -> f64 {
    if precision <= 0.0 {
        return 0.0;
    }
    // On the sampled set: FP per TP = (1-p)/p. Benign were down-sampled by
    // factor f = (sampled odds) / (true odds); undoing it multiplies FP.
    let sampled_odds = sampled_rate / (1.0 - sampled_rate);
    let true_odds = true_rate / (1.0 - true_rate);
    let inflate = sampled_odds / true_odds;
    let fp_per_tp = (1.0 - precision) / precision * inflate;
    1.0 / (1.0 + fp_per_tp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inv = [true, true, false, false];
        assert!(roc_auc(&scores, &inv).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_as_half_credit() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // pos scores {0.8, 0.4}, neg {0.6, 0.2}: pairs won = 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(roc_auc(&[0.3, 0.4], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_known_value() {
        // Order: pos, neg, pos → P@1=1 (ΔR=0.5), P@3=2/3 (ΔR=0.5) → 0.8333
        let scores = [0.9, 0.8, 0.7];
        let labels = [true, false, true];
        let ap = average_precision(&scores, &labels);
        assert!((ap - (0.5 + 0.5 * 2.0 / 3.0)).abs() < 1e-12, "ap={ap}");
    }

    #[test]
    fn ap_equals_base_rate_for_random_constant_scores() {
        let scores = vec![0.5f32; 100];
        let labels: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let ap = average_precision(&scores, &labels);
        assert!((ap - 0.25).abs() < 1e-9, "ap={ap}");
    }

    #[test]
    fn accuracy_counts_both_classes() {
        let scores = [0.9, 0.4, 0.6, 0.1];
        let labels = [true, true, false, false];
        assert!((accuracy(&scores, &labels, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn base_rate_mapping_matches_paper_magnitudes() {
        // Paper: 0.98 precision at 4.33 % → 0.32 at 0.043 % after the rule
        // filter (Appendix H.4).
        let p = precision_at_base_rate(0.9822, 0.0433, 0.00043);
        assert!((0.25..0.45).contains(&p), "p={p}");
        // And 0.95 → ≈0.16.
        let p2 = precision_at_base_rate(0.9539, 0.0433, 0.00043);
        assert!((0.1..0.25).contains(&p2), "p2={p2}");
    }
}
