/// One point of a PR or ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Recall (PR) or false-positive rate (ROC).
    pub x: f64,
    /// Precision (PR) or true-positive rate (ROC).
    pub y: f64,
    /// The score threshold that produced this point.
    pub threshold: f32,
}

/// Precision–recall curve over all distinct score thresholds, descending
/// (Fig. 8). The first point is `(recall=0, precision=1)` by convention.
pub fn pr_curve(scores: &[f32], labels: &[bool]) -> Vec<CurvePoint> {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y).count();
    let mut points = vec![CurvePoint {
        x: 0.0,
        y: 1.0,
        threshold: f32::INFINITY,
    }];
    if n_pos == 0 {
        return points;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut tp = 0usize;
    let mut k = 0;
    while k < order.len() {
        let mut j = k;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[k]] {
            j += 1;
        }
        for &idx in &order[k..=j] {
            if labels[idx] {
                tp += 1;
            }
        }
        points.push(CurvePoint {
            x: tp as f64 / n_pos as f64,
            y: tp as f64 / (j + 1) as f64,
            threshold: scores[order[k]],
        });
        k = j + 1;
    }
    points
}

/// ROC curve (FPR, TPR) over all distinct score thresholds, descending
/// (Fig. 9/15). Starts at `(0,0)` and ends at `(1,1)`.
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Vec<CurvePoint> {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y).count();
    let n_neg = labels.len() - n_pos;
    let mut points = vec![CurvePoint {
        x: 0.0,
        y: 0.0,
        threshold: f32::INFINITY,
    }];
    if n_pos == 0 || n_neg == 0 {
        return points;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut k = 0;
    while k < order.len() {
        let mut j = k;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[k]] {
            j += 1;
        }
        for &idx in &order[k..=j] {
            if labels[idx] {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        points.push(CurvePoint {
            x: fp as f64 / n_neg as f64,
            y: tp as f64 / n_pos as f64,
            threshold: scores[order[k]],
        });
        k = j + 1;
    }
    points
}

/// Trapezoidal area under a curve's points (validation helper: the area
/// under [`roc_curve`] must match [`crate::roc_auc`]).
pub fn trapezoid_area(points: &[CurvePoint]) -> f64 {
    points
        .windows(2)
        .map(|w| (w[1].x - w[0].x) * (w[1].y + w[0].y) / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roc_auc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roc_curve_area_matches_rank_auc() {
        let mut rng = StdRng::seed_from_u64(5);
        let scores: Vec<f32> = (0..300).map(|_| rng.gen()).collect();
        let labels: Vec<bool> = scores.iter().map(|&s| rng.gen::<f32>() < s).collect();
        let curve = roc_curve(&scores, &labels);
        let area = trapezoid_area(&curve);
        let auc = roc_auc(&scores, &labels);
        assert!((area - auc).abs() < 1e-9, "area={area} auc={auc}");
    }

    #[test]
    fn pr_curve_monotone_recall_and_endpoints() {
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2];
        let labels = [true, false, true, false, true];
        let curve = pr_curve(&scores, &labels);
        assert_eq!(curve[0].x, 0.0);
        assert_eq!(curve[0].y, 1.0);
        assert!(
            (curve.last().unwrap().x - 1.0).abs() < 1e-12,
            "final recall = 1"
        );
        for w in curve.windows(2) {
            assert!(w[1].x >= w[0].x, "recall must not decrease");
        }
    }

    #[test]
    fn roc_curve_ends_at_one_one() {
        let scores = [0.9, 0.1, 0.5];
        let labels = [true, false, false];
        let last = *roc_curve(&scores, &labels).last().unwrap();
        assert_eq!((last.x, last.y), (1.0, 1.0));
    }

    #[test]
    fn degenerate_curves_are_single_points() {
        assert_eq!(pr_curve(&[0.4], &[false]).len(), 1);
        assert_eq!(roc_curve(&[0.4], &[false]).len(), 1);
    }
}
