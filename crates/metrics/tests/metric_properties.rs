//! Property tests for the metric suite.

use proptest::prelude::*;
use xfraud_metrics::{
    accuracy, average_precision, confusion_at, pr_curve, roc_auc, roc_curve, trapezoid_area,
    Confusion, ThresholdReport,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ap_is_bounded_and_at_least_base_rate_under_perfect_ranking(
        n_pos in 1usize..20, n_neg in 1usize..20
    ) {
        // Perfect ranking: every positive above every negative → AP = 1.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            scores.push(1.0 + i as f32 * 1e-3);
            labels.push(true);
        }
        for i in 0..n_neg {
            scores.push(-(i as f32) * 1e-3);
            labels.push(false);
        }
        prop_assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-9);
        prop_assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn confusion_counts_always_partition_the_data(
        scores in prop::collection::vec(0.0f32..1.0, 1..50),
        labels in prop::collection::vec(any::<bool>(), 1..50),
        threshold in 0.0f32..1.0,
    ) {
        let n = scores.len().min(labels.len());
        let c = confusion_at(&scores[..n], &labels[..n], threshold);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, n);
        prop_assert!((0.0..=1.0).contains(&c.tpr()));
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((c.recall() - c.tpr()).abs() < 1e-12, "recall is TPR");
    }

    #[test]
    fn threshold_sweep_rates_are_monotone(
        scores in prop::collection::vec(0.0f32..1.0, 4..60),
        labels in prop::collection::vec(any::<bool>(), 4..60),
    ) {
        let n = scores.len().min(labels.len());
        let grid: Vec<f32> = (1..10).map(|i| i as f32 / 10.0).collect();
        let rep = ThresholdReport::sweep(&scores[..n], &labels[..n], &grid);
        // TPR and FPR are non-increasing as the threshold rises.
        let series: Vec<Option<(f64, f64)>> = rep
            .cells
            .iter()
            .map(|c| c.as_ref().map(|c| (c.tpr(), c.fpr())))
            .collect();
        for w in series.windows(2) {
            if let (Some((tpr0, fpr0)), Some((tpr1, fpr1))) = (w[0], w[1]) {
                prop_assert!(tpr1 <= tpr0 + 1e-12);
                prop_assert!(fpr1 <= fpr0 + 1e-12);
            }
        }
    }

    #[test]
    fn curves_are_consistent_with_scalar_metrics(
        scores in prop::collection::vec(0.0f32..1.0, 4..60),
        labels in prop::collection::vec(any::<bool>(), 4..60),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let both = labels.iter().any(|&y| y) && labels.iter().any(|&y| !y);
        prop_assume!(both);
        let roc = roc_curve(scores, labels);
        prop_assert!((trapezoid_area(&roc) - roc_auc(scores, labels)).abs() < 1e-9);
        // The PR curve's final recall is 1 and every precision is in [0,1].
        let pr = pr_curve(scores, labels);
        prop_assert!((pr.last().unwrap().x - 1.0).abs() < 1e-12);
        prop_assert!(pr.iter().all(|p| (0.0..=1.0 + 1e-12).contains(&p.y)));
        // Accuracy at extreme thresholds equals the majority class rate.
        let pos_rate = labels.iter().filter(|&&y| y).count() as f64 / n as f64;
        prop_assert!((accuracy(scores, labels, -1.0) - pos_rate).abs() < 1e-12);
        prop_assert!((accuracy(scores, labels, 2.0) - (1.0 - pos_rate)).abs() < 1e-12);
    }
}

#[test]
fn confusion_struct_is_plain_data() {
    let c = Confusion {
        tp: 1,
        fp: 2,
        tn: 3,
        fn_: 4,
    };
    assert_eq!(c.tpr(), 0.2);
    assert_eq!(c.fpr(), 0.4);
}
