//! Sharded LRU cache for serving-side artefacts (sampled ego-subgraphs,
//! memoised scores).
//!
//! Sampling dominates per-transaction scoring cost on sparse transaction
//! graphs (Fig. 10 — the entire reason detector+ exists), so the serving
//! engine amortises it: the ego-subgraph of a node is a pure function of
//! `(node, sampler shape, graph version, serving seed)`, which makes it
//! safe to cache and share across requests. Keys carry the shape and
//! version explicitly so a sampler swap or a graph update can never serve a
//! stale subgraph.
//!
//! Each shard is an independent `Mutex<LruShard>` with an O(1)
//! doubly-linked LRU list over a slab, so concurrent callers touching
//! different nodes rarely contend — the same lock-striping discipline as
//! `xfraud_kvstore::ShardedStore`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Identity of one cached artefact: which node, under which sampler shape
/// (see `Sampler::shape_key`), at which graph version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub node: usize,
    pub shape: u64,
    pub version: u64,
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: CacheKey,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an O(1) LRU over a slab of slots.
struct LruShard<V> {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<V> LruShard<V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    fn insert(&mut self, key: CacheKey, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.touch(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "full shard has a tail");
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let slot = Slot {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    fn remove_where(&mut self, pred: impl Fn(&CacheKey) -> bool) -> usize {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, &i)| i)
            .collect();
        for &i in &doomed {
            self.unlink(i);
            self.map.remove(&self.slots[i].key);
            self.free.push(i);
        }
        doomed.len()
    }
}

/// The sharded cache. `V` is cheap to clone — the engine stores
/// `Arc<SubgraphBatch>` (subgraph tier) and `f32` (score tier).
pub struct ShardedLru<V> {
    shards: Vec<Mutex<LruShard<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// `capacity` is the total entry budget, split evenly across `shards`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// All of one node's entries land in one shard (any shape / version),
    /// so invalidating a node scans a single shard.
    fn shard_of(&self, node: usize) -> &Mutex<LruShard<V>> {
        let mut z = (node as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        &self.shards[(z % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, bumping it to most-recently-used and counting the
    /// hit/miss.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let mut shard = self.shard_of(key.node).lock();
        if let Some(&i) = shard.map.get(key) {
            shard.touch(i);
            let v = shard.slots[i].value.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(v)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    pub fn insert(&self, key: CacheKey, value: V) {
        self.shard_of(key.node).lock().insert(key, value);
    }

    /// Drops every entry for `node`, across all shapes and versions — the
    /// incremental-update hook for "this node's neighbourhood changed".
    /// Returns the number of entries removed.
    pub fn invalidate_node(&self, node: usize) -> usize {
        self.shard_of(node).lock().remove_where(|k| k.node == node)
    }

    /// Drops everything — the hook for "the whole graph moved on".
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().remove_where(|_| true);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(node: usize) -> CacheKey {
        CacheKey {
            node,
            shape: 7,
            version: 0,
        }
    }

    #[test]
    fn get_after_insert_roundtrips_and_counts() {
        let c: ShardedLru<u32> = ShardedLru::new(8, 2);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), 10);
        assert_eq!(c.get(&key(1)), Some(10));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.insert(key(1), 11); // overwrite, no growth
        assert_eq!(c.get(&key(1)), Some(11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let c: ShardedLru<usize> = ShardedLru::new(3, 1);
        for n in 0..3 {
            c.insert(key(n), n);
        }
        let _ = c.get(&key(0)); // 0 is now MRU; 1 is LRU
        c.insert(key(3), 3);
        assert_eq!(c.get(&key(1)), None, "LRU entry evicted");
        for n in [0usize, 2, 3] {
            assert_eq!(c.get(&key(n)), Some(n), "entry {n} survives");
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn eviction_churn_stays_consistent() {
        let c: ShardedLru<usize> = ShardedLru::new(16, 4);
        for round in 0..10 {
            for n in 0..64 {
                c.insert(key(n), n + round);
            }
        }
        assert!(c.len() <= 16);
        // Whatever survived must read back with the latest value.
        for n in 0..64 {
            if let Some(v) = c.get(&key(n)) {
                assert_eq!(v, n + 9);
            }
        }
    }

    #[test]
    fn invalidate_node_removes_every_shape_and_version() {
        let c: ShardedLru<u8> = ShardedLru::new(16, 4);
        for shape in [1u64, 2] {
            for version in [0u64, 1] {
                c.insert(
                    CacheKey {
                        node: 5,
                        shape,
                        version,
                    },
                    1,
                );
            }
        }
        c.insert(key(6), 2);
        assert_eq!(c.invalidate_node(5), 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(6)), Some(2));
    }

    #[test]
    fn clear_empties_all_shards() {
        let c: ShardedLru<u8> = ShardedLru::new(32, 8);
        for n in 0..20 {
            c.insert(key(n), 0);
        }
        c.clear();
        assert!(c.is_empty());
        c.insert(key(3), 9); // still usable after clear
        assert_eq!(c.get(&key(3)), Some(9));
    }
}
