//! # xfraud-serve — the online scoring engine
//!
//! The serving half of xFraud's production story: a trained
//! [`XFraudDetector`](xfraud_gnn::XFraudDetector) frozen behind a
//! [`ScoringEngine`] that answers concurrent `score(txn_ids)` calls with
//! micro-batching, duplicate-id coalescing and a two-tier sharded LRU cache
//! (sampled ego-subgraphs + memoised scores), while staying **bit-identical**
//! to the sequential reference [`score_one`] — and therefore to
//! `Pipeline::score_transaction` — for any concurrency, batch size or cache
//! configuration.
//!
//! ```no_run
//! use std::sync::Arc;
//! use xfraud_serve::ScoringEngine;
//! use xfraud_gnn::{CommunitySampler, DetectorConfig, XFraudDetector};
//! # let graph: xfraud_hetgraph::HetGraph = unimplemented!();
//! let detector = XFraudDetector::new(DetectorConfig::small(graph.feature_dim(), 0));
//! let engine = ScoringEngine::builder(detector, graph, Box::new(CommunitySampler::new(4000)))
//!     .max_batch(64)
//!     .seed(7)
//!     .build()?;
//! let scores = engine.score(&[12, 34])?;
//! println!("{}", engine.metrics());
//! # Ok::<(), xfraud_serve::ServeError>(())
//! ```
//!
//! Operational hooks for the incremental path:
//! [`ScoringEngine::swap_detector`] (weights refreshed, subgraph cache
//! survives), [`ScoringEngine::invalidate_transaction`] (one neighbourhood
//! changed) and [`ScoringEngine::bump_graph_version`] (new graph snapshot).

mod cache;
mod engine;
mod error;
mod metrics;

pub use cache::{CacheKey, ShardedLru};
pub use engine::{preload_features, score_one, ScoringEngine, ScoringEngineBuilder, ServeConfig};
pub use error::ServeError;
pub use metrics::{MetricsSnapshot, ServeMetrics};
