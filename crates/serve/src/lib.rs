//! # xfraud-serve — the online scoring engine
//!
//! The serving half of xFraud's production story: a trained
//! [`XFraudDetector`](xfraud_gnn::XFraudDetector) frozen behind a
//! [`ScoringEngine`] that answers concurrent `score(txn_ids)` calls with
//! micro-batching, duplicate-id coalescing and a two-tier sharded LRU cache
//! (sampled ego-subgraphs + memoised scores), while staying **bit-identical**
//! to the sequential reference [`score_one`] — and therefore to
//! `Pipeline::score_transaction` — for any concurrency, batch size or cache
//! configuration.
//!
//! ```no_run
//! use xfraud_serve::ScoringEngine;
//! use xfraud_gnn::{CommunitySampler, DetectorConfig, XFraudDetector};
//! use xfraud_hetgraph::{GraphBuilder, NodeType};
//!
//! // Two transactions sharing a payment token — the smallest graph with
//! // something to score. Production graphs come from `datagen` or ingest.
//! let mut b = GraphBuilder::new(4);
//! let t0 = b.add_txn([0.4, 0.1, 0.0, 0.2], Some(false));
//! let t1 = b.add_txn([0.9, 0.8, 0.1, 0.7], None);
//! let pmt = b.add_entity(NodeType::Pmt);
//! b.link(t0, pmt).unwrap();
//! b.link(t1, pmt).unwrap();
//! let graph = b.finish().unwrap();
//!
//! let detector = XFraudDetector::new(DetectorConfig::small(graph.feature_dim(), 0));
//! let engine = ScoringEngine::builder(detector, graph, Box::new(CommunitySampler::new(4000)))
//!     .max_batch(64)
//!     .seed(7)
//!     .build()?;
//! let scores = engine.score(&[t0, t1])?;
//! println!("{scores:?}\n{}", engine.metrics());
//! # Ok::<(), xfraud_serve::ServeError>(())
//! ```
//!
//! Operational hooks for the incremental path:
//! [`ScoringEngine::swap_detector`] (weights refreshed, subgraph cache
//! survives), [`ScoringEngine::invalidate_transaction`] (one neighbourhood
//! changed) and [`ScoringEngine::bump_graph_version`] (new graph snapshot).
//! For live traffic, [`ScoringEngine::apply_events`] appends streamed
//! [`GraphEvent`](xfraud_hetgraph::GraphEvent)s to a delta overlay over the
//! frozen base (newly arrived transactions are scoreable immediately) and
//! [`ScoringEngine::compact`] folds the overlay back into an immutable CSR
//! base without perturbing scores.

mod cache;
mod engine;
mod error;
mod metrics;

pub use cache::{CacheKey, ShardedLru};
pub use engine::{preload_features, score_one, ScoringEngine, ScoringEngineBuilder, ServeConfig};
pub use error::ServeError;
pub use metrics::{MetricsSnapshot, ServeMetrics};
