use std::fmt;

use xfraud_hetgraph::GraphError;

/// Typed serving failures. Every user-controllable input that used to panic
/// somewhere in the scoring path maps onto one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine's worker thread is gone (the engine was dropped while a
    /// request was in flight).
    Shutdown,
    /// A scored id does not exist in the graph.
    UnknownNode(usize),
    /// A scored id exists but is an entity, not a transaction.
    NotATransaction(usize),
    /// An engine builder setting is out of range.
    InvalidConfig(String),
    /// A swapped-in detector does not fit the graph it would serve.
    DetectorMismatch {
        detector_dim: usize,
        graph_dim: usize,
    },
    /// A streamed-in [`xfraud_hetgraph::GraphEvent`] was rejected by the
    /// live graph (unknown endpoint, schema-invalid link, wrong feature
    /// width, label on an entity).
    Graph(GraphError),
    /// The OS refused to spawn the batcher worker thread at build time.
    WorkerSpawn(String),
    /// A serving invariant was violated — a bug in the engine, not in the
    /// caller's input. Returned instead of panicking so one poisoned
    /// request cannot take the whole scoring thread down.
    Internal(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "scoring engine is shut down"),
            ServeError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            ServeError::NotATransaction(id) => {
                write!(f, "node {id} is not a transaction and cannot be scored")
            }
            ServeError::InvalidConfig(msg) => write!(f, "invalid engine config: {msg}"),
            ServeError::DetectorMismatch {
                detector_dim,
                graph_dim,
            } => write!(
                f,
                "detector expects {detector_dim} input features but the graph has {graph_dim}"
            ),
            ServeError::Graph(e) => write!(f, "graph event rejected: {e}"),
            ServeError::WorkerSpawn(e) => write!(f, "failed to spawn batcher thread: {e}"),
            ServeError::Internal(msg) => write!(f, "internal serving invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Graph(e)
    }
}
