//! The online scoring engine: micro-batched, cache-backed, near-real-time
//! transaction scoring — the serving half of the paper's production story
//! ("a near-real-time detector at eBay scale").
//!
//! Many caller threads call [`ScoringEngine::score`] concurrently; requests
//! land on one bounded queue and a batcher thread drains them in
//! *micro-batches* (the work-queue discipline of `xfraud_gnn::BatchEngine`,
//! turned from throughput-side training to latency-side serving). Within a
//! micro-batch duplicate transaction ids are deduplicated, so one forward
//! pass serves every caller asking about the same transaction, and each
//! unique id is resolved through two cache tiers:
//!
//! 1. a **score cache** — legal because an eval-mode forward pass is a pure
//!    function of `(weights, subgraph)`; invalidated when the detector is
//!    swapped ([`ScoringEngine::swap_detector`]) or the graph version moves;
//! 2. a **subgraph cache** of sampled ego-subgraphs keyed by
//!    `(node, sampler shape, graph version)` — sampling dominates scoring
//!    cost on sparse transaction graphs (Fig. 10), and the cached batch
//!    *survives* detector swaps, which is exactly what the incremental
//!    fine-tuning path (`xfraud_gnn::incremental`) needs: refresh weights
//!    weekly, keep the neighbourhoods.
//!
//! **Determinism contract:** for any number of callers, any micro-batch
//! size and any cache configuration, `score` returns exactly the bits of
//! the sequential reference [`score_one`] (and therefore of
//! `Pipeline::score_transaction`). This holds because the per-node sampling
//! RNG is derived from `(seed, SERVE stream, graph version, node)` — never
//! from arrival order — and eval-mode forwards draw nothing from the RNG.
//!
//! **Lock-free graph reads:** the live graph is published through an
//! [`EpochCell`] rather than guarded by a `RwLock`. Scoring pins the
//! current `(graph, version)` snapshot — two atomic stores, no lock, never
//! blocked by writers — while `apply_events`/`compact` build a successor
//! image off to the side and publish it; the old image is retired and freed
//! only after the last pinned reader drops. Ingest therefore never stalls
//! the scoring hot path, and a reader always observes an immutable,
//! internally consistent graph.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;

use xfraud_gnn::{batch_rng, predict_scores, streams, Sampler, SubgraphBatch, XFraudDetector};
use xfraud_hetgraph::{
    DeltaGraph, EpochCell, GraphEvent, GraphSnapshot, GraphView, HetGraph, NodeId, NodeType,
};
use xfraud_kvstore::FeatureStore;

use crate::cache::{CacheKey, ShardedLru};
use crate::error::ServeError;
use crate::metrics::{MetricsSnapshot, ServeMetrics};

/// The sequential serving contract: one transaction scored with no engine,
/// no queue and no cache. [`ScoringEngine::score`] is bit-identical to this
/// for every batching and caching configuration; the serving equivalence
/// property test pins that down.
pub fn score_one(
    detector: &XFraudDetector,
    g: &dyn GraphView,
    sampler: &(impl Sampler + ?Sized),
    seed: u64,
    version: u64,
    txn: NodeId,
) -> Result<f32, ServeError> {
    if txn >= g.n_nodes() {
        return Err(ServeError::UnknownNode(txn));
    }
    if g.node_type(txn) != NodeType::Txn {
        return Err(ServeError::NotATransaction(txn));
    }
    let mut rng = serve_rng(seed, version, txn);
    let batch = sampler.sample(g, &[txn], &mut rng);
    Ok(predict_scores(detector, &batch, &mut rng)[0])
}

/// The per-node sampling RNG of the serving path — a pure function of its
/// coordinates, so cached and freshly sampled subgraphs are interchangeable.
fn serve_rng(seed: u64, version: u64, node: NodeId) -> StdRng {
    batch_rng(seed, streams::SERVE, version, node as u64)
}

/// Engine tuning knobs (see [`ScoringEngineBuilder`] for the setters).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests coalesced into one micro-batch.
    pub max_batch: usize,
    /// Bounded request-queue depth; full queue back-pressures callers.
    pub queue_depth: usize,
    /// Threads scoring a micro-batch's unique ids in parallel (`0`/`1` =
    /// inline on the batcher thread). Pure wall-clock knob: per-id work is
    /// independent, so results are identical at any value.
    pub workers: usize,
    /// Subgraph-cache entry budget; `0` disables the tier.
    pub subgraph_cache: usize,
    /// Score-cache entry budget; `0` disables the tier.
    pub score_cache: usize,
    /// Lock stripes per cache tier.
    pub cache_shards: usize,
    /// Seed of the per-node sampling RNG streams.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            queue_depth: 1024,
            workers: 1,
            subgraph_cache: 4096,
            score_cache: 65536,
            cache_shards: 8,
            seed: 0,
        }
    }
}

struct Request {
    ids: Vec<NodeId>,
    reply: mpsc::Sender<Result<Vec<f32>, ServeError>>,
}

/// The unit the engine publishes through its [`EpochCell`]: one immutable
/// delta image tagged with the version it was published at. Readers pin the
/// cell and get both halves consistently, with no lock.
struct LiveGraph {
    graph: DeltaGraph,
    version: u64,
}

struct Shared {
    detector: RwLock<XFraudDetector>,
    /// The live graph: a frozen CSR base plus the streamed-in overlay,
    /// behind epoch-based reclamation. Readers (scoring) pin the current
    /// `(graph, version)` snapshot for the whole sample — never a lock, so
    /// writers cannot stall them; writers ([`ScoringEngine::apply_events`])
    /// clone the image, mutate the clone and publish it, and the superseded
    /// image is freed after its last pinned reader drops.
    graph: EpochCell<LiveGraph>,
    sampler: Box<dyn Sampler + Send + Sync>,
    features: Option<Arc<FeatureStore>>,
    subgraphs: Option<ShardedLru<Arc<SubgraphBatch>>>,
    scores: Option<ShardedLru<f32>>,
    metrics: ServeMetrics,
    cfg: ServeConfig,
}

impl Shared {
    /// Samples `node`'s ego-subgraph, rehydrating feature rows from the
    /// feature store when one is attached (the production tier where
    /// features live outside the graph image; see [`preload_features`]).
    fn sample(&self, graph: &DeltaGraph, node: NodeId, version: u64) -> SubgraphBatch {
        let mut rng = serve_rng(self.cfg.seed, version, node);
        let mut batch = self.sampler.sample(graph, &[node], &mut rng);
        if let Some(fs) = &self.features {
            for i in 0..batch.n_nodes() {
                if batch.node_types[i] == NodeType::Txn {
                    let global = batch.global_ids[i];
                    fs.fill_row(global, batch.features.row_mut(i));
                }
            }
        }
        batch
    }

    /// Scores one unique id through both cache tiers. The graph is read
    /// through an epoch pin — no lock, and the pinned `(graph, version)`
    /// pair is consistent even while ingest publishes successors.
    fn score_unique(&self, detector: &XFraudDetector, node: NodeId) -> Result<f32, ServeError> {
        let live = self.graph.pin();
        let version = live.version;
        if node >= live.graph.n_nodes() {
            return Err(ServeError::UnknownNode(node));
        }
        if live.graph.node_type(node) != NodeType::Txn {
            return Err(ServeError::NotATransaction(node));
        }
        let key = CacheKey {
            node,
            shape: self.sampler.shape_key(),
            version,
        };
        if let Some(scores) = &self.scores {
            if let Some(s) = scores.get(&key) {
                return Ok(s);
            }
        }
        let batch = match &self.subgraphs {
            Some(cache) => match cache.get(&key) {
                Some(b) => b,
                None => {
                    let b = Arc::new(self.sample(&live.graph, node, version));
                    cache.insert(key, Arc::clone(&b));
                    b
                }
            },
            None => Arc::new(self.sample(&live.graph, node, version)),
        };
        drop(live); // the forward pass needs the batch, not the graph
                    // Fresh derivation, untouched on the cached path: eval-mode
                    // forwards draw nothing from it, so hit and miss paths agree.
        let mut rng = serve_rng(self.cfg.seed, version, node);
        let score = predict_scores(detector, &batch, &mut rng)[0];
        if let Some(scores) = &self.scores {
            scores.insert(key, score);
        }
        Ok(score)
    }

    /// Resolves one drained micro-batch and answers every caller in it.
    fn process(&self, reqs: Vec<Request>) {
        let mut unique: Vec<NodeId> = reqs.iter().flat_map(|r| r.ids.iter().copied()).collect();
        let total = unique.len();
        unique.sort_unstable();
        unique.dedup();

        // One detector view for the whole micro-batch: a concurrent
        // `swap_detector` lands between batches, never inside one.
        let detector = self.detector.read();
        let results: Vec<Result<f32, ServeError>> = if self.cfg.workers > 1 && unique.len() > 1 {
            let next = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, Result<f32, ServeError>)>> =
                Mutex::new(Vec::with_capacity(unique.len()));
            std::thread::scope(|scope| {
                for _ in 0..self.cfg.workers.min(unique.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= unique.len() {
                            break;
                        }
                        let r = self.score_unique(&detector, unique[i]);
                        out.lock().push((i, r));
                    });
                }
            });
            let mut collected = out.into_inner();
            collected.sort_by_key(|&(i, _)| i);
            collected.into_iter().map(|(_, r)| r).collect()
        } else {
            unique
                .iter()
                .map(|&n| self.score_unique(&detector, n))
                .collect()
        };
        drop(detector);

        self.metrics.observe_batch(reqs.len(), total);
        for req in reqs {
            let scores: Result<Vec<f32>, ServeError> = req
                .ids
                .iter()
                .map(|id| {
                    let at = unique.binary_search(id).map_err(|_| {
                        ServeError::Internal("request id missing from scored batch")
                    })?;
                    results[at].clone()
                })
                .collect();
            // xlint: allow(e1, reason = "a caller that gave up (dropped its receiver) is not an error")
            let _ = req.reply.send(scores);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let (sh, sm, se) = match &self.subgraphs {
            Some(c) => (c.hits(), c.misses(), c.len()),
            None => (0, 0, 0),
        };
        let (ch, cm, ce) = match &self.scores {
            Some(c) => (c.hits(), c.misses(), c.len()),
            None => (0, 0, 0),
        };
        self.metrics.snapshot(sh, sm, se, ch, cm, ce)
    }
}

/// Builder for [`ScoringEngine`] — the same typed-setter / validating
/// `build()` surface as `PipelineConfig::builder()`.
pub struct ScoringEngineBuilder {
    detector: XFraudDetector,
    graph: HetGraph,
    sampler: Box<dyn Sampler + Send + Sync>,
    features: Option<Arc<FeatureStore>>,
    cfg: ServeConfig,
}

impl ScoringEngineBuilder {
    pub fn new(
        detector: XFraudDetector,
        graph: HetGraph,
        sampler: Box<dyn Sampler + Send + Sync>,
    ) -> Self {
        ScoringEngineBuilder {
            detector,
            graph,
            sampler,
            features: None,
            cfg: ServeConfig::default(),
        }
    }

    /// Most requests coalesced into one micro-batch (≥ 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.max_batch = n;
        self
    }

    /// Bounded request-queue depth (≥ 1); a full queue blocks callers.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.cfg.queue_depth = n;
        self
    }

    /// Compute threads per micro-batch; identical results at any value.
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Subgraph-cache entry budget (`0` disables the tier).
    pub fn subgraph_cache(mut self, entries: usize) -> Self {
        self.cfg.subgraph_cache = entries;
        self
    }

    /// Score-cache entry budget (`0` disables the tier).
    pub fn score_cache(mut self, entries: usize) -> Self {
        self.cfg.score_cache = entries;
        self
    }

    /// Disables both cache tiers (the cold baseline `serve-bench` compares
    /// against).
    pub fn no_cache(mut self) -> Self {
        self.cfg.subgraph_cache = 0;
        self.cfg.score_cache = 0;
        self
    }

    /// Lock stripes per cache tier (≥ 1).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cfg.cache_shards = shards;
        self
    }

    /// Seed of the per-node sampling RNG streams. Engines built from a
    /// `Pipeline` inherit its model seed so the equivalence contract holds.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Serves feature rows from a KV-backed [`FeatureStore`] instead of the
    /// graph image (see [`preload_features`]). The store must agree with
    /// the graph for the equivalence contract to hold.
    pub fn feature_store(mut self, fs: Arc<FeatureStore>) -> Self {
        self.features = Some(fs);
        self
    }

    /// Validates the configuration and spawns the engine's batcher thread.
    pub fn build(self) -> Result<ScoringEngine, ServeError> {
        let cfg = &self.cfg;
        if cfg.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be ≥ 1".into()));
        }
        if cfg.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be ≥ 1".into()));
        }
        if cfg.cache_shards == 0 {
            return Err(ServeError::InvalidConfig("cache_shards must be ≥ 1".into()));
        }
        let det_dim = self.detector.cfg.feature_dim;
        let g_dim = self.graph.feature_dim();
        if det_dim != g_dim {
            return Err(ServeError::DetectorMismatch {
                detector_dim: det_dim,
                graph_dim: g_dim,
            });
        }
        if let Some(fs) = &self.features {
            if fs.dim() != g_dim {
                return Err(ServeError::InvalidConfig(format!(
                    "feature store dim {} != graph feature dim {}",
                    fs.dim(),
                    g_dim
                )));
            }
        }

        let shared = Arc::new(Shared {
            detector: RwLock::new(self.detector),
            graph: EpochCell::new(LiveGraph {
                graph: DeltaGraph::new(Arc::new(self.graph)),
                version: 0,
            }),
            sampler: self.sampler,
            features: self.features,
            subgraphs: (self.cfg.subgraph_cache > 0)
                .then(|| ShardedLru::new(self.cfg.subgraph_cache, self.cfg.cache_shards)),
            scores: (self.cfg.score_cache > 0)
                .then(|| ShardedLru::new(self.cfg.score_cache, self.cfg.cache_shards)),
            metrics: ServeMetrics::new(),
            cfg: self.cfg,
        });

        let (tx, rx) = mpsc::sync_channel::<Request>(shared.cfg.queue_depth);
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("xfraud-serve-batcher".into())
            .spawn(move || {
                while let Ok(first) = rx.recv() {
                    let mut reqs = vec![first];
                    while reqs.len() < worker_shared.cfg.max_batch {
                        match rx.try_recv() {
                            Ok(r) => reqs.push(r),
                            Err(_) => break,
                        }
                    }
                    worker_shared.process(reqs);
                }
            })
            .map_err(|e| ServeError::WorkerSpawn(e.to_string()))?;

        Ok(ScoringEngine {
            shared,
            tx: Some(tx),
            worker: Some(worker),
        })
    }
}

/// The engine. Shareable across caller threads by reference; dropping it
/// shuts the batcher down after in-flight requests drain.
pub struct ScoringEngine {
    shared: Arc<Shared>,
    tx: Option<mpsc::SyncSender<Request>>,
    worker: Option<JoinHandle<()>>,
}

impl ScoringEngine {
    /// Entry point mirroring [`ScoringEngineBuilder::new`].
    pub fn builder(
        detector: XFraudDetector,
        graph: HetGraph,
        sampler: Box<dyn Sampler + Send + Sync>,
    ) -> ScoringEngineBuilder {
        ScoringEngineBuilder::new(detector, graph, sampler)
    }

    /// Scores a slice of transaction ids. Blocks until the batcher answers;
    /// concurrent calls from many threads are coalesced into micro-batches.
    /// Any invalid id fails the whole request with a typed error.
    ///
    /// Bit-identical to calling [`score_one`] per id, whatever the
    /// concurrency, batch or cache configuration.
    pub fn score(&self, ids: &[NodeId]) -> Result<Vec<f32>, ServeError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let tx = self.tx.as_ref().ok_or(ServeError::Shutdown)?;
        // xlint: allow(d2, reason = "wall-clock latency telemetry only; never feeds a score")
        let started = Instant::now();
        let (reply, rx) = mpsc::channel();
        tx.send(Request {
            ids: ids.to_vec(),
            reply,
        })
        .map_err(|_| ServeError::Shutdown)?;
        let result = rx.recv().map_err(|_| ServeError::Shutdown)?;
        self.shared.metrics.observe_latency(started.elapsed());
        result
    }

    /// Convenience: scores one transaction.
    pub fn score_txn(&self, txn: NodeId) -> Result<f32, ServeError> {
        Ok(self.score(&[txn])?[0])
    }

    /// Swaps in freshly fine-tuned detector weights (the incremental-update
    /// path of `xfraud_gnn::incremental`): the score cache is dropped — the
    /// pure function it memoised changed — while cached subgraphs survive,
    /// because the graph did not move.
    pub fn swap_detector(&self, detector: XFraudDetector) -> Result<(), ServeError> {
        let g_dim = self.shared.graph.pin().graph.feature_dim();
        if detector.cfg.feature_dim != g_dim {
            return Err(ServeError::DetectorMismatch {
                detector_dim: detector.cfg.feature_dim,
                graph_dim: g_dim,
            });
        }
        let mut slot = self.shared.detector.write();
        *slot = detector;
        // Clear while still holding the write lock: every pre-swap batch
        // finished its inserts before we acquired it, and no post-swap
        // batch can read the cache until we release it — so a reader can
        // never mix surviving old-detector entries with fresh scores.
        if let Some(scores) = &self.shared.scores {
            scores.clear();
        }
        drop(slot);
        Ok(())
    }

    /// Invalidates one transaction's cached artefacts (both tiers) — the
    /// hook for "this node's neighbourhood changed" in an incremental graph
    /// update. Returns the number of entries dropped.
    pub fn invalidate_transaction(&self, txn: NodeId) -> usize {
        let mut dropped = 0;
        if let Some(c) = &self.shared.subgraphs {
            dropped += c.invalidate_node(txn);
        }
        if let Some(c) = &self.shared.scores {
            dropped += c.invalidate_node(txn);
        }
        dropped
    }

    /// Advances the graph version: a re-tagged snapshot is published, every
    /// cached subgraph and score becomes unreachable (and is dropped), and
    /// subsequent sampling RNG streams are re-keyed — the hook for "a new
    /// graph snapshot was swapped in". Returns the new version.
    pub fn bump_graph_version(&self) -> u64 {
        let v = self.shared.graph.update(|cur| {
            let version = cur.version + 1;
            (
                LiveGraph {
                    graph: cur.graph.clone(),
                    version,
                },
                version,
            )
        });
        if let Some(c) = &self.shared.subgraphs {
            c.clear();
        }
        if let Some(c) = &self.shared.scores {
            c.clear();
        }
        v
    }

    /// Current graph version (starts at 0).
    pub fn graph_version(&self) -> u64 {
        self.shared.graph.pin().version
    }

    /// An owned, shareable image of the live graph at its current version —
    /// the [`GraphView::snapshot`] surface of the engine, for callers (e.g.
    /// kernels, audits) that want a stable graph beyond one pinned read.
    pub fn graph_snapshot(&self) -> GraphSnapshot {
        let live = self.shared.graph.pin();
        GraphView::snapshot(&live.graph).at_version(live.version)
    }

    /// Appends a batch of streamed-in [`GraphEvent`]s to the live graph —
    /// the consumer end of the ingestion pipeline (`xfraud-ingest` WAL,
    /// `xfraud_datagen::event_stream`). Returns the node ids assigned to
    /// the batch's `AddTxn` events, ready to be scored on arrival.
    ///
    /// The whole batch is applied to a private clone of the live image and
    /// published atomically with a bumped version: scoring reads pinned to
    /// the pre-batch snapshot finish against it undisturbed, and every read
    /// that starts after the publish sees the post-batch graph and version
    /// together. Cached subgraphs and scores sampled against the pre-batch
    /// graph can never serve a post-batch request (cache keys carry the
    /// version), and both tiers are dropped eagerly. When a feature store is
    /// attached, new transactions' feature rows are written through to it
    /// before the batch becomes visible.
    ///
    /// On a rejected event the error is returned and the batch stops
    /// there; previously applied events of the batch remain (the overlay is
    /// append-only) and the version still advances.
    pub fn apply_events(&self, events: &[GraphEvent]) -> Result<Vec<NodeId>, ServeError> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        let (new_txns, failure) = self.shared.graph.update(|cur| {
            let mut graph = cur.graph.clone();
            let mut new_txns = Vec::new();
            let mut failure = None;
            for event in events {
                match graph.apply(event) {
                    Ok(assigned) => {
                        if let (Some(id), GraphEvent::AddTxn { features, .. }) = (assigned, event) {
                            if let Some(fs) = &self.shared.features {
                                fs.put_features(id, features);
                            }
                            new_txns.push(id);
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            let version = cur.version + 1;
            (LiveGraph { graph, version }, (new_txns, failure))
        });
        // Entries keyed by the pre-batch version are unreachable now; drop
        // them eagerly rather than letting them age out of the LRU.
        if let Some(c) = &self.shared.subgraphs {
            c.clear();
        }
        if let Some(c) = &self.shared.scores {
            c.clear();
        }
        match failure {
            Some(e) => Err(e.into()),
            None => Ok(new_txns),
        }
    }

    /// Folds the streamed-in overlay into a fresh frozen CSR base
    /// (`DeltaGraph::compact`). Purely a representation change — the view
    /// is bit-identical before and after — so the graph version does *not*
    /// move and cached subgraphs/scores stay valid. The compacted image is
    /// published like any other write; pinned readers drain on the overlay
    /// image and the epoch scheme frees it after the last one drops.
    pub fn compact(&self) -> Result<(), ServeError> {
        if self.shared.graph.pin().graph.is_compact() {
            return Ok(());
        }
        self.shared.graph.update(|cur| {
            let version = cur.version;
            match cur.graph.compact() {
                Ok(frozen) => (
                    LiveGraph {
                        graph: DeltaGraph::new(Arc::new(frozen)),
                        version,
                    },
                    Ok(()),
                ),
                Err(e) => (
                    LiveGraph {
                        graph: cur.graph.clone(),
                        version,
                    },
                    Err(e.into()),
                ),
            }
        })
    }

    /// `(overlay nodes, overlay directed edges)` accumulated since the last
    /// compaction — the "how big has the delta grown" gauge a compaction
    /// policy watches.
    pub fn overlay_stats(&self) -> (usize, usize) {
        let live = self.shared.graph.pin();
        (live.graph.n_overlay_nodes(), live.graph.n_overlay_edges())
    }

    /// Total nodes currently in the live graph (base + overlay).
    pub fn n_nodes(&self) -> usize {
        self.shared.graph.pin().graph.n_nodes()
    }

    /// Superseded graph images retired but not yet freed (they drain as
    /// pinned readers drop) — observability for the epoch scheme.
    pub fn retired_graphs(&self) -> usize {
        self.shared.graph.retired_len()
    }

    /// Point-in-time counters: requests, batch sizes, per-tier cache hit
    /// rates, p50/p99 latency.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Pre-warms the caches by scoring `ids` once through the engine.
    pub fn warm(&self, ids: &[NodeId]) -> Result<(), ServeError> {
        for chunk in ids.chunks(self.shared.cfg.max_batch.max(1)) {
            self.score(chunk)?;
        }
        Ok(())
    }
}

impl Drop for ScoringEngine {
    fn drop(&mut self) {
        drop(self.tx.take()); // hang up: the batcher drains and exits
        if let Some(worker) = self.worker.take() {
            if let Err(panic) = worker.join() {
                // A panicked batcher means every cached score is suspect;
                // re-raise unless we are already unwinding from one.
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Copies every transaction feature row of `g` into `fs` keyed by global
/// node id — the setup step for serving features out of the KV tier
/// (entity nodes stay absent and read back as zeros, matching the graph).
pub fn preload_features(fs: &FeatureStore, g: &HetGraph) {
    for v in 0..g.n_nodes() {
        if let Some(row) = g.feature_row_of(v) {
            fs.put_features(v, g.features().row(row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_datagen::{Dataset, DatasetPreset};
    use xfraud_gnn::{CommunitySampler, DetectorConfig, SageSampler};
    use xfraud_kvstore::ShardedStore;

    fn setup() -> (XFraudDetector, HetGraph, Vec<NodeId>) {
        let g = Dataset::generate(DatasetPreset::EbaySmallSim, 17).graph;
        let detector = XFraudDetector::new(DetectorConfig {
            feature_dim: g.feature_dim(),
            hidden: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            per_type_projections: false,
            seed: 3,
        });
        let txns: Vec<NodeId> = g
            .labeled_txns()
            .into_iter()
            .map(|(v, _)| v)
            .take(24)
            .collect();
        (detector, g, txns)
    }

    fn engine(detector: &XFraudDetector, g: &HetGraph) -> ScoringEngineBuilder {
        ScoringEngine::builder(
            detector.clone(),
            g.clone(),
            Box::new(CommunitySampler::new(400)),
        )
        .seed(9)
    }

    #[test]
    fn engine_matches_sequential_reference_with_and_without_caches() {
        let (detector, g, txns) = setup();
        let sampler = CommunitySampler::new(400);
        let reference: Vec<f32> = txns
            .iter()
            .map(|&t| score_one(&detector, &g, &sampler, 9, 0, t).unwrap())
            .collect();

        let cached = engine(&detector, &g).build().unwrap();
        let cold = engine(&detector, &g).no_cache().build().unwrap();
        assert_eq!(cached.score(&txns).unwrap(), reference);
        assert_eq!(cached.score(&txns).unwrap(), reference, "warm pass");
        assert_eq!(cold.score(&txns).unwrap(), reference);
        let m = cached.metrics();
        assert!(m.score_hits > 0, "second pass must hit the score cache");
    }

    #[test]
    fn engine_is_equivalent_under_a_sage_sampler_too() {
        let (detector, g, txns) = setup();
        let sampler = SageSampler::new(2, 6);
        let reference: Vec<f32> = txns
            .iter()
            .map(|&t| score_one(&detector, &g, &sampler, 9, 0, t).unwrap())
            .collect();
        let eng = ScoringEngine::builder(detector, g, Box::new(SageSampler::new(2, 6)))
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(eng.score(&txns).unwrap(), reference);
    }

    #[test]
    fn concurrent_callers_each_get_their_own_correct_scores() {
        let (detector, g, txns) = setup();
        let sampler = CommunitySampler::new(400);
        let reference: Vec<f32> = txns
            .iter()
            .map(|&t| score_one(&detector, &g, &sampler, 9, 0, t).unwrap())
            .collect();
        let eng = engine(&detector, &g).max_batch(8).build().unwrap();
        std::thread::scope(|scope| {
            for caller in 0..6usize {
                let eng = &eng;
                let txns = &txns;
                let reference = &reference;
                scope.spawn(move || {
                    // Each caller scores a rotated view, twice.
                    let ids: Vec<NodeId> = txns
                        .iter()
                        .cycle()
                        .skip(caller * 3)
                        .take(txns.len())
                        .copied()
                        .collect();
                    let want: Vec<f32> = (0..txns.len())
                        .map(|i| reference[(caller * 3 + i) % txns.len()])
                        .collect();
                    for _ in 0..2 {
                        assert_eq!(eng.score(&ids).unwrap(), want, "caller {caller}");
                    }
                });
            }
        });
        let m = eng.metrics();
        assert_eq!(m.requests, 12);
        assert!(m.batches <= m.requests);
    }

    #[test]
    fn invalid_ids_fail_the_request_with_typed_errors() {
        let (detector, g, txns) = setup();
        let eng = engine(&detector, &g).build().unwrap();
        let bogus = g.n_nodes() + 5;
        assert_eq!(
            eng.score(&[txns[0], bogus]),
            Err(ServeError::UnknownNode(bogus))
        );
        // An entity node exists but is not scoreable.
        let entity = (0..g.n_nodes())
            .find(|&v| g.node_type(v) != NodeType::Txn)
            .expect("graph has entities");
        assert_eq!(
            eng.score(&[entity]),
            Err(ServeError::NotATransaction(entity))
        );
        // Earlier failures don't poison later valid requests.
        assert_eq!(eng.score(&[txns[0]]).unwrap().len(), 1);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let (detector, g, _) = setup();
        assert!(matches!(
            engine(&detector, &g).max_batch(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            engine(&detector, &g).queue_depth(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            engine(&detector, &g).cache_shards(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        let wrong = XFraudDetector::new(DetectorConfig::small(g.feature_dim() + 1, 0));
        assert!(matches!(
            ScoringEngine::builder(wrong, g.clone(), Box::new(CommunitySampler::new(10))).build(),
            Err(ServeError::DetectorMismatch { .. })
        ));
    }

    #[test]
    fn swap_detector_clears_scores_but_keeps_subgraphs() {
        let (detector, g, txns) = setup();
        let eng = engine(&detector, &g).build().unwrap();
        let before = eng.score(&txns).unwrap();
        let warm_subgraphs = eng.metrics().subgraph_entries;
        assert!(warm_subgraphs > 0);

        let retrained = XFraudDetector::new(DetectorConfig {
            feature_dim: g.feature_dim(),
            hidden: 16,
            heads: 2,
            layers: 1,
            dropout: 0.0,
            per_type_projections: false,
            seed: 4, // different init = different weights
        });
        let reference: Vec<f32> = {
            let sampler = CommunitySampler::new(400);
            txns.iter()
                .map(|&t| score_one(&retrained, &g, &sampler, 9, 0, t).unwrap())
                .collect()
        };
        eng.swap_detector(retrained).unwrap();
        let m = eng.metrics();
        assert_eq!(m.score_entries, 0, "score cache cleared");
        assert_eq!(
            m.subgraph_entries, warm_subgraphs,
            "subgraph cache survives the swap"
        );
        let after = eng.score(&txns).unwrap();
        assert_eq!(after, reference, "new weights serve immediately");
        assert_ne!(before, after);
        // Dimension mismatch is rejected before touching the live slot.
        let wrong = XFraudDetector::new(DetectorConfig::small(g.feature_dim() + 2, 0));
        assert!(eng.swap_detector(wrong).is_err());
    }

    #[test]
    fn invalidation_hooks_force_recomputation() {
        let (detector, g, txns) = setup();
        let eng = engine(&detector, &g).build().unwrap();
        let first = eng.score(&txns).unwrap();
        let t = txns[0];
        assert!(eng.invalidate_transaction(t) >= 1);
        assert_eq!(eng.invalidate_transaction(t), 0, "already gone");
        let again = eng.score(&[t]).unwrap();
        assert_eq!(again[0], first[0], "same graph version ⇒ same score");

        let v = eng.bump_graph_version();
        assert_eq!(v, 1);
        assert_eq!(eng.graph_version(), 1);
        let m = eng.metrics();
        assert_eq!((m.subgraph_entries, m.score_entries), (0, 0));
        // Rescoring works at the new version (RNG-free sampler ⇒ equal).
        assert_eq!(eng.score(&[t]).unwrap()[0], first[0]);
    }

    #[test]
    fn feature_store_backed_engine_matches_graph_backed_scores() {
        let (detector, g, txns) = setup();
        let fs = Arc::new(FeatureStore::new(
            Arc::new(ShardedStore::new(8)),
            g.feature_dim(),
        ));
        preload_features(&fs, &g);
        let plain = engine(&detector, &g).build().unwrap();
        let kv = engine(&detector, &g).feature_store(fs).build().unwrap();
        assert_eq!(kv.score(&txns).unwrap(), plain.score(&txns).unwrap());
    }

    #[test]
    fn streamed_events_are_scoreable_on_arrival() {
        let (detector, g, txns) = setup();
        let eng = engine(&detector, &g).build().unwrap();
        let before = eng.score(&txns).unwrap();

        // A new transaction arrives, linked to an existing payment token.
        let entity = (0..g.n_nodes())
            .find(|&v| g.node_type(v) == NodeType::Pmt)
            .expect("graph has pmt entities");
        let new_id = eng.n_nodes();
        let arrived = eng
            .apply_events(&[
                GraphEvent::AddTxn {
                    features: vec![0.1; g.feature_dim()],
                    label: None,
                },
                GraphEvent::Link {
                    a: new_id,
                    b: entity,
                },
            ])
            .unwrap();
        assert_eq!(arrived, vec![new_id]);
        assert_eq!(eng.graph_version(), 1, "ingest drives the version hook");
        assert_eq!(eng.metrics().subgraph_entries, 0, "caches invalidated");

        let on_arrival = eng.score_txn(new_id).unwrap();
        assert!(on_arrival.is_finite());
        // Pre-existing transactions still score identically: the sampler is
        // RNG-free, and their neighbourhoods did not change.
        assert_eq!(eng.score(&txns).unwrap(), before);

        // Compaction is a pure representation change: no version bump, no
        // score movement, overlay folded away.
        assert!(eng.overlay_stats().0 >= 1);
        eng.compact().unwrap();
        assert_eq!(eng.overlay_stats(), (0, 0));
        assert_eq!(eng.graph_version(), 1);
        assert_eq!(eng.score_txn(new_id).unwrap(), on_arrival);
        assert_eq!(eng.score(&txns).unwrap(), before);
    }

    #[test]
    fn rejected_events_surface_as_typed_errors() {
        let (detector, g, _) = setup();
        let eng = engine(&detector, &g).build().unwrap();
        let bogus = eng.n_nodes() + 10;
        let err = eng
            .apply_events(&[GraphEvent::Link { a: bogus, b: 0 }])
            .unwrap_err();
        assert!(matches!(err, ServeError::Graph(_)));
        // Empty batches are free: no version bump, no cache churn.
        let v = eng.graph_version();
        assert_eq!(eng.apply_events(&[]).unwrap(), Vec::<NodeId>::new());
        assert_eq!(eng.graph_version(), v);
    }

    #[test]
    fn worker_crew_size_does_not_change_scores() {
        let (detector, g, txns) = setup();
        let one = engine(&detector, &g).workers(1).build().unwrap();
        let four = engine(&detector, &g).workers(4).build().unwrap();
        assert_eq!(one.score(&txns).unwrap(), four.score(&txns).unwrap());
    }
}
