//! Serving telemetry: request counts, micro-batch sizes, cache hit rates
//! and request-latency percentiles — the numbers `serve-bench` and the
//! criterion harness report.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// Bounded reservoir of the most recent request latencies; percentiles are
/// computed over this window so a long-running engine reports recent
/// behaviour, not its cold start forever.
const LATENCY_WINDOW: usize = 4096;

struct LatencyRing {
    buf: Vec<f64>,
    next: usize,
    filled: usize,
}

/// Live counters, updated lock-free except for the latency ring.
pub struct ServeMetrics {
    requests: AtomicU64,
    transactions: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            transactions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                buf: vec![0.0; LATENCY_WINDOW],
                next: 0,
                filled: 0,
            }),
        }
    }
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one drained micro-batch: `requests` coalesced calls covering
    /// `transactions` (possibly duplicated) transaction ids.
    pub fn observe_batch(&self, requests: usize, transactions: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(requests as u64, Ordering::Relaxed);
        self.transactions
            .fetch_add(transactions as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(requests as u64, Ordering::Relaxed);
    }

    /// Records one caller-observed request latency (enqueue → reply).
    pub fn observe_latency(&self, elapsed: Duration) {
        let mut ring = self.latencies.lock();
        let at = ring.next;
        ring.buf[at] = elapsed.as_secs_f64() * 1e3;
        ring.next = (at + 1) % LATENCY_WINDOW;
        ring.filled = (ring.filled + 1).min(LATENCY_WINDOW);
    }

    fn percentiles(&self) -> (f64, f64, f64) {
        let ring = self.latencies.lock();
        if ring.filled == 0 {
            return (0.0, 0.0, 0.0);
        }
        let mut sorted: Vec<f64> = ring.buf[..ring.filled].to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        (at(0.50), at(0.99), at(0.999))
    }

    /// Snapshot with the cache tiers' counters folded in (the caches keep
    /// their own hit/miss atomics; the engine passes them through here).
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        subgraph_hits: u64,
        subgraph_misses: u64,
        subgraph_entries: usize,
        score_hits: u64,
        score_misses: u64,
        score_entries: usize,
    ) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let requests = self.requests.load(Ordering::Relaxed);
        let (p50_ms, p99_ms, p999_ms) = self.percentiles();
        MetricsSnapshot {
            requests,
            transactions: self.transactions.load(Ordering::Relaxed),
            batches,
            mean_batch: requests as f64 / batches.max(1) as f64,
            max_batch: self.max_batch.load(Ordering::Relaxed),
            subgraph_hits,
            subgraph_misses,
            subgraph_entries,
            score_hits,
            score_misses,
            score_entries,
            p50_ms,
            p99_ms,
            p999_ms,
        }
    }
}

/// A point-in-time view of the engine's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `score` calls answered.
    pub requests: u64,
    /// Transaction ids scored across all requests (before dedup).
    pub transactions: u64,
    /// Micro-batches drained from the queue.
    pub batches: u64,
    /// Mean requests coalesced per micro-batch.
    pub mean_batch: f64,
    /// Largest micro-batch observed.
    pub max_batch: u64,
    pub subgraph_hits: u64,
    pub subgraph_misses: u64,
    pub subgraph_entries: usize,
    pub score_hits: u64,
    pub score_misses: u64,
    pub score_entries: usize,
    /// Median request latency (enqueue → reply) over the recent window.
    pub p50_ms: f64,
    /// 99th-percentile request latency over the recent window.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency over the recent window.
    pub p999_ms: f64,
}

impl MetricsSnapshot {
    fn rate(hits: u64, misses: u64) -> f64 {
        hits as f64 / (hits + misses).max(1) as f64
    }

    pub fn subgraph_hit_rate(&self) -> f64 {
        Self::rate(self.subgraph_hits, self.subgraph_misses)
    }

    pub fn score_hit_rate(&self) -> f64 {
        Self::rate(self.score_hits, self.score_misses)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests {}  txns {}  batches {}  (mean {:.2} req/batch, max {})",
            self.requests, self.transactions, self.batches, self.mean_batch, self.max_batch
        )?;
        writeln!(
            f,
            "subgraph cache: {} hits / {} misses ({:.1}% hit, {} entries)",
            self.subgraph_hits,
            self.subgraph_misses,
            100.0 * self.subgraph_hit_rate(),
            self.subgraph_entries
        )?;
        writeln!(
            f,
            "score cache:    {} hits / {} misses ({:.1}% hit, {} entries)",
            self.score_hits,
            self.score_misses,
            100.0 * self.score_hit_rate(),
            self.score_entries
        )?;
        write!(
            f,
            "latency: p50 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms",
            self.p50_ms, self.p99_ms, self.p999_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_batches_and_percentiles() {
        let m = ServeMetrics::new();
        m.observe_batch(4, 6);
        m.observe_batch(2, 2);
        for ms in [1u64, 2, 3, 4, 100] {
            m.observe_latency(Duration::from_millis(ms));
        }
        let s = m.snapshot(3, 1, 4, 10, 2, 2);
        assert_eq!(s.requests, 6);
        assert_eq!(s.transactions, 8);
        assert_eq!(s.batches, 2);
        assert_eq!(s.max_batch, 4);
        assert!((s.mean_batch - 3.0).abs() < 1e-12);
        assert!((s.subgraph_hit_rate() - 0.75).abs() < 1e-12);
        assert!(s.p50_ms >= 2.0 && s.p50_ms <= 4.0, "p50 {}", s.p50_ms);
        assert!(s.p99_ms >= 50.0, "p99 {}", s.p99_ms);
        assert!(
            s.p999_ms >= s.p99_ms,
            "p999 {} < p99 {}",
            s.p999_ms,
            s.p99_ms
        );
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn latency_ring_wraps_without_panicking() {
        let m = ServeMetrics::new();
        for i in 0..(LATENCY_WINDOW + 10) {
            m.observe_latency(Duration::from_micros(i as u64));
        }
        let s = m.snapshot(0, 0, 0, 0, 0, 0);
        assert!(s.p99_ms > 0.0);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = ServeMetrics::new().snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.subgraph_hit_rate(), 0.0);
    }
}
