//! Temporal-structure tests: the timeline the incremental experiments
//! (Appendix H.5) rely on must actually exhibit the paper's drift patterns.

use xfraud_datagen::{generate_log, Dataset, DatasetPreset, FraudMechanism, WorldConfig};
use xfraud_hetgraph::NodeType;

#[test]
fn all_times_are_in_the_unit_window() {
    let w = generate_log(&WorldConfig::default());
    assert!(w.records.iter().all(|r| (0.0..1.0).contains(&r.time)));
}

#[test]
fn stolen_card_bursts_are_temporally_tight() {
    let w = generate_log(&WorldConfig::default());
    // Group stolen-card records by their drop email (one per incident).
    let mut by_incident: std::collections::HashMap<usize, Vec<f32>> = Default::default();
    for r in &w.records {
        if r.mechanism == FraudMechanism::StolenCard {
            by_incident.entry(r.email).or_default().push(r.time);
        }
    }
    assert!(!by_incident.is_empty());
    for (email, mut times) in by_incident {
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let span = times.last().unwrap() - times.first().unwrap();
        assert!(
            span <= 0.031,
            "incident via email {email} spans {span} (burst must be tight)"
        );
    }
}

#[test]
fn ring_bursts_happen_after_cultivation() {
    let cfg = WorldConfig {
        n_rings: 5,
        ring_cultivation: 3,
        ring_burst: 4,
        ..Default::default()
    };
    let w = generate_log(&cfg);
    // Ring frauds share a ring address; cultivation purchases by the same
    // accounts use their own addresses. Compare per-buyer times.
    let mut cultivation: std::collections::HashMap<usize, Vec<f32>> = Default::default();
    let mut burst: std::collections::HashMap<usize, Vec<f32>> = Default::default();
    for r in &w.records {
        if let Some(buyer) = r.buyer {
            match r.mechanism {
                FraudMechanism::Ring => burst.entry(buyer).or_default().push(r.time),
                FraudMechanism::Benign => cultivation.entry(buyer).or_default().push(r.time),
                _ => {}
            }
        }
    }
    let mut checked = 0;
    for (buyer, bursts) in &burst {
        if let Some(cult) = cultivation.get(buyer) {
            let max_cult = cult.iter().cloned().fold(f32::MIN, f32::max);
            let min_burst = bursts.iter().cloned().fold(f32::MAX, f32::min);
            assert!(
                min_burst > max_cult,
                "buyer {buyer}: burst at {min_burst} before cultivation ended at {max_cult}"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 3,
        "too few ring accounts with both phases ({checked})"
    );
}

#[test]
fn dataset_node_times_cover_transactions_and_entities() {
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
    let g = &ds.graph;
    assert_eq!(ds.node_time.len(), g.n_nodes());
    assert!(ds.node_time.iter().all(|&t| (0.0..1.0).contains(&t)));
    // Entities inherit the min of their neighbours' times.
    for v in 0..g.n_nodes() {
        if g.node_type(v) != NodeType::Txn {
            let min_nbr = g
                .neighbors(v)
                .map(|u| ds.node_time[u])
                .fold(f32::INFINITY, f32::min);
            assert!(
                (ds.node_time[v] - min_nbr).abs() < 1e-6,
                "entity {v} time {} vs earliest neighbour {min_nbr}",
                ds.node_time[v]
            );
        }
    }
}

#[test]
fn fraud_concentrates_later_in_some_windows() {
    // With rings bursting at cultivation+0.4, late windows carry a
    // different fraud mix than early ones — the drift the incremental
    // experiment needs. Check the fraud rate varies across quarters.
    let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
    let g = &ds.graph;
    let mut rates = Vec::new();
    for q in 0..4 {
        let lo = q as f32 / 4.0;
        let hi = (q + 1) as f32 / 4.0;
        let in_window: Vec<_> = g
            .labeled_txns()
            .into_iter()
            .filter(|&(v, _)| ds.node_time[v] >= lo && ds.node_time[v] < hi)
            .collect();
        let fraud = in_window.iter().filter(|&&(_, y)| y).count();
        rates.push(fraud as f64 / in_window.len().max(1) as f64);
    }
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max > min,
        "fraud rate is perfectly flat across windows: {rates:?}"
    );
}
