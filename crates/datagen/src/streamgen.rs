//! Bounded-memory streaming twin of [`generate_log`](crate::generate_log).
//!
//! The batch generator materialises the entire transaction log — including
//! every feature vector — before anything is written, which caps the world
//! size at whatever `Vec<TxnRecord>` fits in RAM. This module regenerates
//! the *same world model* (the five phases of §1/§5.2: benign background
//! traffic, stolen cards, warehouse drops, cultivated rings, guest
//! checkouts) as a **pure function of coordinates**, so paper-scale logs
//! (≥1 M nodes, the eBay-large regime of Table 2) stream straight to disk:
//!
//! * **Entity ids are arithmetic.** Instead of a sequential pool allocator,
//!   [`EntityLayout`] assigns every entity a closed-form id from its phase
//!   coordinates (buyer `b`'s own address is `shared + b`, warehouse `w`'s
//!   drop address is `shared + buyers + incidents + w`, …). Unused slots —
//!   a buyer's second payment token that the profile never rolls — are
//!   simply never referenced and therefore never become nodes.
//! * **Randomness is per-unit.** Each phase unit (one buyer's traffic, one
//!   stolen-card incident, one ring, …) derives a private [`StdRng`] from
//!   `(seed, phase tag, unit index)` via a SplitMix64 fold — the same
//!   decorrelation scheme the training engine uses for batch RNGs. Units
//!   are independent, so generation needs O(1) state beyond the unit.
//! * **Features and labels are per-record functions.** A record's feature
//!   vector draws from an RNG keyed by its global record index alone
//!   ([`record_features`]), and its label follows the Appendix-B protocol
//!   keyed the same way ([`record_label`] — shared with the event-stream
//!   emitter). A topology-only first pass and a features-only second pass
//!   therefore observe the *identical* log without perturbing each other.
//!
//! The streamed world is statistically equivalent to `generate_log` — same
//! phase structure, risk bands, entity-sharing patterns, timelines and
//! expected counts — but not record-for-record identical: the batch
//! generator threads one RNG through everything, which is exactly the
//! coupling that forces O(graph) memory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{DatasetPreset, WorldConfig};
use crate::features::synth_features;
use crate::records::FraudMechanism;

/// One streamed transaction — a [`TxnRecord`](crate::TxnRecord) minus the
/// feature vector (fetch it on demand with [`record_features`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecord {
    /// Global record index in emission order; the key for features, labels
    /// and the on-disk event log.
    pub rec_idx: u64,
    pub buyer: Option<usize>,
    pub pmt: usize,
    pub email: usize,
    pub addr: usize,
    pub mechanism: FraudMechanism,
    /// Latent risk in `[0,1]` driving the feature synthesis.
    pub latent_risk: f32,
    /// Event time as a fraction of the observation window `[0,1)`.
    pub time: f32,
    /// Item-category bucket encoded one-hot in the features.
    pub category: usize,
}

impl StreamRecord {
    pub fn is_fraud(&self) -> bool {
        self.mechanism.is_fraud()
    }
}

/// Entity-pool sizes of the streamed world (upper bounds: slots that no
/// record references never become graph nodes).
#[derive(Debug, Clone, Copy)]
pub struct PoolSizes {
    pub n_pmt: usize,
    pub n_email: usize,
    pub n_addr: usize,
    pub n_buyer: usize,
}

/// Phase tags folded into per-unit RNG seeds (arbitrary distinct values).
const TAG_PROFILE: u64 = 0x7072_6f66;
const TAG_BENIGN: u64 = 0x6265_6e69;
const TAG_STOLEN: u64 = 0x7374_6f6c;
const TAG_WAREHOUSE: u64 = 0x7761_7265;
const TAG_RING: u64 = 0x7269_6e67;
const TAG_GUEST: u64 = 0x6775_6573;
const TAG_FEATURES: u64 = 0x6665_6174;

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The private RNG of one generation unit, a pure function of coordinates.
fn unit_rng(seed: u64, tag: u64, idx: u64) -> StdRng {
    let mut h = splitmix(seed);
    h = splitmix(h ^ tag);
    h = splitmix(h ^ idx);
    StdRng::seed_from_u64(h)
}

/// Closed-form entity-id assignment. Each phase owns a contiguous block of
/// each pool, laid out in the same order the batch generator's sequential
/// allocator visits them, so id locality matches the batch world.
struct EntityLayout {
    n_buyers: usize,
    shared_addrs: usize,
    stolen: usize,
    warehouses: usize,
    warehouse_frauds: usize,
    rings: usize,
    ring_size: usize,
    // Block bases per pool (buyers always occupy the leading block).
    pmt_warehouse: usize,
    pmt_ring: usize,
    pmt_guest: usize,
    email_stolen: usize,
    email_warehouse: usize,
    email_ring: usize,
    email_guest: usize,
    addr_buyer: usize,
    addr_stolen: usize,
    addr_warehouse: usize,
    addr_ring: usize,
    addr_guest: usize,
    buyer_stolen: usize,
    buyer_warehouse: usize,
    buyer_ring: usize,
    totals: PoolSizes,
}

impl EntityLayout {
    fn new(cfg: &WorldConfig) -> EntityLayout {
        let b = cfg.n_buyers;
        let s = (b / 8).max(1);
        let i = cfg.n_stolen_card_incidents;
        let w = cfg.n_warehouses;
        let wf = cfg.warehouse_frauds;
        let r = cfg.n_rings;
        let rs = cfg.ring_size;
        let g = cfg.n_guest_frauds;

        // pmt: [buyers: 2 slots each][warehouse frauds][ring shared ×2][guest]
        let pmt_warehouse = 2 * b;
        let pmt_ring = pmt_warehouse + w * wf;
        let pmt_guest = pmt_ring + 2 * r;
        // email: [buyers][stolen drops][warehouse frauds][ring shared ×2][guest]
        let email_stolen = b;
        let email_warehouse = email_stolen + i;
        let email_ring = email_warehouse + w * wf;
        let email_guest = email_ring + 2 * r;
        // addr: [shared pool][buyer own][stolen drops][warehouses][rings][guest]
        let addr_buyer = s;
        let addr_stolen = addr_buyer + b;
        let addr_warehouse = addr_stolen + i;
        let addr_ring = addr_warehouse + w;
        let addr_guest = addr_ring + r * (1 + rs);
        // buyer: [benign][stolen throwaways][warehouse mules][ring accounts]
        let buyer_stolen = b;
        let buyer_warehouse = buyer_stolen + i;
        let buyer_ring = buyer_warehouse + w * wf;

        EntityLayout {
            n_buyers: b,
            shared_addrs: s,
            stolen: i,
            warehouses: w,
            warehouse_frauds: wf,
            rings: r,
            ring_size: rs,
            pmt_warehouse,
            pmt_ring,
            pmt_guest,
            email_stolen,
            email_warehouse,
            email_ring,
            email_guest,
            addr_buyer,
            addr_stolen,
            addr_warehouse,
            addr_ring,
            addr_guest,
            buyer_stolen,
            buyer_warehouse,
            buyer_ring,
            totals: PoolSizes {
                n_pmt: pmt_guest + g,
                n_email: email_guest + g,
                n_addr: addr_guest + g,
                n_buyer: buyer_ring + r * rs,
            },
        }
    }

    fn buyer_pmt(&self, b: usize, slot: usize) -> usize {
        debug_assert!(b < self.n_buyers && slot < 2);
        2 * b + slot
    }
    fn buyer_email(&self, b: usize) -> usize {
        debug_assert!(b < self.n_buyers);
        b
    }
    fn buyer_addr(&self, b: usize) -> usize {
        debug_assert!(b < self.n_buyers);
        self.addr_buyer + b
    }
    fn shared_addr(&self, k: usize) -> usize {
        debug_assert!(k < self.shared_addrs);
        k
    }
    fn stolen_buyer(&self, i: usize) -> usize {
        debug_assert!(i < self.stolen);
        self.buyer_stolen + i
    }
    fn stolen_email(&self, i: usize) -> usize {
        self.email_stolen + i
    }
    fn stolen_addr(&self, i: usize) -> usize {
        self.addr_stolen + i
    }
    fn warehouse_addr(&self, w: usize) -> usize {
        debug_assert!(w < self.warehouses);
        self.addr_warehouse + w
    }
    fn warehouse_buyer(&self, w: usize, k: usize) -> usize {
        self.buyer_warehouse + w * self.warehouse_frauds + k
    }
    fn warehouse_pmt(&self, w: usize, k: usize) -> usize {
        self.pmt_warehouse + w * self.warehouse_frauds + k
    }
    fn warehouse_email(&self, w: usize, k: usize) -> usize {
        self.email_warehouse + w * self.warehouse_frauds + k
    }
    fn ring_pmt(&self, r: usize, s: usize) -> usize {
        debug_assert!(r < self.rings && s < 2);
        self.pmt_ring + 2 * r + s
    }
    fn ring_email(&self, r: usize, s: usize) -> usize {
        self.email_ring + 2 * r + s
    }
    fn ring_addr(&self, r: usize) -> usize {
        self.addr_ring + r * (1 + self.ring_size)
    }
    fn ring_member_buyer(&self, r: usize, m: usize) -> usize {
        debug_assert!(m < self.ring_size);
        self.buyer_ring + r * self.ring_size + m
    }
    fn ring_member_addr(&self, r: usize, m: usize) -> usize {
        self.addr_ring + r * (1 + self.ring_size) + 1 + m
    }
    fn guest_pmt(&self, i: usize) -> usize {
        self.pmt_guest + i
    }
    fn guest_email(&self, i: usize) -> usize {
        self.email_guest + i
    }
    fn guest_addr(&self, i: usize) -> usize {
        self.addr_guest + i
    }
}

/// Entity-pool bounds for the streamed world under `cfg` — size dense
/// entity→node maps with these.
pub fn pool_sizes(cfg: &WorldConfig) -> PoolSizes {
    EntityLayout::new(cfg).totals
}

/// A buyer's durable profile, re-derivable from `(seed, buyer)` alone so
/// any phase (benign traffic, warehouse pickups, guest-checkout donors)
/// agrees on the buyer's entities without shared state.
struct Profile {
    two_pmts: bool,
    shared_addr: Option<usize>,
    category: usize,
}

fn profile(cfg: &WorldConfig, lay: &EntityLayout, b: usize) -> Profile {
    let mut rng = unit_rng(cfg.seed, TAG_PROFILE, b as u64);
    let two_pmts = rng.gen_bool(0.3);
    let uses_shared = rng.gen_bool(0.45);
    // Drawn unconditionally so the stream position never depends on the
    // previous draw's outcome.
    let shared_idx = rng.gen_range(0..lay.shared_addrs);
    let category = rng.gen_range(0..8);
    Profile {
        two_pmts,
        shared_addr: uses_shared.then_some(shared_idx),
        category,
    }
}

/// Risk bands — identical to the batch generator's (deliberately
/// overlapping so features alone stay below the graph-aware ceiling).
fn draw_risk(mechanism: FraudMechanism, rng: &mut StdRng) -> f32 {
    match mechanism {
        FraudMechanism::Benign => rng.gen_range(0.02..0.55),
        FraudMechanism::StolenCard => rng.gen_range(0.40..0.95),
        FraudMechanism::Warehouse => rng.gen_range(0.35..0.92),
        FraudMechanism::Ring => rng.gen_range(0.38..0.93),
        FraudMechanism::GuestCheckout => rng.gen_range(0.42..0.97),
    }
}

/// Streams every record of the world exactly once, in phase order, calling
/// `emit` with each. Memory is O(one unit); nothing accumulates. Two
/// invocations with the same `cfg` produce identical streams — the
/// foundation of the two-pass on-disk build.
#[allow(clippy::too_many_lines)]
pub fn stream_records(cfg: &WorldConfig, mut emit: impl FnMut(StreamRecord)) {
    let lay = EntityLayout::new(cfg);
    let mut rec_idx: u64 = 0;
    let push = |rng: &mut StdRng,
                rec_idx: &mut u64,
                buyer: Option<usize>,
                pmt: usize,
                email: usize,
                addr: usize,
                mechanism: FraudMechanism,
                category: usize,
                time: f32,
                emit: &mut dyn FnMut(StreamRecord)| {
        let latent_risk = draw_risk(mechanism, rng);
        emit(StreamRecord {
            rec_idx: *rec_idx,
            buyer,
            pmt,
            email,
            addr,
            mechanism,
            latent_risk,
            time,
            category,
        });
        *rec_idx += 1;
    };

    // --- 1. benign background traffic --------------------------------------
    for b in 0..cfg.n_buyers {
        let p = profile(cfg, &lay, b);
        let mut rng = unit_rng(cfg.seed, TAG_BENIGN, b as u64);
        let mut n = 1;
        while rng.gen_bool((1.0 - 1.0 / cfg.txns_per_buyer.max(1.0)).clamp(0.0, 0.95)) {
            n += 1;
        }
        for _ in 0..n {
            let slot = if p.two_pmts { rng.gen_range(0..2) } else { 0 };
            let addr = match p.shared_addr {
                Some(s) if rng.gen_bool(0.5) => lay.shared_addr(s),
                _ => lay.buyer_addr(b),
            };
            let time = rng.gen_range(0.0..1.0);
            push(
                &mut rng,
                &mut rec_idx,
                Some(b),
                lay.buyer_pmt(b, slot),
                lay.buyer_email(b),
                addr,
                FraudMechanism::Benign,
                p.category,
                time,
                &mut emit,
            );
        }
    }

    // --- 2. stolen-card incidents ------------------------------------------
    for i in 0..cfg.n_stolen_card_incidents {
        let mut rng = unit_rng(cfg.seed, TAG_STOLEN, i as u64);
        let victim = rng.gen_range(0..cfg.n_buyers);
        let stolen_pmt = lay.buyer_pmt(victim, 0);
        let fraud_buyer = (i % 2 == 0).then(|| lay.stolen_buyer(i));
        let drop_email = lay.stolen_email(i);
        let drop_addr = lay.stolen_addr(i);
        let incident_start: f32 = rng.gen_range(0.0..0.96);
        for _ in 0..cfg.stolen_burst {
            let category = rng.gen_range(0..8);
            let time: f32 = incident_start + rng.gen_range(0.0..0.03);
            push(
                &mut rng,
                &mut rec_idx,
                fraud_buyer,
                stolen_pmt,
                drop_email,
                drop_addr,
                FraudMechanism::StolenCard,
                category,
                time.min(0.999),
                &mut emit,
            );
        }
    }

    // --- 3. warehouse drop addresses ----------------------------------------
    for w in 0..cfg.n_warehouses {
        let mut rng = unit_rng(cfg.seed, TAG_WAREHOUSE, w as u64);
        let warehouse = lay.warehouse_addr(w);
        for k in 0..cfg.warehouse_frauds {
            let buyer = rng.gen_bool(0.5).then(|| lay.warehouse_buyer(w, k));
            let category = rng.gen_range(0..8);
            let time = rng.gen_range(0.0..1.0);
            push(
                &mut rng,
                &mut rec_idx,
                buyer,
                lay.warehouse_pmt(w, k),
                lay.warehouse_email(w, k),
                warehouse,
                FraudMechanism::Warehouse,
                category,
                time,
                &mut emit,
            );
        }
        for _ in 0..cfg.warehouse_benign {
            let b = rng.gen_range(0..cfg.n_buyers);
            let p = profile(cfg, &lay, b);
            let time = rng.gen_range(0.0..1.0);
            push(
                &mut rng,
                &mut rec_idx,
                Some(b),
                lay.buyer_pmt(b, 0),
                lay.buyer_email(b),
                warehouse,
                FraudMechanism::Benign,
                p.category,
                time,
                &mut emit,
            );
        }
    }

    // --- 4. cultivated rings --------------------------------------------------
    for r in 0..cfg.n_rings {
        let mut rng = unit_rng(cfg.seed, TAG_RING, r as u64);
        let ring_start: f32 = rng.gen_range(0.0..0.5);
        for m in 0..cfg.ring_size {
            let account = lay.ring_member_buyer(r, m);
            let own_addr = lay.ring_member_addr(r, m);
            for _ in 0..cfg.ring_cultivation {
                let pmt = lay.ring_pmt(r, rng.gen_range(0..2));
                let email = lay.ring_email(r, rng.gen_range(0..2));
                let category = rng.gen_range(0..8);
                let time: f32 = ring_start + rng.gen_range(0.0..0.2);
                push(
                    &mut rng,
                    &mut rec_idx,
                    Some(account),
                    pmt,
                    email,
                    own_addr,
                    FraudMechanism::Benign,
                    category,
                    time.min(0.999),
                    &mut emit,
                );
            }
            for _ in 0..cfg.ring_burst {
                let pmt = lay.ring_pmt(r, rng.gen_range(0..2));
                let email = lay.ring_email(r, rng.gen_range(0..2));
                let category = rng.gen_range(0..8);
                let time: f32 = ring_start + 0.4 + rng.gen_range(0.0..0.05);
                push(
                    &mut rng,
                    &mut rec_idx,
                    Some(account),
                    pmt,
                    email,
                    lay.ring_addr(r),
                    FraudMechanism::Ring,
                    category,
                    time.min(0.999),
                    &mut emit,
                );
            }
        }
    }

    // --- 5. guest-checkout frauds ----------------------------------------------
    for i in 0..cfg.n_guest_frauds {
        let mut rng = unit_rng(cfg.seed, TAG_GUEST, i as u64);
        // Two thirds reuse an existing buyer's token/email (catchable by
        // linkage — the batch generator samples a donor *record*, which is
        // overwhelmingly benign buyer traffic; sampling the buyer directly
        // is the coordinate-addressable equivalent); one third is fully
        // fresh, the paper's hard unlinkable case.
        let (pmt, email) = if i % 3 != 0 {
            let donor = rng.gen_range(0..cfg.n_buyers);
            (lay.buyer_pmt(donor, 0), lay.buyer_email(donor))
        } else {
            (lay.guest_pmt(i), lay.guest_email(i))
        };
        let category = rng.gen_range(0..8);
        let time = rng.gen_range(0.0..1.0);
        push(
            &mut rng,
            &mut rec_idx,
            None,
            pmt,
            email,
            lay.guest_addr(i),
            FraudMechanism::GuestCheckout,
            category,
            time,
            &mut emit,
        );
    }
}

/// A record's feature vector — a pure function of `(cfg.seed, rec_idx)`
/// plus the record's latent risk and category, so the features-only second
/// pass reproduces pass-one draws without replaying anything else.
pub fn record_features(cfg: &WorldConfig, rec: &StreamRecord) -> Vec<f32> {
    let mut rng = unit_rng(cfg.seed, TAG_FEATURES, rec.rec_idx);
    synth_features(cfg.feature_dim, rec.latent_risk, rec.category, &mut rng)
}

/// Appendix-B label protocol keyed by the global record index — the same
/// derivation the event-stream emitter uses, so streamed and replayed
/// worlds label identically: all frauds labelled, benign labelled with
/// probability `benign_label_rate`, asymmetric chargeback-lag noise.
pub fn record_label(cfg: &WorldConfig, rec_idx: u64, is_fraud: bool) -> Option<bool> {
    let mut rng = StdRng::seed_from_u64(
        (cfg.seed ^ 0x57ae_a81a_be15_eed5)
            .wrapping_add(rec_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );
    let clean = if is_fraud {
        Some(true)
    } else if rng.gen_bool(cfg.benign_label_rate) {
        Some(false)
    } else {
        None
    };
    clean.map(|y| {
        let flip_prob = if y {
            cfg.label_noise
        } else {
            cfg.label_noise * 0.1
        };
        if rng.gen_bool(flip_prob) {
            !y
        } else {
            y
        }
    })
}

/// Scales the eBay-large analogue to a node target. The stock preset
/// (5 000 buyers) builds ≈40 k nodes — roughly 8 nodes per buyer once
/// entities and fraud phases are counted — so the whole population scales
/// linearly from that reference point. Aim slightly above the target you
/// need: Appendix-B small-component filtering trims a few percent.
pub fn scaled_large_config(target_nodes: usize, seed: u64) -> WorldConfig {
    let base = DatasetPreset::EbayLargeSim.config(seed);
    let f = (target_nodes as f64 / 40_000.0).max(1.0 / 64.0);
    let scale = |n: usize| ((n as f64 * f).round() as usize).max(1);
    WorldConfig {
        n_buyers: scale(base.n_buyers),
        n_stolen_card_incidents: scale(base.n_stolen_card_incidents),
        n_warehouses: scale(base.n_warehouses),
        n_rings: scale(base.n_rings),
        n_guest_frauds: scale(base.n_guest_frauds),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_log;

    fn collect(cfg: &WorldConfig) -> Vec<StreamRecord> {
        let mut out = Vec::new();
        stream_records(cfg, |r| out.push(r));
        out
    }

    #[test]
    fn stream_is_deterministic_and_contiguously_indexed() {
        let cfg = WorldConfig::default();
        let a = collect(&cfg);
        let b = collect(&cfg);
        assert_eq!(a, b);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.rec_idx, i as u64);
        }
        let c = collect(&WorldConfig { seed: 99, ..cfg });
        assert_ne!(a, c, "seed must steer the stream");
    }

    #[test]
    fn stream_matches_batch_generator_statistically() {
        let cfg = WorldConfig::default();
        let streamed = collect(&cfg);
        let batch = generate_log(&cfg);
        // Record volume within sampling noise of each other (both draw the
        // same geometric per-buyer counts, independently).
        let (s, b) = (streamed.len() as f64, batch.records.len() as f64);
        assert!(
            (s - b).abs() / b < 0.15,
            "record volume diverged: streamed {s} vs batch {b}"
        );
        // Fraud share and mean risk agree within a band.
        let fraud_share = |n_fraud: f64, n: f64| n_fraud / n;
        let sf = fraud_share(streamed.iter().filter(|r| r.is_fraud()).count() as f64, s);
        let bf = fraud_share(
            batch.records.iter().filter(|r| r.is_fraud()).count() as f64,
            b,
        );
        assert!((sf - bf).abs() < 0.03, "fraud share {sf} vs {bf}");
        for m in [
            FraudMechanism::Benign,
            FraudMechanism::StolenCard,
            FraudMechanism::Warehouse,
            FraudMechanism::Ring,
            FraudMechanism::GuestCheckout,
        ] {
            assert!(
                streamed.iter().any(|r| r.mechanism == m),
                "mechanism {m:?} missing from the stream"
            );
        }
    }

    #[test]
    fn entity_ids_stay_inside_the_declared_pools() {
        let cfg = WorldConfig::default();
        let sizes = pool_sizes(&cfg);
        for r in collect(&cfg) {
            assert!(r.pmt < sizes.n_pmt);
            assert!(r.email < sizes.n_email);
            assert!(r.addr < sizes.n_addr);
            if let Some(b) = r.buyer {
                assert!(b < sizes.n_buyer);
            }
        }
    }

    #[test]
    fn stolen_tokens_are_shared_with_benign_traffic() {
        let cfg = WorldConfig::default();
        let recs = collect(&cfg);
        let stolen: Vec<usize> = recs
            .iter()
            .filter(|r| r.mechanism == FraudMechanism::StolenCard)
            .map(|r| r.pmt)
            .collect();
        assert!(!stolen.is_empty());
        assert!(
            stolen.iter().any(|&p| recs
                .iter()
                .any(|r| r.mechanism == FraudMechanism::Benign && r.pmt == p)),
            "no stolen token is shared with benign traffic"
        );
    }

    #[test]
    fn guest_checkouts_have_no_buyer_and_mostly_reuse_entities() {
        let cfg = WorldConfig::default();
        let guests: Vec<StreamRecord> = collect(&cfg)
            .into_iter()
            .filter(|r| r.mechanism == FraudMechanism::GuestCheckout)
            .collect();
        assert_eq!(guests.len(), cfg.n_guest_frauds);
        assert!(guests.iter().all(|r| r.buyer.is_none()));
        let lay = EntityLayout::new(&cfg);
        let reused = guests.iter().filter(|r| r.pmt < lay.pmt_warehouse).count();
        assert!(
            reused * 3 >= guests.len() * 2 - 3,
            "two thirds must reuse buyer tokens, got {reused}/{}",
            guests.len()
        );
    }

    #[test]
    fn features_and_labels_are_pure_functions_of_coordinates() {
        let cfg = WorldConfig::default();
        let recs = collect(&cfg);
        let r = &recs[recs.len() / 2];
        assert_eq!(record_features(&cfg, r), record_features(&cfg, r));
        assert_eq!(record_features(&cfg, r).len(), cfg.feature_dim);
        for idx in [0u64, 1, 1000] {
            assert_eq!(record_label(&cfg, idx, true), record_label(&cfg, idx, true));
            // Frauds are always labelled (possibly noise-flipped, never None).
            assert!(record_label(&cfg, idx, true).is_some());
        }
    }

    #[test]
    fn fraud_risk_exceeds_benign_risk_on_average() {
        let recs = collect(&WorldConfig::default());
        let avg = |fraud: bool| {
            let v: Vec<f32> = recs
                .iter()
                .filter(|r| r.is_fraud() == fraud)
                .map(|r| r.latent_risk)
                .collect();
            v.iter().sum::<f32>() / v.len() as f32
        };
        assert!(avg(true) > avg(false) + 0.25);
    }

    #[test]
    fn scaled_config_grows_every_phase_linearly() {
        let cfg = scaled_large_config(400_000, 7);
        let base = DatasetPreset::EbayLargeSim.config(7);
        assert_eq!(cfg.n_buyers, base.n_buyers * 10);
        assert_eq!(cfg.n_rings, base.n_rings * 10);
        assert_eq!(cfg.feature_dim, base.feature_dim);
    }
}
