use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::WorldConfig;
use crate::features::synth_features;
use crate::records::{FraudMechanism, TxnRecord};

/// The raw synthetic world: a transaction log plus entity-pool sizes.
#[derive(Debug)]
pub struct World {
    pub records: Vec<TxnRecord>,
    pub n_buyers: usize,
    pub n_pmt: usize,
    pub n_email: usize,
    pub n_addr: usize,
}

/// Per-buyer entity ownership.
struct BuyerProfile {
    pmts: Vec<usize>,
    email: usize,
    addrs: Vec<usize>,
    category: usize,
}

/// Allocator for the global entity id pools.
#[derive(Default)]
struct Pools {
    pmt: usize,
    email: usize,
    addr: usize,
    buyer: usize,
}

impl Pools {
    fn pmt(&mut self) -> usize {
        self.pmt += 1;
        self.pmt - 1
    }
    fn email(&mut self) -> usize {
        self.email += 1;
        self.email - 1
    }
    fn addr(&mut self) -> usize {
        self.addr += 1;
        self.addr - 1
    }
    fn buyer(&mut self) -> usize {
        self.buyer += 1;
        self.buyer - 1
    }
}

/// Appends one transaction record with mechanism-dependent latent risk.
#[allow(clippy::too_many_arguments)]
fn push_txn(
    records: &mut Vec<TxnRecord>,
    rng: &mut StdRng,
    feature_dim: usize,
    buyer: Option<usize>,
    pmt: usize,
    email: usize,
    addr: usize,
    mechanism: FraudMechanism,
    category: usize,
    time: f32,
) {
    // Risk bands deliberately overlap (benign tops out above where fraud
    // starts): a feature-only classifier stays clearly below the graph-aware
    // ceiling, mirroring the paper's 0.87–0.91 AUC regime rather than a
    // trivially separable toy.
    let latent_risk = match mechanism {
        FraudMechanism::Benign => rng.gen_range(0.02..0.55),
        FraudMechanism::StolenCard => rng.gen_range(0.40..0.95),
        FraudMechanism::Warehouse => rng.gen_range(0.35..0.92),
        FraudMechanism::Ring => rng.gen_range(0.38..0.93),
        FraudMechanism::GuestCheckout => rng.gen_range(0.42..0.97),
    };
    let features = synth_features(feature_dim, latent_risk, category, rng);
    records.push(TxnRecord {
        buyer,
        pmt,
        email,
        addr,
        mechanism,
        latent_risk,
        time,
        features,
    });
}

/// Generates the synthetic transaction log.
///
/// Phases (each one a fraud mechanism the paper's case studies describe):
/// 1. benign background traffic of buyers against their own entities;
/// 2. stolen-card incidents — bursts on a victim's payment token (§3.1:
///    "a credit card might be linked to both a legitimate user and a
///    fraudulent user ... in a card stolen case");
/// 3. warehouse drop addresses shared across frauds *and* some benign
///    traffic (the ambiguity of Fig. 11);
/// 4. cultivated rings — accounts that first build trust with legit
///    purchases, then burst (Appendix G: defaulters "cultivate" accounts);
/// 5. guest-checkout frauds with no buyer link (Appendix G.3).
pub fn generate_log(cfg: &WorldConfig) -> World {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pools = Pools::default();
    let mut records: Vec<TxnRecord> = Vec::new();
    let dim = cfg.feature_dim;

    // --- 1. legitimate buyers and their background traffic -----------------
    // A pool of *shared* residential/pickup addresses (apartment buildings,
    // parcel lockers): they tie benign buyers into larger communities, so
    // benign traffic survives the Appendix-B small-neighbourhood filter just
    // like real data does.
    let shared_addr_pool: Vec<usize> = (0..(cfg.n_buyers / 8).max(1))
        .map(|_| pools.addr())
        .collect();
    let buyers: Vec<BuyerProfile> = (0..cfg.n_buyers)
        .map(|_| {
            pools.buyer();
            let n_pmts = 1 + usize::from(rng.gen_bool(0.3));
            let mut addrs = vec![pools.addr()];
            if rng.gen_bool(0.45) {
                addrs.push(shared_addr_pool[rng.gen_range(0..shared_addr_pool.len())]);
            }
            BuyerProfile {
                pmts: (0..n_pmts).map(|_| pools.pmt()).collect(),
                email: pools.email(),
                addrs,
                category: rng.gen_range(0..8),
            }
        })
        .collect();

    for (b, profile) in buyers.iter().enumerate() {
        // Geometric-ish count with the configured mean.
        let mut n = 1;
        while rng.gen_bool((1.0 - 1.0 / cfg.txns_per_buyer.max(1.0)).clamp(0.0, 0.95)) {
            n += 1;
        }
        for _ in 0..n {
            let pmt = profile.pmts[rng.gen_range(0..profile.pmts.len())];
            let addr = profile.addrs[rng.gen_range(0..profile.addrs.len())];
            let time = rng.gen_range(0.0..1.0);
            push_txn(
                &mut records,
                &mut rng,
                dim,
                Some(b),
                pmt,
                profile.email,
                addr,
                FraudMechanism::Benign,
                profile.category,
                time,
            );
        }
    }

    // --- 2. stolen-card incidents ------------------------------------------
    for i in 0..cfg.n_stolen_card_incidents {
        let victim = rng.gen_range(0..buyers.len());
        let stolen_pmt = buyers[victim].pmts[0];
        // Half the incidents run through a throwaway "fraudster" account,
        // half are guest checkouts on the stolen token.
        let fraud_buyer = if i % 2 == 0 {
            Some(pools.buyer())
        } else {
            None
        };
        let drop_email = pools.email();
        let drop_addr = pools.addr();
        // The thief bursts within a couple of days of the theft.
        let incident_start: f32 = rng.gen_range(0.0..0.96);
        for _ in 0..cfg.stolen_burst {
            let category = rng.gen_range(0..8);
            let time: f32 = incident_start + rng.gen_range(0.0..0.03);
            push_txn(
                &mut records,
                &mut rng,
                dim,
                fraud_buyer,
                stolen_pmt,
                drop_email,
                drop_addr,
                FraudMechanism::StolenCard,
                category,
                time.min(0.999),
            );
        }
    }

    // --- 3. warehouse drop addresses ----------------------------------------
    for _ in 0..cfg.n_warehouses {
        let warehouse = pools.addr();
        for _ in 0..cfg.warehouse_frauds {
            // Each fraud gets a cheap fresh identity but ships to the shared
            // warehouse — the linkage the explainer should surface.
            let buyer = if rng.gen_bool(0.5) {
                Some(pools.buyer())
            } else {
                None
            };
            let pmt = pools.pmt();
            let email = pools.email();
            let category = rng.gen_range(0..8);
            let time = rng.gen_range(0.0..1.0);
            push_txn(
                &mut records,
                &mut rng,
                dim,
                buyer,
                pmt,
                email,
                warehouse,
                FraudMechanism::Warehouse,
                category,
                time,
            );
        }
        for _ in 0..cfg.warehouse_benign {
            // Legit pickup-point users muddy the signal.
            let b = rng.gen_range(0..buyers.len());
            let (pmt, email, category) = (buyers[b].pmts[0], buyers[b].email, buyers[b].category);
            let time = rng.gen_range(0.0..1.0);
            push_txn(
                &mut records,
                &mut rng,
                dim,
                Some(b),
                pmt,
                email,
                warehouse,
                FraudMechanism::Benign,
                category,
                time,
            );
        }
    }

    // --- 4. cultivated rings --------------------------------------------------
    for _ in 0..cfg.n_rings {
        // Ring accounts share a small pool of payment tokens and emails.
        let shared_pmts: Vec<usize> = (0..2).map(|_| pools.pmt()).collect();
        let shared_emails: Vec<usize> = (0..2).map(|_| pools.email()).collect();
        let ring_addr = pools.addr();
        // Cultivate-then-attack timeline (Appendix H.5: "defaulters would
        // cultivate a set of accounts for many months ... then launch").
        let ring_start: f32 = rng.gen_range(0.0..0.5);
        for _ in 0..cfg.ring_size {
            let account = pools.buyer();
            let own_addr = pools.addr();
            for _ in 0..cfg.ring_cultivation {
                let pmt = shared_pmts[rng.gen_range(0..shared_pmts.len())];
                let email = shared_emails[rng.gen_range(0..shared_emails.len())];
                let category = rng.gen_range(0..8);
                let time: f32 = ring_start + rng.gen_range(0.0..0.2);
                push_txn(
                    &mut records,
                    &mut rng,
                    dim,
                    Some(account),
                    pmt,
                    email,
                    own_addr,
                    FraudMechanism::Benign,
                    category,
                    time.min(0.999),
                );
            }
            for _ in 0..cfg.ring_burst {
                let pmt = shared_pmts[rng.gen_range(0..shared_pmts.len())];
                let email = shared_emails[rng.gen_range(0..shared_emails.len())];
                let category = rng.gen_range(0..8);
                let time: f32 = ring_start + 0.4 + rng.gen_range(0.0..0.05);
                push_txn(
                    &mut records,
                    &mut rng,
                    dim,
                    Some(account),
                    pmt,
                    email,
                    ring_addr,
                    FraudMechanism::Ring,
                    category,
                    time.min(0.999),
                );
            }
        }
    }

    // --- 5. guest-checkout frauds ----------------------------------------------
    for i in 0..cfg.n_guest_frauds {
        // Two thirds reuse a risky existing token/email (catchable by graph
        // linkage); one third is fully fresh — the paper's hard case that
        // "none of the trivial entities can be linked".
        let (pmt, email) = if i % 3 != 0 && !records.is_empty() {
            let donor = rng.gen_range(0..records.len());
            (records[donor].pmt, records[donor].email)
        } else {
            (pools.pmt(), pools.email())
        };
        let addr = pools.addr();
        let category = rng.gen_range(0..8);
        let time = rng.gen_range(0.0..1.0);
        push_txn(
            &mut records,
            &mut rng,
            dim,
            None,
            pmt,
            email,
            addr,
            FraudMechanism::GuestCheckout,
            category,
            time,
        );
    }

    World {
        records,
        n_buyers: pools.buyer,
        n_pmt: pools.pmt,
        n_email: pools.email,
        n_addr: pools.addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_deterministic_per_seed() {
        let cfg = WorldConfig::default();
        let a = generate_log(&cfg);
        let b = generate_log(&cfg);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.pmt, y.pmt);
            assert_eq!(x.features, y.features);
        }
        let c = generate_log(&WorldConfig { seed: 99, ..cfg });
        assert_ne!(
            a.records.iter().map(|r| r.pmt).collect::<Vec<_>>(),
            c.records.iter().map(|r| r.pmt).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_mechanisms_are_present() {
        let w = generate_log(&WorldConfig::default());
        for m in [
            FraudMechanism::Benign,
            FraudMechanism::StolenCard,
            FraudMechanism::Warehouse,
            FraudMechanism::Ring,
            FraudMechanism::GuestCheckout,
        ] {
            assert!(
                w.records.iter().any(|r| r.mechanism == m),
                "mechanism {m:?} missing from the log"
            );
        }
    }

    #[test]
    fn stolen_card_reuses_a_victim_token() {
        let w = generate_log(&WorldConfig::default());
        // A stolen token must also appear in at least one benign record
        // (that is the entire point of the mechanism).
        let stolen: Vec<usize> = w
            .records
            .iter()
            .filter(|r| r.mechanism == FraudMechanism::StolenCard)
            .map(|r| r.pmt)
            .collect();
        assert!(!stolen.is_empty());
        let any_shared = stolen.iter().any(|&p| {
            w.records
                .iter()
                .any(|r| r.mechanism == FraudMechanism::Benign && r.pmt == p)
        });
        assert!(any_shared, "no stolen token is shared with benign traffic");
    }

    #[test]
    fn guest_checkouts_have_no_buyer() {
        let w = generate_log(&WorldConfig::default());
        assert!(w
            .records
            .iter()
            .filter(|r| r.mechanism == FraudMechanism::GuestCheckout)
            .all(|r| r.buyer.is_none()));
    }

    #[test]
    fn fraud_risk_exceeds_benign_risk_on_average() {
        let w = generate_log(&WorldConfig::default());
        let avg = |fraud: bool| {
            let v: Vec<f32> = w
                .records
                .iter()
                .filter(|r| r.is_fraud() == fraud)
                .map(|r| r.latent_risk)
                .collect();
            v.iter().sum::<f32>() / v.len() as f32
        };
        assert!(avg(true) > avg(false) + 0.25);
    }
}
