//! Synthetic transaction-log generator — the stand-in for eBay's proprietary
//! datasets (Table 2: eBay-small/large/xlarge).
//!
//! The generator is a small world model of an e-commerce platform:
//!
//! * **Buyers** own payment tokens, emails and shipping addresses, and
//!   execute mostly-benign transactions against their own entities.
//! * **Fraud mechanisms** are *planted* on top (§1 and §5.2 of the paper
//!   motivate each): stolen payment tokens, shared warehouse drop addresses,
//!   cultivated fraud rings, and anonymous guest checkouts.
//! * **Transaction features** mimic the upstream "risk identification
//!   system": a handful of dimensions carry a noisy view of the latent risk,
//!   the rest are noise — so features alone are informative but the *graph*
//!   (shared risky entities) adds real signal, which is exactly the premise
//!   of the paper.
//!
//! [`build_dataset`] then applies the Appendix-B construction protocol
//! (entity sharing → links, label sampling with benign down-sampling to the
//! published ≈4.3 % fraud share, small-neighbourhood filtering) and returns a
//! [`Dataset`]: the [`xfraud_hetgraph::HetGraph`] plus per-node ground-truth
//! risk involvement, which the explainer experiments use to simulate human
//! annotators.
//!
//! Presets [`DatasetPreset::EbaySmallSim`] / `EbayLargeSim` / `EbayXlargeSim`
//! reproduce the published node-type mix, sparsity and fraud rate at laptop
//! scale.

mod config;
mod construct;
mod dataset;
mod features;
mod generator;
mod ondisk;
mod records;
mod stream;
mod streamgen;

pub use config::{DatasetPreset, WorldConfig};
pub use construct::build_dataset;
pub use dataset::Dataset;
pub use features::gaussian;
pub use generator::generate_log;
pub use ondisk::{open_feature_store, stream_dataset_to_dir, BuildStats, OnDiskDataset};
pub use records::{FraudMechanism, TxnRecord};
pub use stream::{event_stream, flatten_events, TxnArrival};
pub use streamgen::{
    pool_sizes, record_features, record_label, scaled_large_config, stream_records, PoolSizes,
    StreamRecord,
};
