use rand::rngs::StdRng;
use rand::Rng;

/// A standard-normal sample via Box–Muller (the offline `rand` build has no
/// `rand_distr`, so we roll the two-line classic ourselves).
pub fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Synthesises the feature vector the upstream "risk identification system"
/// would attach to a transaction.
///
/// Layout for a `dim`-dimensional vector:
/// * dims `0..n_signal` — a noisy affine view of the latent risk with
///   per-dimension sign/scale (the ML-model scores and velocity counters a
///   real risk system emits);
/// * dims `n_signal..n_signal+n_cat` — a one-hot item-category bucket
///   (the paper encodes "item-type info ... in the transaction features");
/// * the rest — pure noise.
///
/// The signal-to-noise ratio is tuned so a feature-only classifier is decent
/// but clearly below a graph-aware one, matching the paper's premise.
pub fn synth_features(dim: usize, latent_risk: f32, category: usize, rng: &mut StdRng) -> Vec<f32> {
    let n_signal = (dim / 4).clamp(2, 8);
    let n_cat = (dim / 6).clamp(2, 8);
    let mut out = Vec::with_capacity(dim);
    for j in 0..dim {
        if j < n_signal {
            // Alternating-sign loadings; σ≈0.8 noise against a sub-unit
            // signal keeps features informative but far from sufficient.
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            let scale = 0.7 + 0.15 * (j as f32);
            out.push(sign * scale * (latent_risk - 0.5) + 0.8 * gaussian(rng));
        } else if j < n_signal + n_cat {
            let bucket = j - n_signal;
            out.push(if category % n_cat == bucket { 1.0 } else { 0.0 });
        } else {
            out.push(gaussian(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn features_have_requested_dim_and_one_hot_category() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = synth_features(24, 0.9, 3, &mut rng);
        assert_eq!(f.len(), 24);
        let n_signal = 6;
        let n_cat = 4;
        let cat_slice = &f[n_signal..n_signal + n_cat];
        assert_eq!(cat_slice.iter().filter(|&&x| x == 1.0).count(), 1);
        assert_eq!(cat_slice[3], 1.0);
    }

    #[test]
    fn risk_shifts_signal_dimensions() {
        // Average the first signal dim over many draws at low vs high risk.
        let mut rng = StdRng::seed_from_u64(3);
        let avg = |risk: f32, rng: &mut StdRng| -> f32 {
            (0..500)
                .map(|_| synth_features(24, risk, 0, rng)[0])
                .sum::<f32>()
                / 500.0
        };
        let low = avg(0.05, &mut rng);
        let high = avg(0.95, &mut rng);
        assert!(
            high - low > 0.5,
            "signal dim must separate risk: low={low} high={high}"
        );
    }
}
