//! Ordered event-stream emitter — the *producer* side of streaming
//! ingestion.
//!
//! [`build_dataset`](crate::build_dataset) freezes a whole transaction log
//! into one batch-built graph; [`event_stream`] instead replays the same
//! world as it would arrive in production: transactions sorted by
//! [`TxnRecord::time`], each expanded into its [`GraphEvent`]s (the
//! transaction node, lazily-created entity nodes, and the links between
//! them). Consumers append the events to a
//! [`xfraud_hetgraph::DeltaGraph`] (optionally through a WAL) and can score
//! each transaction the moment it lands.
//!
//! Node ids in emitted `Link` events are *predicted* ids: event application
//! assigns ids by arrival order, so the emitter simulates the same counter,
//! starting at `first_node_id` (0 for a fresh graph, `base.n_nodes()` when
//! streaming on top of an existing base). Label sampling follows the
//! Appendix-B protocol of `build_dataset` (all frauds labelled, benign
//! labelled with probability `benign_label_rate`, asymmetric chargeback-lag
//! noise) with a per-record RNG, so the stream is deterministic in
//! `cfg.seed` regardless of arrival order. Unlike the batch path, no
//! small-component filtering happens — a live stream cannot know a
//! component's final size.

use std::collections::HashMap;

use xfraud_hetgraph::{GraphEvent, NodeId, NodeType};

use crate::config::WorldConfig;
use crate::generator::World;
use crate::records::TxnRecord;

/// One transaction arriving on the stream: its event group plus the
/// metadata a serving harness needs (arrival time, the id the transaction
/// node will get, ground truth for evaluation).
#[derive(Debug, Clone)]
pub struct TxnArrival {
    /// Arrival time (the record's `time`, a fraction of the window).
    pub time: f32,
    /// Node id the `AddTxn` event will be assigned on application.
    pub txn_node: NodeId,
    /// Generator-side ground truth (never shown to the detector).
    pub is_fraud: bool,
    /// Events in application order: `AddTxn` first, then any `AddEntity`
    /// for first-seen entities, with a `Link` after each endpoint exists.
    pub events: Vec<GraphEvent>,
}

/// Emits the world's transaction log as a time-ordered event stream.
///
/// `first_node_id` is the id the first emitted node will receive — pass
/// `0` when applying onto an empty graph, or `base.n_nodes()` when the
/// consumer streams onto an existing base graph.
pub fn event_stream(world: &World, cfg: &WorldConfig, first_node_id: NodeId) -> Vec<TxnArrival> {
    let mut order: Vec<usize> = (0..world.records.len()).collect();
    // Stable order on (time, record index): total_cmp gives a total order
    // even for non-finite times, and the index tiebreak keeps the stream
    // deterministic.
    order.sort_by(|&a, &b| {
        world.records[a]
            .time
            .total_cmp(&world.records[b].time)
            .then(a.cmp(&b))
    });

    let mut next_id = first_node_id;
    let mut pmt_node: HashMap<usize, NodeId> = HashMap::new();
    let mut email_node: HashMap<usize, NodeId> = HashMap::new();
    let mut addr_node: HashMap<usize, NodeId> = HashMap::new();
    let mut buyer_node: HashMap<usize, NodeId> = HashMap::new();

    let mut arrivals = Vec::with_capacity(order.len());
    // Not a plain loop counter: `next_id` also advances inside `attach`
    // whenever a first-seen entity is created.
    #[allow(clippy::explicit_counter_loop)]
    for rec_idx in order {
        let rec = &world.records[rec_idx];
        let mut events = Vec::with_capacity(9);

        let txn_node = next_id;
        next_id += 1;
        events.push(GraphEvent::AddTxn {
            features: rec.features.clone(),
            label: stream_label(rec, rec_idx, cfg),
        });

        let mut attach = |pool: &mut HashMap<usize, NodeId>, key: usize, ty: NodeType| {
            let entity = *pool.entry(key).or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                events.push(GraphEvent::AddEntity { ty });
                id
            });
            events.push(GraphEvent::Link {
                a: txn_node,
                b: entity,
            });
        };
        attach(&mut pmt_node, rec.pmt, NodeType::Pmt);
        attach(&mut email_node, rec.email, NodeType::Email);
        attach(&mut addr_node, rec.addr, NodeType::Addr);
        if let Some(buyer) = rec.buyer {
            attach(&mut buyer_node, buyer, NodeType::Buyer);
        }

        arrivals.push(TxnArrival {
            time: rec.time,
            txn_node,
            is_fraud: rec.is_fraud(),
            events,
        });
    }
    arrivals
}

/// Flattens arrivals into the raw event sequence (WAL append order).
pub fn flatten_events(arrivals: &[TxnArrival]) -> Vec<GraphEvent> {
    arrivals.iter().flat_map(|a| a.events.clone()).collect()
}

/// Appendix-B label protocol with a per-record RNG: the label a record gets
/// is a pure function of `(cfg.seed, record index)`, independent of where
/// the record lands in the time-sorted stream. The derivation is shared
/// with the out-of-core streaming generator.
fn stream_label(rec: &TxnRecord, rec_idx: usize, cfg: &WorldConfig) -> Option<bool> {
    crate::streamgen::record_label(cfg, rec_idx as u64, rec.is_fraud())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_log;
    use xfraud_hetgraph::{DeltaGraph, GraphView, GraphViewExt};

    fn small_world() -> (World, WorldConfig) {
        let cfg = WorldConfig {
            n_buyers: 120,
            ..WorldConfig::default()
        };
        let world = generate_log(&cfg);
        (world, cfg)
    }

    #[test]
    fn stream_is_time_ordered_and_deterministic() {
        let (world, cfg) = small_world();
        let a = event_stream(&world, &cfg, 0);
        let b = event_stream(&world, &cfg, 0);
        assert_eq!(a.len(), world.records.len());
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time, "stream must be time-sorted");
        }
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "emitter must be deterministic");
        }
    }

    #[test]
    fn applying_the_stream_builds_a_consistent_graph() {
        let (world, cfg) = small_world();
        let arrivals = event_stream(&world, &cfg, 0);
        let mut delta = DeltaGraph::empty(cfg.feature_dim);
        for arrival in &arrivals {
            let mut first = None;
            for e in &arrival.events {
                if let Some(id) = delta.apply(e).expect("stream events apply cleanly") {
                    first.get_or_insert(id);
                }
            }
            // The AddTxn event got exactly the id the emitter predicted.
            assert_eq!(first, Some(arrival.txn_node));
            assert_eq!(
                GraphView::node_type(&delta, arrival.txn_node),
                NodeType::Txn
            );
            // Each txn is linked to pmt + email + addr (+ buyer).
            let deg = delta.degree(arrival.txn_node);
            assert!(deg == 3 || deg == 4, "unexpected degree {deg}");
        }
        let compacted = delta.compact().unwrap();
        assert!(compacted.validate());
        assert_eq!(compacted.txn_nodes().len(), world.records.len());
    }

    #[test]
    fn id_offset_shifts_every_referenced_node() {
        let (world, cfg) = small_world();
        let base_n = 1000;
        let zero = event_stream(&world, &cfg, 0);
        let shifted = event_stream(&world, &cfg, base_n);
        for (a, b) in zero.iter().zip(&shifted) {
            assert_eq!(a.txn_node + base_n, b.txn_node);
            for (ea, eb) in a.events.iter().zip(&b.events) {
                match (ea, eb) {
                    (GraphEvent::Link { a: a1, b: b1 }, GraphEvent::Link { a: a2, b: b2 }) => {
                        assert_eq!(a1 + base_n, *a2);
                        assert_eq!(b1 + base_n, *b2);
                    }
                    _ => assert_eq!(ea, eb),
                }
            }
        }
    }

    #[test]
    fn labels_follow_the_batch_protocol_statistically() {
        let (world, cfg) = small_world();
        let arrivals = event_stream(&world, &cfg, 0);
        let mut frauds = 0;
        let mut benign_labeled = 0;
        let mut unlabeled = 0;
        for a in &arrivals {
            match &a.events[0] {
                GraphEvent::AddTxn { label, .. } => match label {
                    Some(_) if a.is_fraud => frauds += 1,
                    Some(_) => benign_labeled += 1,
                    None => unlabeled += 1,
                },
                other => panic!("first event must be AddTxn, got {other:?}"),
            }
        }
        // All frauds carry labels; benign labelling is down-sampled to
        // roughly `benign_label_rate` of benign traffic.
        assert!(frauds > 0, "no fraud in the world");
        assert!(
            unlabeled > 0,
            "benign down-sampling must leave unlabelled txns"
        );
        let rate = benign_labeled as f64 / (benign_labeled + unlabeled) as f64;
        assert!(
            (rate - cfg.benign_label_rate).abs() < 0.1,
            "benign label rate {rate} vs configured {}",
            cfg.benign_label_rate
        );
    }
}
