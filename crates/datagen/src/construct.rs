use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xfraud_hetgraph::{GraphBuilder, NodeId, NodeType};

use crate::config::WorldConfig;
use crate::dataset::Dataset;
use crate::generator::World;

/// Applies the Appendix-B graph-construction protocol to a transaction log:
///
/// 1. every transaction becomes a `txn` node; every entity that appears
///    becomes an entity node; usage creates a link;
/// 2. labels: all frauds are labelled, benign transactions are labelled with
///    probability `benign_label_rate` (the paper samples 1 % of non-fraud —
///    "the other transactions are still in the graph, but without supervised
///    labels");
/// 3. neighbourhoods (connected components) with fewer than
///    `min_neighborhood_txns` transactions are filtered out to preserve
///    connectivity.
///
/// Ground-truth node risk for the annotator simulation is carried through:
/// a transaction keeps its latent risk; an entity scores by the share and
/// strength of fraudulent transactions incident to it.
pub fn build_dataset(world: &World, cfg: &WorldConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_1abe);

    let est_nodes = world.records.len() * 2;
    let mut b = GraphBuilder::with_capacity(cfg.feature_dim, est_nodes, world.records.len() * 4);

    // Entity nodes are created lazily on first use.
    let mut pmt_node: HashMap<usize, NodeId> = HashMap::new();
    let mut email_node: HashMap<usize, NodeId> = HashMap::new();
    let mut addr_node: HashMap<usize, NodeId> = HashMap::new();
    let mut buyer_node: HashMap<usize, NodeId> = HashMap::new();

    let mut txn_nodes: Vec<NodeId> = Vec::with_capacity(world.records.len());
    for rec in &world.records {
        let clean = if rec.is_fraud() {
            Some(true)
        } else if rng.gen_bool(cfg.benign_label_rate) {
            Some(false)
        } else {
            None
        };
        // Chargeback-lag label noise (see `WorldConfig::label_noise`):
        // asymmetric, as in production — frauds go unreported (banks never
        // forward some card-stolen claims, §5.2) far more often than benign
        // transactions get wrongly flagged.
        let label = clean.map(|y| {
            let flip_prob = if y {
                cfg.label_noise
            } else {
                cfg.label_noise * 0.1
            };
            if rng.gen_bool(flip_prob) {
                !y
            } else {
                y
            }
        });
        let t = b.add_txn(&rec.features, label);
        txn_nodes.push(t);

        let p = *pmt_node
            .entry(rec.pmt)
            .or_insert_with(|| b.add_entity(NodeType::Pmt));
        // xlint: allow(p1, reason = "txn→entity links are schema-legal by construction; link() only rejects entity-entity pairs")
        b.link(t, p).expect("txn-pmt link");
        let e = *email_node
            .entry(rec.email)
            .or_insert_with(|| b.add_entity(NodeType::Email));
        // xlint: allow(p1, reason = "txn→entity links are schema-legal by construction")
        b.link(t, e).expect("txn-email link");
        let a = *addr_node
            .entry(rec.addr)
            .or_insert_with(|| b.add_entity(NodeType::Addr));
        // xlint: allow(p1, reason = "txn→entity links are schema-legal by construction")
        b.link(t, a).expect("txn-addr link");
        if let Some(buyer) = rec.buyer {
            let u = *buyer_node
                .entry(buyer)
                .or_insert_with(|| b.add_entity(NodeType::Buyer));
            // xlint: allow(p1, reason = "txn→entity links are schema-legal by construction")
            b.link(t, u).expect("txn-buyer link");
        }
    }

    // xlint: allow(p1, reason = "every node added above was linked through the builder, so finish() cannot observe an inconsistency")
    let full = b.finish().expect("builder consistency");

    // Ground-truth risk, event times and mechanisms on the full graph.
    let mut node_risk = vec![0.0f32; full.n_nodes()];
    let mut node_time = vec![f32::INFINITY; full.n_nodes()];
    let mut node_mechanism: Vec<Option<crate::records::FraudMechanism>> =
        vec![None; full.n_nodes()];
    for (i, rec) in world.records.iter().enumerate() {
        node_risk[txn_nodes[i]] = rec.latent_risk;
        node_time[txn_nodes[i]] = rec.time;
        node_mechanism[txn_nodes[i]] = Some(rec.mechanism);
    }
    // Entities inherit their earliest incident transaction time.
    for v in 0..full.n_nodes() {
        if full.node_type(v) != NodeType::Txn {
            let earliest = full
                .neighbors(v)
                .map(|u| node_time[u])
                .fold(f32::INFINITY, f32::min);
            node_time[v] = if earliest.is_finite() { earliest } else { 0.0 };
        }
    }
    for v in 0..full.n_nodes() {
        if full.node_type(v) == NodeType::Txn {
            continue;
        }
        let mut fraud_risk_sum = 0.0f32;
        let mut fraud = 0usize;
        let mut total = 0usize;
        for u in full.neighbors(v) {
            total += 1;
            if full.label(u) == Some(true) {
                fraud += 1;
                fraud_risk_sum += node_risk[u];
            }
        }
        if total > 0 && fraud > 0 {
            let share = fraud as f32 / total as f32;
            let strength = fraud_risk_sum / fraud as f32;
            // Entities channelling mostly-fraud traffic approach risk 1.
            node_risk[v] = (0.25 + 0.75 * share) * strength;
        } else {
            node_risk[v] = 0.05;
        }
    }

    // Component filtering (Appendix B step 3).
    let keep = filter_small_components(&full, cfg.min_neighborhood_txns);
    let (graph, map) = full.induced_subgraph(&keep);
    let mut kept_risk = vec![0.0f32; graph.n_nodes()];
    let mut kept_time = vec![0.0f32; graph.n_nodes()];
    let mut kept_mech = vec![None; graph.n_nodes()];
    for (old, &new) in map.iter().enumerate() {
        if let Some(new) = new {
            kept_risk[new] = node_risk[old];
            kept_time[new] = node_time[old];
            kept_mech[new] = node_mechanism[old];
        }
    }

    Dataset {
        name: String::from("custom"),
        graph,
        node_risk: kept_risk,
        node_time: kept_time,
        node_mechanism: kept_mech,
    }
}

/// Nodes of components containing at least `min_txns` transactions.
/// Shared with the out-of-core build in [`crate::ondisk`].
pub(crate) fn filter_small_components(
    g: &xfraud_hetgraph::HetGraph,
    min_txns: usize,
) -> Vec<NodeId> {
    let n = g.n_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut n_comp = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = n_comp;
        n_comp += 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(v) = stack.pop() {
            for u in g.neighbors(v) {
                if comp[u] == usize::MAX {
                    comp[u] = id;
                    stack.push(u);
                }
            }
        }
    }
    let mut txns_per_comp = vec![0usize; n_comp];
    for v in 0..n {
        if g.node_type(v) == NodeType::Txn {
            txns_per_comp[comp[v]] += 1;
        }
    }
    (0..n)
        .filter(|&v| txns_per_comp[comp[v]] >= min_txns)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetPreset, WorldConfig};
    use crate::generator::generate_log;
    use xfraud_hetgraph::GraphStats;

    #[test]
    fn small_preset_matches_paper_shape() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
        let s = GraphStats::of(&ds.graph);
        assert!(ds.graph.validate());
        assert!(s.n_nodes > 1_000, "too small: {}", s.n_nodes);
        // Sparsity near the published 1.5–3.4 links/node band.
        let spn = s.links_per_node();
        assert!((1.0..4.0).contains(&spn), "links/node {spn}");
        // txn share dominates the node mix (Table 6: 42–77 %).
        assert!(
            s.type_share(NodeType::Txn) > 0.35,
            "txn share {}",
            s.type_share(NodeType::Txn)
        );
        // Labelled fraud rate in a broad band around the paper's ~4 %.
        let fr = s.fraud_rate();
        assert!((0.01..0.25).contains(&fr), "fraud rate {fr}");
    }

    #[test]
    fn every_component_has_min_txns() {
        let cfg = WorldConfig {
            min_neighborhood_txns: 5,
            ..WorldConfig::default()
        };
        let world = generate_log(&cfg);
        let ds = build_dataset(&world, &cfg);
        let g = &ds.graph;
        // Recompute components on the filtered graph and check the floor.
        let keep = filter_small_components(g, 5);
        assert_eq!(
            keep.len(),
            g.n_nodes(),
            "a small component survived filtering"
        );
    }

    #[test]
    fn risk_ground_truth_is_higher_for_fraud_nodes() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 11);
        let g = &ds.graph;
        let (mut fr, mut bn) = (Vec::new(), Vec::new());
        for (v, y) in g.labeled_txns() {
            if y {
                fr.push(ds.node_risk[v]);
            } else {
                bn.push(ds.node_risk[v]);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        // Risk bands overlap by design and 4% of labels are noise-flipped,
        // so the mean gap is moderate but must stay clearly positive.
        assert!(
            mean(&fr) > mean(&bn) + 0.12,
            "fraud {} vs benign {}",
            mean(&fr),
            mean(&bn)
        );
    }

    #[test]
    fn node_mechanisms_align_with_labels_and_types() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
        let g = &ds.graph;
        assert_eq!(ds.node_mechanism.len(), g.n_nodes());
        for v in 0..g.n_nodes() {
            match ds.node_mechanism[v] {
                Some(m) => {
                    assert_eq!(g.node_type(v), NodeType::Txn, "mechanism on entity {v}");
                    // Label noise flips a few, but mechanism fraud-ness and
                    // the label must agree for the overwhelming majority.
                    let _ = m;
                }
                None => assert_ne!(g.node_type(v), NodeType::Txn, "txn {v} lost its mechanism"),
            }
        }
        let labeled = g.labeled_txns();
        let agree = labeled
            .iter()
            .filter(|&&(v, y)| ds.node_mechanism[v].is_some_and(|m| m.is_fraud() == y))
            .count();
        assert!(
            agree as f64 / labeled.len() as f64 > 0.9,
            "labels and mechanisms diverged beyond the configured noise"
        );
    }

    #[test]
    fn unlabeled_benign_txns_exist() {
        let ds = Dataset::generate(DatasetPreset::EbaySmallSim, 7);
        let g = &ds.graph;
        let unlabeled = g
            .txn_nodes()
            .iter()
            .filter(|&&v| g.label(v).is_none())
            .count();
        assert!(
            unlabeled > 0,
            "benign down-sampling should leave unlabelled txns in the graph"
        );
    }

    #[test]
    fn presets_scale_up() {
        let small = Dataset::generate(DatasetPreset::EbaySmallSim, 7)
            .stats()
            .n_nodes;
        let large = Dataset::generate(DatasetPreset::EbayLargeSim, 7)
            .stats()
            .n_nodes;
        assert!(
            large > small * 4,
            "large ({large}) must dwarf small ({small})"
        );
    }
}
