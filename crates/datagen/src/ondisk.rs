//! Two-pass out-of-core dataset build: paper-scale graphs whose feature
//! matrix never exists in memory.
//!
//! At eBay-large scale the feature matrix dominates the footprint (Table 2:
//! hundreds of floats per transaction) while the topology — CSR offsets,
//! targets, types, labels — stays comparatively small. The build exploits
//! the streaming generator's pure-function structure to split the two:
//!
//! * **Pass A (topology).** [`stream_records`] is replayed once into a
//!   `feature_dim == 0` [`GraphBuilder`]: every record becomes a
//!   transaction node, entities materialise lazily on first use (dense
//!   entity→node maps sized by [`pool_sizes`]), labels follow the
//!   Appendix-B protocol via [`record_label`], and each record is appended
//!   to `events.log` as a checksummed frame. Appendix-B small-component
//!   filtering then produces the final graph. No feature vector is ever
//!   synthesised in this pass.
//! * **Pass B (features).** The stream is replayed a second time; records
//!   whose transaction survived filtering get their feature row (a pure
//!   function of the record index, [`record_features`]) written straight
//!   into a [`DiskStore`]-backed [`FeatureStore`] keyed by the *final*
//!   node id, then the store is flushed and compacted into sealed mmap
//!   segments.
//!
//! Peak memory is the topology plus O(1) per-record buffers — features
//! stream through a single row — which is what lets `ebay-large-sim`
//! scale to ≥1 M nodes on one machine. Training and scoring run over
//! [`OnDiskDataset::view`], an [`ExternalFeatureGraph`] that pages rows
//! in from the mapped segment files on demand (Fig. 12/13's multi-reader
//! loader path).

use std::fs::File;
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use xfraud_diskstore::{BlockStore, DiskStore, DiskStoreOptions, StoreError};
use xfraud_hetgraph::{ExternalFeatureGraph, GraphBuilder, HetGraph, NodeId, NodeType};
use xfraud_kvstore::framing;
use xfraud_kvstore::FeatureStore;

use crate::config::WorldConfig;
use crate::construct::filter_small_components;
use crate::records::FraudMechanism;
use crate::streamgen::{pool_sizes, record_features, record_label, stream_records, StreamRecord};

/// Counters of one on-disk build.
#[derive(Debug, Clone, Copy)]
pub struct BuildStats {
    /// Records emitted by the streaming generator.
    pub records_emitted: usize,
    /// Transactions that survived Appendix-B component filtering.
    pub records_kept: usize,
    /// Final graph size.
    pub n_nodes: usize,
    pub n_entities: usize,
    pub feature_dim: usize,
    /// Bytes of sealed feature segments on disk after compaction.
    pub segment_bytes: u64,
}

/// A dataset whose topology lives in RAM and whose features live in sealed
/// disk segments under `dir/features`.
pub struct OnDiskDataset {
    /// Topology-only graph (`feature_dim == 0`); labels and types are real.
    pub graph: HetGraph,
    /// The disk-backed feature rows, keyed by node id.
    pub features: Arc<FeatureStore>,
    /// Root directory: `events.log`, `meta.txt`, `features/`.
    pub dir: PathBuf,
    pub stats: BuildStats,
}

impl OnDiskDataset {
    /// The out-of-core training/scoring view: topology from RAM, feature
    /// rows paged in from the mapped segments.
    pub fn view(&self) -> ExternalFeatureGraph<HetGraph, Arc<FeatureStore>> {
        ExternalFeatureGraph::new(self.graph.clone(), Arc::clone(&self.features))
    }
}

/// On-disk encoding of one stream record (the `events.log` frame value):
/// fixed-width little-endian fields, 43 bytes.
fn encode_event(rec: &StreamRecord, label: Option<bool>, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(rec.buyer.map_or(u64::MAX, |b| b as u64)).to_le_bytes());
    out.extend_from_slice(&(rec.pmt as u64).to_le_bytes());
    out.extend_from_slice(&(rec.email as u64).to_le_bytes());
    out.extend_from_slice(&(rec.addr as u64).to_le_bytes());
    out.push(match rec.mechanism {
        FraudMechanism::Benign => 0,
        FraudMechanism::StolenCard => 1,
        FraudMechanism::Warehouse => 2,
        FraudMechanism::Ring => 3,
        FraudMechanism::GuestCheckout => 4,
    });
    out.extend_from_slice(&rec.latent_risk.to_le_bytes());
    out.extend_from_slice(&rec.time.to_le_bytes());
    out.push(rec.category as u8);
    out.push(match label {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

/// Streams the world under `cfg` to `dir` and returns the opened dataset.
///
/// `dir` is created if absent; `features/` inside it must not hold a
/// previous build (reopening an existing build is [`open_feature_store`]'s
/// job — regeneration into a dirty directory would shadow old rows).
pub fn stream_dataset_to_dir(
    cfg: &WorldConfig,
    dir: impl Into<PathBuf>,
) -> Result<OnDiskDataset, StoreError> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir)?;

    // --- Pass A: topology + event log (no features anywhere) -------------
    let pools = pool_sizes(cfg);
    let mut pmt_node: Vec<Option<NodeId>> = vec![None; pools.n_pmt];
    let mut email_node: Vec<Option<NodeId>> = vec![None; pools.n_email];
    let mut addr_node: Vec<Option<NodeId>> = vec![None; pools.n_addr];
    let mut buyer_node: Vec<Option<NodeId>> = vec![None; pools.n_buyer];

    let mut b = GraphBuilder::new(0);
    let mut txn_nodes: Vec<NodeId> = Vec::new();
    let mut log = BufWriter::new(File::create(dir.join("events.log"))?);
    let mut frame = Vec::new();
    let mut value = Vec::new();
    let mut io_err: Option<std::io::Error> = None;

    stream_records(cfg, |rec| {
        if io_err.is_some() {
            return;
        }
        let label = record_label(cfg, rec.rec_idx, rec.is_fraud());
        let t = b.add_txn([0.0f32; 0], label);
        txn_nodes.push(t);

        let mut attach = |slot: &mut Option<NodeId>, ty: NodeType| {
            let e = *slot.get_or_insert_with(|| b.add_entity(ty));
            // xlint: allow(p1, reason = "txn→entity links are schema-legal by construction; link() only rejects entity-entity pairs")
            b.link(t, e).expect("txn-entity link");
        };
        attach(&mut pmt_node[rec.pmt], NodeType::Pmt);
        attach(&mut email_node[rec.email], NodeType::Email);
        attach(&mut addr_node[rec.addr], NodeType::Addr);
        if let Some(buyer) = rec.buyer {
            attach(&mut buyer_node[buyer], NodeType::Buyer);
        }

        encode_event(&rec, label, &mut value);
        frame.clear();
        framing::encode_checked_into(&rec.rec_idx.to_be_bytes(), &value, &mut frame);
        if let Err(e) = log.write_all(&frame) {
            io_err = Some(e);
        }
    });
    if let Some(e) = io_err {
        return Err(StoreError::Io(e));
    }
    log.flush()?;
    log.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    drop((pmt_node, email_node, addr_node, buyer_node));

    // xlint: allow(p1, reason = "every node added above was linked through the builder, so finish() cannot observe an inconsistency")
    let full = b.finish().expect("builder consistency");
    let keep = filter_small_components(&full, cfg.min_neighborhood_txns);
    let (graph, map) = full.induced_subgraph(&keep);
    drop(full);

    // --- Pass B: feature rows for surviving transactions ------------------
    let store = Arc::new(DiskStore::open(
        dir.join("features"),
        DiskStoreOptions::default(),
    )?);
    let fs = FeatureStore::new(Arc::clone(&store) as Arc<_>, cfg.feature_dim);
    let mut kept = 0usize;
    let mut k = 0usize;
    stream_records(cfg, |rec| {
        let old = txn_nodes[k];
        k += 1;
        if let Some(new) = map[old] {
            fs.put_features(new, &record_features(cfg, &rec));
            kept += 1;
        }
    });
    store.flush()?;
    store.compact()?;
    store.sync()?;

    let n_txns = graph.txn_nodes().len();
    let stats = BuildStats {
        records_emitted: txn_nodes.len(),
        records_kept: kept,
        n_nodes: graph.n_nodes(),
        n_entities: graph.n_nodes() - n_txns,
        feature_dim: cfg.feature_dim,
        segment_bytes: store.storage_stats().segment_bytes,
    };
    write_meta(&dir, cfg, &stats)?;

    Ok(OnDiskDataset {
        graph,
        features: Arc::new(fs),
        dir,
        stats,
    })
}

/// Reopens the feature store of a previous [`stream_dataset_to_dir`] build
/// (recovery + segment validation happen inside [`DiskStore::open`]).
/// Returns the store plus the dimension recorded in `meta.txt`.
pub fn open_feature_store(dir: &Path) -> Result<(Arc<FeatureStore>, usize), StoreError> {
    let dim = read_meta_dim(dir)?;
    let store = Arc::new(DiskStore::open(
        dir.join("features"),
        DiskStoreOptions::default(),
    )?);
    Ok((Arc::new(FeatureStore::new(store, dim)), dim))
}

fn write_meta(dir: &Path, cfg: &WorldConfig, stats: &BuildStats) -> std::io::Result<()> {
    let mut f = File::create(dir.join("meta.txt"))?;
    writeln!(f, "feature_dim={}", cfg.feature_dim)?;
    writeln!(f, "seed={}", cfg.seed)?;
    writeln!(f, "records_emitted={}", stats.records_emitted)?;
    writeln!(f, "records_kept={}", stats.records_kept)?;
    writeln!(f, "n_nodes={}", stats.n_nodes)?;
    writeln!(f, "n_entities={}", stats.n_entities)?;
    f.sync_all()
}

fn read_meta_dim(dir: &Path) -> Result<usize, StoreError> {
    let mut text = String::new();
    File::open(dir.join("meta.txt"))?.read_to_string(&mut text)?;
    text.lines()
        .find_map(|l| l.strip_prefix("feature_dim="))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| StoreError::Corrupt {
            path: dir.join("meta.txt"),
            detail: String::from("missing or unparsable feature_dim"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfraud_hetgraph::{GraphStats, GraphView};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xfraud-ondisk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> WorldConfig {
        WorldConfig {
            n_buyers: 400,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn streamed_build_matches_paper_shape() {
        let dir = tmp_dir("shape");
        let ds = stream_dataset_to_dir(&small_cfg(), &dir).unwrap();
        assert!(ds.graph.validate());
        let s = GraphStats::of(&ds.graph);
        assert!(s.n_nodes > 1_000, "too small: {}", s.n_nodes);
        let spn = s.links_per_node();
        assert!((1.0..4.0).contains(&spn), "links/node {spn}");
        assert!(
            s.type_share(NodeType::Txn) > 0.35,
            "txn share {}",
            s.type_share(NodeType::Txn)
        );
        let fr = s.fraud_rate();
        assert!((0.01..0.25).contains(&fr), "fraud rate {fr}");
        assert_eq!(ds.stats.n_nodes, s.n_nodes);
        assert!(ds.stats.records_kept <= ds.stats.records_emitted);
        assert!(ds.stats.segment_bytes > 0, "features must hit disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn view_serves_streamed_features_and_zero_entities() {
        let dir = tmp_dir("view");
        let cfg = small_cfg();
        let ds = stream_dataset_to_dir(&cfg, &dir).unwrap();
        let view = ds.view();
        assert_eq!(view.feature_dim(), cfg.feature_dim);

        let mut row = vec![0.0f32; cfg.feature_dim];
        let mut served = 0;
        for v in ds.graph.txn_nodes().iter().take(50) {
            assert!(view.copy_features_into(*v, &mut row), "txn row missing");
            assert!(row.iter().any(|&x| x != 0.0), "txn row all-zero");
            served += 1;
        }
        assert_eq!(served, 50);
        for v in 0..ds.graph.n_nodes() {
            if ds.graph.node_type(v) != NodeType::Txn {
                assert!(!view.copy_features_into(v, &mut row));
                assert_eq!(row, vec![0.0f32; cfg.feature_dim]);
                break;
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_store_serves_identical_rows() {
        let dir = tmp_dir("reopen");
        let cfg = small_cfg();
        let ds = stream_dataset_to_dir(&cfg, &dir).unwrap();
        let before: Vec<Vec<f32>> = ds
            .graph
            .txn_nodes()
            .iter()
            .take(20)
            .map(|&v| ds.features.get_features(v))
            .collect();
        drop(ds);
        let (fs, dim) = open_feature_store(&dir).unwrap();
        assert_eq!(dim, cfg.feature_dim);
        let g = stream_dataset_to_dir_graph_only(&cfg);
        for (i, &v) in g.txn_nodes().iter().take(20).enumerate() {
            assert_eq!(fs.get_features(v), before[i], "row {v} changed on reopen");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Pass-A-only rebuild used by the reopen test (topology is a pure
    /// function of cfg, so this reproduces the node numbering).
    fn stream_dataset_to_dir_graph_only(cfg: &WorldConfig) -> HetGraph {
        let pools = pool_sizes(cfg);
        let mut pmt_node: Vec<Option<NodeId>> = vec![None; pools.n_pmt];
        let mut email_node: Vec<Option<NodeId>> = vec![None; pools.n_email];
        let mut addr_node: Vec<Option<NodeId>> = vec![None; pools.n_addr];
        let mut buyer_node: Vec<Option<NodeId>> = vec![None; pools.n_buyer];
        let mut b = GraphBuilder::new(0);
        stream_records(cfg, |rec| {
            let t = b.add_txn([0.0f32; 0], record_label(cfg, rec.rec_idx, rec.is_fraud()));
            let mut attach = |slot: &mut Option<NodeId>, ty: NodeType| {
                let e = *slot.get_or_insert_with(|| b.add_entity(ty));
                b.link(t, e).unwrap();
            };
            attach(&mut pmt_node[rec.pmt], NodeType::Pmt);
            attach(&mut email_node[rec.email], NodeType::Email);
            attach(&mut addr_node[rec.addr], NodeType::Addr);
            if let Some(buyer) = rec.buyer {
                attach(&mut buyer_node[buyer], NodeType::Buyer);
            }
        });
        let full = b.finish().unwrap();
        let keep = filter_small_components(&full, cfg.min_neighborhood_txns);
        full.induced_subgraph(&keep).0
    }

    #[test]
    fn events_log_is_a_clean_checked_stream_of_every_record() {
        let dir = tmp_dir("events");
        let cfg = small_cfg();
        let ds = stream_dataset_to_dir(&cfg, &dir).unwrap();
        let buf = std::fs::read(dir.join("events.log")).unwrap();
        let mut it = framing::CheckedFrameIter::new(&buf);
        let mut count = 0u64;
        for rec in it.by_ref() {
            let (key, value) = rec.expect("intact frame");
            assert_eq!(key, count.to_be_bytes(), "keys are the record indices");
            assert_eq!(value.len(), 43, "fixed-width event encoding");
            count += 1;
        }
        assert!(it.clean_end() && !it.corrupt());
        assert_eq!(count as usize, ds.stats.records_emitted);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
