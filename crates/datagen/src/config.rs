/// Parameters of the synthetic transaction world.
///
/// Defaults are tuned so the constructed graphs land near the paper's
/// published statistics: sparsity of 1.5–3.4 links/node (Table 5), a
/// node-type mix dominated by transactions (Table 6) and a labelled fraud
/// rate around 4.3 % after benign down-sampling (Appendix B step 3).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of legitimate buyer accounts.
    pub n_buyers: usize,
    /// Mean number of benign transactions per buyer (Poisson-ish).
    pub txns_per_buyer: f64,
    /// Transaction feature dimension (114 for eBay-small, 480 for large;
    /// scaled down in the presets to keep training laptop-fast).
    pub feature_dim: usize,
    /// Number of stolen-card incidents (a fraudster bursts transactions on a
    /// victim's payment token).
    pub n_stolen_card_incidents: usize,
    /// Fraud transactions per stolen-card incident.
    pub stolen_burst: usize,
    /// Number of shared warehouse drop addresses used across frauds.
    pub n_warehouses: usize,
    /// Fraudulent transactions routed through each warehouse.
    pub warehouse_frauds: usize,
    /// Benign transactions also shipped to each warehouse (makes the pattern
    /// ambiguous, as in the paper's Fig. 11 case study).
    pub warehouse_benign: usize,
    /// Number of cultivated fraud rings.
    pub n_rings: usize,
    /// Accounts per ring.
    pub ring_size: usize,
    /// Legit "cultivation" transactions each ring account executes first.
    pub ring_cultivation: usize,
    /// Fraud burst per ring account after cultivation.
    pub ring_burst: usize,
    /// Number of anonymous guest-checkout fraud transactions.
    pub n_guest_frauds: usize,
    /// Fraction of benign transactions kept *labelled* (Appendix B samples
    /// 1 % of non-fraud; presets use a larger share because the absolute
    /// counts are smaller).
    pub benign_label_rate: f64,
    /// Probability that a supervision label is flipped — the paper's
    /// chargeback-lag effect ("we cannot fully trust the positive labels",
    /// §5.2: frauds reported late or never, benign flagged by mistake).
    pub label_noise: f64,
    /// Neighbourhoods with fewer than this many transactions are dropped
    /// (Appendix B: "filtered out ... less than five").
    pub min_neighborhood_txns: usize,
    /// RNG seed for full reproducibility.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_buyers: 800,
            txns_per_buyer: 4.5,
            feature_dim: 24,
            n_stolen_card_incidents: 8,
            stolen_burst: 5,
            n_warehouses: 3,
            warehouse_frauds: 10,
            warehouse_benign: 6,
            n_rings: 3,
            ring_size: 4,
            ring_cultivation: 2,
            ring_burst: 3,
            n_guest_frauds: 12,
            benign_label_rate: 0.8,
            label_noise: 0.04,
            min_neighborhood_txns: 5,
            seed: 7,
        }
    }
}

/// The three dataset scales of Table 2, shrunk to run on one machine while
/// preserving the published *shape*: node-type mix, sparsity, fraud rate,
/// and the small/large feature-dimension split (114 vs 480 → 24 vs 48).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetPreset {
    /// ≈5–6 k nodes — analogue of eBay-small (289 k nodes, 114 features).
    EbaySmallSim,
    /// ≈40 k nodes — analogue of eBay-large (8.9 M nodes, 480 features).
    EbayLargeSim,
    /// ≈150 k nodes — analogue of eBay-xlarge (1.1 B nodes); used by the
    /// distributed experiments.
    EbayXlargeSim,
}

impl DatasetPreset {
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::EbaySmallSim => "ebay-small-sim",
            DatasetPreset::EbayLargeSim => "ebay-large-sim",
            DatasetPreset::EbayXlargeSim => "ebay-xlarge-sim",
        }
    }

    /// The world configuration behind the preset, with a caller seed.
    pub fn config(self, seed: u64) -> WorldConfig {
        match self {
            DatasetPreset::EbaySmallSim => WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            DatasetPreset::EbayLargeSim => WorldConfig {
                n_buyers: 5_000,
                feature_dim: 48,
                n_stolen_card_incidents: 50,
                n_warehouses: 15,
                n_rings: 18,
                n_guest_frauds: 75,
                benign_label_rate: 0.7,
                seed,
                ..WorldConfig::default()
            },
            DatasetPreset::EbayXlargeSim => WorldConfig {
                n_buyers: 18_000,
                feature_dim: 48,
                n_stolen_card_incidents: 180,
                n_warehouses: 55,
                n_rings: 65,
                n_guest_frauds: 270,
                benign_label_rate: 0.7,
                seed,
                ..WorldConfig::default()
            },
        }
    }
}
