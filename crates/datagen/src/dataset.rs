use xfraud_hetgraph::{GraphStats, HetGraph, NodeId};

use crate::config::DatasetPreset;
use crate::construct::build_dataset;
use crate::generator::generate_log;
use crate::records::FraudMechanism;

/// A constructed dataset: the heterogeneous graph plus generator-side ground
/// truth that the explainer experiments use to simulate annotators.
#[derive(Debug)]
pub struct Dataset {
    pub name: String,
    pub graph: HetGraph,
    /// Per-node ground-truth risk involvement in `[0,1]`:
    /// transactions carry their latent risk; entities aggregate the risk of
    /// the fraudulent transactions incident to them.
    pub node_risk: Vec<f32>,
    /// Per-node event time in `[0,1)` (transactions only; entities carry
    /// the time of their first transaction). Enables the Appendix-H.5
    /// incremental-training experiments.
    pub node_time: Vec<f32>,
    /// Generator-side ground truth: which fraud mechanism produced each
    /// transaction node (`None` for entity nodes). Never shown to models;
    /// used by the per-mechanism analyses (e.g. the Appendix-G.3
    /// guest-checkout study).
    pub node_mechanism: Vec<Option<FraudMechanism>>,
}

impl Dataset {
    /// Generates a preset dataset with the given seed.
    pub fn generate(preset: DatasetPreset, seed: u64) -> Dataset {
        let cfg = preset.config(seed);
        let world = generate_log(&cfg);
        let mut ds = build_dataset(&world, &cfg);
        ds.name = preset.name().to_string();
        ds
    }

    pub fn stats(&self) -> GraphStats {
        GraphStats::of(&self.graph)
    }

    /// Ground-truth risk of one node.
    pub fn risk(&self, v: NodeId) -> f32 {
        self.node_risk[v]
    }
}
