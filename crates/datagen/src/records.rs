/// How a fraudulent transaction was planted (or `Benign`).
///
/// The mechanism is *generator-side ground truth*: it never reaches the
/// detector, but the explainer experiments use it to simulate expert
/// annotators (Appendix E) — an annotator "knows" which entities carried the
/// risk because the business unit investigates chargebacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FraudMechanism {
    Benign,
    /// A fraudster bursts purchases on a stolen payment token.
    StolenCard,
    /// Goods funnelled to a shared warehouse drop address.
    Warehouse,
    /// A cultivated ring account turning bad after a trust-building phase.
    Ring,
    /// An anonymous guest checkout on a risky token/email.
    GuestCheckout,
}

impl FraudMechanism {
    pub fn is_fraud(self) -> bool {
        self != FraudMechanism::Benign
    }
}

/// One line of the synthetic transaction log.
///
/// Entity ids index the world's global pools; `buyer` is `None` for guest
/// checkouts (§3.2.1 discusses why xFraud must handle buyer-less
/// transactions, unlike HGT's buyer-centric encoding).
#[derive(Debug, Clone)]
pub struct TxnRecord {
    pub buyer: Option<usize>,
    pub pmt: usize,
    pub email: usize,
    pub addr: usize,
    pub mechanism: FraudMechanism,
    /// Latent risk in `[0,1]` that drives the feature synthesis.
    pub latent_risk: f32,
    /// Event time as a fraction of the observation window `[0,1)` — the
    /// paper's eBay-xlarge spans seven months; fraud mechanisms cluster in
    /// time (bursts, cultivate-then-attack), benign traffic is uniform.
    pub time: f32,
    pub features: Vec<f32>,
}

impl TxnRecord {
    pub fn is_fraud(&self) -> bool {
        self.mechanism.is_fraud()
    }
}
