//! The lock-acquisition-order graph: nodes are canonical lock
//! identities (see [`crate::parser::LockSite`]), and an edge `A → B`
//! means some execution path acquires `B` while holding `A`. A cycle in
//! this graph is a potential deadlock: two threads entering the cycle at
//! different points can each hold the lock the other wants.
//!
//! Edges come from two places:
//!
//! * **direct** — one function acquires `B` while its own guard on `A`
//!   is still live;
//! * **interprocedural** — a function calls `g(…)` while holding `A`,
//!   and `g` (transitively, through any number of calls) acquires `B`.
//!   The transitive lock set of every function is a fixpoint over the
//!   call graph, so the edge exists even when the two acquisitions are
//!   crates apart — exactly the case token-level rule L1 cannot see.
//!
//! Cycle reporting is SCC-based: every strongly connected component
//! with at least one internal edge yields one witness cycle (smallest
//! lock id first, shortest rotation), so a tangle of N overlapping
//! cycles reports once per knot rather than N! times.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::callgraph::CallGraph;

/// One lock-order edge with its witness.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// Function whose body creates the edge.
    pub fn_idx: usize,
    pub file: String,
    pub line: u32,
    /// For interprocedural edges: the callee whose transitive lock set
    /// contributed `to`.
    pub via: Option<usize>,
}

#[derive(Debug, Default)]
pub struct LockGraph {
    /// Sorted, deduplicated lock identities.
    pub nodes: Vec<String>,
    /// Deduplicated edges, deterministic order; at most one edge per
    /// `(from, to)` pair (first witness in fn-index order wins).
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Builds the lock graph over a call graph.
    pub fn build(cg: &CallGraph) -> LockGraph {
        // Transitive lock sets: LA(f) = direct(f) ∪ ⋃ LA(callees).
        // Fixpoint by repeated passes (the workspace graph is small and
        // shallow; passes are capped defensively).
        let n = cg.fns.len();
        let mut acquired: Vec<Vec<String>> = (0..n)
            .map(|i| {
                let mut v: Vec<String> = cg.fns[i].locks.iter().map(|l| l.id.clone()).collect();
                v.sort();
                v.dedup();
                v
            })
            .collect();
        for _pass in 0..64 {
            let mut changed = false;
            for i in 0..n {
                for e in &cg.edges[i] {
                    if e.callee == i {
                        continue;
                    }
                    // Merge callee's set into caller's.
                    let callee_set = acquired[e.callee].clone();
                    let mine = &mut acquired[i];
                    for id in callee_set {
                        if let Err(at) = mine.binary_search(&id) {
                            mine.insert(at, id);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Edges.
        let mut seen: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut edges: Vec<LockEdge> = Vec::new();
        let push = |edges: &mut Vec<LockEdge>,
                    seen: &mut BTreeMap<(String, String), usize>,
                    e: LockEdge| {
            if e.from == e.to {
                return; // re-acquisition of the same lock is L1's business
            }
            let key = (e.from.clone(), e.to.clone());
            if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(key) {
                slot.insert(edges.len());
                edges.push(e);
            }
        };
        for (i, f) in cg.fns.iter().enumerate() {
            // Direct nesting inside one body.
            for l in &f.locks {
                for &held in &l.under_locks {
                    push(
                        &mut edges,
                        &mut seen,
                        LockEdge {
                            from: f.locks[held].id.clone(),
                            to: l.id.clone(),
                            fn_idx: i,
                            file: f.file.clone(),
                            line: l.line,
                            via: None,
                        },
                    );
                }
            }
            // Calls under a guard: every lock the callee transitively
            // acquires is ordered after every lock held here.
            for e in &cg.edges[i] {
                let call = &f.calls[e.site];
                if call.under_locks.is_empty() {
                    continue;
                }
                for to_id in &acquired[e.callee] {
                    for &held in &call.under_locks {
                        push(
                            &mut edges,
                            &mut seen,
                            LockEdge {
                                from: f.locks[held].id.clone(),
                                to: to_id.clone(),
                                fn_idx: i,
                                file: f.file.clone(),
                                line: call.line,
                                via: Some(e.callee),
                            },
                        );
                    }
                }
            }
        }

        let mut nodes: Vec<String> = edges
            .iter()
            .flat_map(|e| [e.from.clone(), e.to.clone()])
            .collect();
        // Locks that never nest still appear as isolated nodes so the
        // DOT rendering shows the full lock inventory.
        for f in &cg.fns {
            nodes.extend(f.locks.iter().map(|l| l.id.clone()));
        }
        nodes.sort();
        nodes.dedup();
        LockGraph { nodes, edges }
    }

    /// One witness cycle per strongly connected component that contains
    /// an edge. Each cycle is a closed edge sequence
    /// `A → B → … → A`, starting from the smallest lock id in the SCC.
    pub fn cycles(&self) -> Vec<Vec<&LockEdge>> {
        let index: BTreeMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let n = self.nodes.len();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (to, edge idx)
        for (ei, e) in self.edges.iter().enumerate() {
            adj[index[e.from.as_str()]].push((index[e.to.as_str()], ei));
        }

        let scc = tarjan_scc(n, &adj);
        // Group nodes by component.
        let mut comps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (node, c) in scc.iter().enumerate() {
            comps.entry(*c).or_default().push(node);
        }
        let mut out = Vec::new();
        for nodes in comps.values() {
            if nodes.len() < 2 {
                continue; // self-loops were dropped at build time
            }
            // Witness: BFS from the smallest node back to itself, using
            // only intra-component edges.
            let start = *nodes
                .iter()
                .min_by_key(|&&i| &self.nodes[i])
                .expect("non-empty");
            if let Some(cycle) = self.cycle_from(start, &adj, &scc) {
                out.push(cycle);
            }
        }
        out
    }

    /// Shortest closed walk from `start` back to itself inside its SCC.
    fn cycle_from(
        &self,
        start: usize,
        adj: &[Vec<(usize, usize)>],
        scc: &[usize],
    ) -> Option<Vec<&LockEdge>> {
        let comp = scc[start];
        let mut prev: Vec<Option<usize>> = vec![None; adj.len()]; // edge idx into node
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut visited = vec![false; adj.len()];
        visited[start] = true;
        while let Some(u) = queue.pop_front() {
            for &(v, ei) in &adj[u] {
                if scc[v] != comp {
                    continue;
                }
                if v == start {
                    // Close the walk: reconstruct edges back to start.
                    let mut rev = vec![ei];
                    let mut cur = u;
                    while cur != start {
                        let pe = prev[cur].expect("BFS predecessor exists");
                        rev.push(pe);
                        let pnode = &self.edges[pe].from;
                        cur = self
                            .nodes
                            .iter()
                            .position(|n| n == pnode)
                            .expect("edge endpoints are nodes");
                    }
                    rev.reverse();
                    return Some(rev.into_iter().map(|ei| &self.edges[ei]).collect());
                }
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = Some(ei);
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Graphviz DOT rendering; cycle edges are highlighted. Deterministic.
    pub fn to_dot(&self) -> String {
        let cycle_edges: Vec<*const LockEdge> = self
            .cycles()
            .into_iter()
            .flatten()
            .map(|e| e as *const LockEdge)
            .collect();
        let mut out = String::new();
        out.push_str("digraph lockgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        let index: BTreeMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(out, "  l{i} [label=\"{n}\"];");
        }
        for e in &self.edges {
            let label = format!("{}:{}", e.file, e.line);
            let hot = cycle_edges.contains(&(e as *const LockEdge));
            let style = if hot { ", color=red, penwidth=2" } else { "" };
            let _ = writeln!(
                out,
                "  l{} -> l{} [label=\"{label}\", fontsize=8{style}];",
                index[e.from.as_str()],
                index[e.to.as_str()]
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Iterative Tarjan SCC; returns the component id per node (ids are
/// arbitrary but deterministic).
fn tarjan_scc(n: usize, adj: &[Vec<(usize, usize)>]) -> Vec<usize> {
    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        edge: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame {
            node: root,
            edge: 0,
        }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(f) = frames.last_mut() {
            let u = f.node;
            if f.edge < adj[u].len() {
                let (v, _) = adj[u][f.edge];
                f.edge += 1;
                if index[v] == usize::MAX {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame { node: v, edge: 0 });
                } else if on_stack[v] {
                    low[u] = low[u].min(index[v]);
                }
            } else {
                if low[u] == index[u] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == u {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.node;
                    low[p] = low[p].min(low[u]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parser::{parse_file, ParsedFile};
    use crate::source::SourceFile;
    use std::path::Path;

    fn lockgraph(files: &[(&str, &str, &str)]) -> LockGraph {
        let parsed: Vec<(String, String, ParsedFile)> = files
            .iter()
            .map(|(path, krate, src)| {
                let sf = SourceFile::from_source(Path::new(path), src);
                (path.to_string(), krate.to_string(), parse_file(&sf, krate))
            })
            .collect();
        LockGraph::build(&CallGraph::build(&parsed))
    }

    #[test]
    fn direct_nesting_creates_an_edge() {
        let g = lockgraph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "impl E {\n  fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    use_both(a, b);\n  }\n}",
        )]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].from, "xfraud_a::self.alpha");
        assert_eq!(g.edges[0].to, "xfraud_a::self.beta");
        assert!(g.cycles().is_empty(), "one edge is acyclic");
    }

    #[test]
    fn interprocedural_edges_cross_functions_and_crates() {
        let g = lockgraph(&[
            (
                "crates/a/src/lib.rs",
                "xfraud_a",
                "impl E {\n  fn f(&self) {\n    let a = self.alpha.lock();\n    xfraud_b::helper();\n    drop(a);\n  }\n}",
            ),
            (
                "crates/b/src/lib.rs",
                "xfraud_b",
                "pub fn helper() { inner(); }\nfn inner() { GLOBAL.lock().bump(); }",
            ),
        ]);
        assert!(
            g.edges.iter().any(|e| e.from == "xfraud_a::self.alpha"
                && e.to.contains("GLOBAL")
                && e.via.is_some()),
            "{:#?}",
            g.edges
        );
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let g = lockgraph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "impl E {\n  fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    go(a, b);\n  }\n  fn ba(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n    go(a, b);\n  }\n}",
        )]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{:#?}", g.edges);
        let ids: Vec<&str> = cycles[0].iter().map(|e| e.from.as_str()).collect();
        assert!(ids.contains(&"xfraud_a::self.alpha"));
        assert!(ids.contains(&"xfraud_a::self.beta"));
    }

    #[test]
    fn consistent_order_is_acyclic() {
        let g = lockgraph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "impl E {\n  fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    go(a, b);\n  }\n  fn g(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    go(a, b);\n  }\n}",
        )]);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn dropped_guard_creates_no_edge() {
        let g = lockgraph(&[(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "impl E {\n  fn f(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n    go(b);\n  }\n}",
        )]);
        assert!(g.edges.is_empty(), "{:#?}", g.edges);
    }

    #[test]
    fn dot_is_deterministic() {
        let files = [(
            "crates/a/src/lib.rs",
            "xfraud_a",
            "impl E { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); go(a, b); } }",
        )];
        assert_eq!(lockgraph(&files).to_dot(), lockgraph(&files).to_dot());
    }
}
