//! Workspace `unsafe` inventory: every `unsafe` block / fn / impl site,
//! with the adjacent `// SAFETY:` justification (when present) and the
//! enclosing function, shared by rule U1 (per-site SAFETY discipline),
//! rule U2 (the audit-doc ratchet) and the `--graph unsafe` markdown
//! renderer.
//!
//! A site's justification is the comment run *directly adjacent* to the
//! `unsafe` keyword: a trailing comment on the same line, or a run of
//! line comments ending on the line immediately above (walked upwards
//! across consecutive comment lines, so multi-line SAFETY paragraphs
//! count as one justification). The run must contain `SAFETY:` followed
//! by non-empty text. Doc comments (`/// # Safety`) on an `unsafe fn`
//! count too — they are the std convention for caller-facing contracts.

use std::path::Path;

use crate::lexer::{Comment, TokenKind};
use crate::parser::{parse_file, ParsedFile};
use crate::source::SourceFile;

/// What kind of `unsafe` occurrence a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

impl UnsafeKind {
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
        }
    }
}

/// One `unsafe` site in library code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    pub kind: UnsafeKind,
    /// `Type::name` / `name` of the innermost enclosing fn, or
    /// `<module scope>` for item-level sites (`unsafe impl Send …`).
    pub fn_label: String,
    /// The adjacent SAFETY justification, single-line-normalised, or
    /// `None` when absent or empty.
    pub safety: Option<String>,
}

impl UnsafeSite {
    /// Line-independent identity used by the U2 audit ratchet: stable
    /// across pure line shifts, changes when a site moves between
    /// functions or changes kind.
    pub fn key(&self) -> String {
        format!("{} · {} · {}", self.file, self.kind.label(), self.fn_label)
    }
}

/// Collects every non-test `unsafe` site in `sf`. `parsed` supplies the
/// fn spans for enclosing-fn labels (pass the same file's parse).
pub fn collect_unsafe(sf: &SourceFile, parsed: &ParsedFile) -> Vec<UnsafeSite> {
    let toks = &sf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if sf.test_mask[i] || toks[i].kind != TokenKind::Ident || toks[i].text != "unsafe" {
            continue;
        }
        let Some(kind) = classify(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        out.push(UnsafeSite {
            file: sf.rel_path.display().to_string(),
            line,
            kind,
            fn_label: enclosing_fn_label(parsed, &sf.rel_path.display().to_string(), line),
            safety: safety_justification(&sf.comments, line),
        });
    }
    out
}

/// Classifies the `unsafe` keyword at token `i`; `None` for occurrences
/// that are types, not sites (`unsafe fn(…)` fn-pointer types, `unsafe`
/// inside a trait-bound position).
fn classify(toks: &[crate::lexer::Token], i: usize) -> Option<UnsafeKind> {
    // Walk forward over the qualifier run (`unsafe extern "C" fn …`).
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "{" => return Some(UnsafeKind::Block),
            "impl" => return Some(UnsafeKind::Impl),
            "trait" => return Some(UnsafeKind::Trait),
            "fn" => {
                // `unsafe fn name(…)` is a declaration site; a bare
                // `unsafe fn(…)`/`unsafe fn(…) -> T` is a pointer type.
                return if toks.get(j + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
                    Some(UnsafeKind::Fn)
                } else {
                    None
                };
            }
            "extern" | "async" | "const" => j += 1,
            _ if t.kind == TokenKind::Literal => j += 1, // extern "C"
            _ => return None,
        }
    }
    None
}

/// Innermost fn (by span) containing `line`, labelled `Type::name`.
fn enclosing_fn_label(parsed: &ParsedFile, file: &str, line: u32) -> String {
    parsed
        .fns
        .iter()
        .filter(|f| f.file == file && f.line <= line && line <= f.end_line)
        .max_by_key(|f| f.line)
        .map(|f| match &f.impl_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        })
        .unwrap_or_else(|| "<module scope>".into())
}

/// The SAFETY justification adjacent to an `unsafe` keyword on `line`:
/// the trailing comment on the same line, or the contiguous comment run
/// ending on `line - 1`. Returns the normalised justification text, or
/// `None` when the run has no `SAFETY:` (or `# Safety` doc heading) with
/// non-empty text after it.
pub fn safety_justification(comments: &[Comment], line: u32) -> Option<String> {
    let mut run: Vec<&Comment> = Vec::new();
    if let Some(c) = comments.iter().find(|c| c.line == line) {
        run.push(c);
    } else {
        let mut l = line.checked_sub(1)?;
        while let Some(c) = comments.iter().find(|c| c.end_line == l) {
            run.push(c);
            if c.line == 0 {
                break;
            }
            l = c.line - 1;
            if l == 0 {
                break;
            }
        }
        run.reverse(); // top-to-bottom reading order
    }
    let joined = run
        .iter()
        .map(|c| strip_comment_markers(&c.text))
        .collect::<Vec<_>>()
        .join(" ");
    let at = joined
        .find("SAFETY:")
        .map(|p| p + "SAFETY:".len())
        .or_else(|| joined.find("# Safety").map(|p| p + "# Safety".len()))?;
    let text = joined[at..]
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");
    if text.is_empty() {
        None
    } else {
        Some(text)
    }
}

fn strip_comment_markers(text: &str) -> String {
    text.lines()
        .map(|l| {
            l.trim()
                .trim_start_matches("//!")
                .trim_start_matches("///")
                .trim_start_matches("//")
                .trim_start_matches("/*")
                .trim_end_matches("*/")
                .trim()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Collects every `unsafe` site across the workspace at `root`,
/// deterministically ordered (file, line).
pub fn workspace_sites(root: &Path) -> std::io::Result<Vec<UnsafeSite>> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.join("src").is_dir() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                dirs.push(name.to_string());
            }
        }
    }
    dirs.sort();
    let mut out = Vec::new();
    for dir in &dirs {
        let krate = crate::lib_name(dir);
        for rel in crate::rust_files(root, &crates_dir.join(dir).join("src"))? {
            let sf = SourceFile::parse(root, &rel)?;
            let parsed = parse_file(&sf, &krate);
            out.extend(collect_unsafe(&sf, &parsed));
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// Renders the audit markdown committed as `docs/unsafe_audit.md`.
/// Deterministic: regeneration over an unchanged tree is byte-identical,
/// so the nightly drift check can `diff` it.
pub fn render_markdown(sites: &[UnsafeSite]) -> String {
    let mut out = String::from(
        "# Unsafe audit\n\n\
         Every `unsafe` site in workspace library code, with the adjacent\n\
         `// SAFETY:` justification. Generated by\n\
         `cargo run -p xlint -- --graph unsafe > docs/unsafe_audit.md`;\n\
         rule U2 fails `--check` when a site exists that this file does not\n\
         record (key: `file · kind · enclosing fn`), and the nightly deep job\n\
         diffs the regenerated inventory against this committed copy.\n",
    );
    let mut current_file = "";
    for s in sites {
        if s.file != current_file {
            current_file = &s.file;
            out.push_str(&format!("\n## {}\n\n", s.file));
        }
        let safety = s.safety.as_deref().unwrap_or("(MISSING SAFETY COMMENT)");
        out.push_str(&format!(
            "- `{}` in `{}` (line {}) — {}\n",
            s.kind.label(),
            s.fn_label,
            s.line,
            safety
        ));
    }
    if sites.is_empty() {
        out.push_str("\nNo unsafe sites.\n");
    }
    out
}

/// Parses the committed audit markdown back into site keys
/// (`file · kind · enclosing fn`), one entry per bullet. Tolerant of
/// hand-edits to justification text — only the key part is read.
pub fn keys_in_markdown(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut file = String::new();
    for line in text.lines() {
        if let Some(f) = line.strip_prefix("## ") {
            file = f.trim().to_string();
            continue;
        }
        let Some(rest) = line.strip_prefix("- `") else {
            continue;
        };
        // `- `<kind>` in `<fn>` (line N) — …`
        let Some((kind, rest)) = rest.split_once('`') else {
            continue;
        };
        let Some(rest) = rest.strip_prefix(" in `") else {
            continue;
        };
        let Some((fn_label, _)) = rest.split_once('`') else {
            continue;
        };
        out.push(format!("{file} · {kind} · {fn_label}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn sites(src: &str) -> Vec<UnsafeSite> {
        let sf = SourceFile::from_source(Path::new("crates/demo/src/lib.rs"), src);
        let parsed = parse_file(&sf, "xfraud_demo");
        collect_unsafe(&sf, &parsed)
    }

    #[test]
    fn blocks_fns_and_impls_are_classified() {
        let s = sites(
            "pub unsafe fn raw(p: *const u8) {}\n\
             unsafe impl Send for T {}\n\
             fn f() {\n    // SAFETY: bounds checked above\n    unsafe { go() };\n}\n",
        );
        let kinds: Vec<_> = s.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [UnsafeKind::Fn, UnsafeKind::Impl, UnsafeKind::Block]);
        assert_eq!(s[2].fn_label, "f");
        assert_eq!(s[2].safety.as_deref(), Some("bounds checked above"));
        assert!(s[0].safety.is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_sites() {
        assert!(sites("type Raw = unsafe fn(*const u8) -> u8;").is_empty());
    }

    #[test]
    fn multiline_safety_runs_join() {
        let s = sites(
            "fn f() {\n\
             // SAFETY: the region is mapped for the life of self\n\
             // and never written after seal().\n\
             unsafe { read(p) };\n}\n",
        );
        assert_eq!(s.len(), 1);
        let just = s[0].safety.as_deref().unwrap();
        assert!(just.contains("never written after seal()"), "{just}");
    }

    #[test]
    fn empty_safety_text_counts_as_missing() {
        let s = sites("fn f() {\n    // SAFETY:\n    unsafe { go() };\n}\n");
        assert!(s[0].safety.is_none());
    }

    #[test]
    fn test_gated_unsafe_is_invisible() {
        let s = sites("#[cfg(test)]\nmod t {\n    fn f() { unsafe { go() } }\n}\n");
        assert!(s.is_empty());
    }

    #[test]
    fn markdown_roundtrips_keys() {
        let s = sites(
            "fn f() {\n    // SAFETY: justified\n    unsafe { go() };\n}\n\
             unsafe impl Send for T {}\n",
        );
        let md = render_markdown(&s);
        let keys = keys_in_markdown(&md);
        let expect: Vec<String> = s.iter().map(|s| s.key()).collect();
        assert_eq!(keys, expect);
    }
}
