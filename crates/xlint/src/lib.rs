//! `xlint` — the workspace's own static-analysis pass.
//!
//! Clippy knows Rust; it does not know *this repo's* contracts: bit-identical
//! scores for any worker count, serving equivalence under any
//! concurrency/batching, WAL-replay bit-identity. Those invariants are
//! enforced by tests, which only catch regressions the generators happen to
//! hit. `xlint` makes the underlying coding rules mechanical:
//!
//! * **D1** — no hash-collection iteration in determinism-critical crates;
//! * **D2** — no ambient nondeterminism (entropy RNGs, clocks, env);
//! * **P1** — no panicking escape hatches in library code;
//! * **L1** — lock discipline (no poison unwraps, no guard held across a
//!   workspace-crate call).
//!
//! Each finding is either fixed, suppressed inline with
//! `// xlint: allow(<rule>, reason = "…")` (collected into an audit table),
//! or grandfathered in the `[[baseline]]` section of `xlint.toml` — `--check`
//! fails only on *new* violations, so the baseline can be burned down
//! without blocking CI.
//!
//! There is no `syn` in the offline build image, so the tool lexes Rust
//! itself ([`lexer`]) — string/comment-accurate tokens with line numbers and
//! brace depths, which is exactly enough structure for these rules.

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod lockgraph;
pub mod parser;
pub mod rules;
pub mod source;
pub mod unsafe_scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use config::{BaselineEntry, Config, RuleScope};
use lockgraph::LockGraph;
use parser::parse_file;
use rules::{
    check_a1, check_a2, check_d1, check_d2, check_d3, check_e1, check_f1, check_l1, check_l2,
    check_p1, check_p2, check_u1, check_u2, BurndownEntry, InterprocScope, P1Options, Violation,
};
use source::SourceFile;

/// A violation that an inline allow directive suppressed — kept for the
/// audit table.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub violation: Violation,
    pub reason: Option<String>,
}

/// `(rule, file)` pairs whose violation count moved against the baseline.
#[derive(Debug, Clone)]
pub struct BaselineDelta {
    pub rule: String,
    pub file: String,
    pub baseline: usize,
    pub actual: usize,
    /// The file's live violations for this rule (reported when new ones
    /// appeared).
    pub violations: Vec<Violation>,
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Live (un-suppressed) violations, every scoped file.
    pub violations: Vec<Violation>,
    /// Allow-suppressed findings, for the audit table.
    pub suppressed: Vec<Suppressed>,
    /// Pairs exceeding their baseline — a non-empty list fails `--check`.
    pub regressions: Vec<BaselineDelta>,
    /// Pairs now *below* their baseline — candidates for `--update-baseline`.
    pub improvements: Vec<BaselineDelta>,
    /// Files scanned.
    pub files_scanned: usize,
    /// P2 burn-down priorities (live P1 sites ranked by how many in-scope
    /// `pub` APIs can reach them). Populated when `[rules.p2]` is scoped.
    pub burndown: Vec<BurndownEntry>,
}

impl LintReport {
    /// The baseline that would make the current tree exactly clean,
    /// file-major sorted (matches [`BaselineEntry`]'s `Ord`) so repeated
    /// regeneration is byte-identical.
    pub fn fresh_baseline(&self) -> Vec<BaselineEntry> {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in &self.violations {
            *counts
                .entry((v.file.clone(), v.rule.to_string()))
                .or_default() += 1;
        }
        counts
            .into_iter()
            .map(|((file, rule), count)| BaselineEntry { rule, file, count })
            .collect()
    }
}

/// Runs every configured rule over the workspace at `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    // Parse each file once, share across rules.
    let mut cache: BTreeMap<PathBuf, SourceFile> = BTreeMap::new();

    for rule_id in cfg.rules.keys() {
        if !matches!(
            rule_id.as_str(),
            "d1" | "d2"
                | "p1"
                | "l1"
                | "l2"
                | "p2"
                | "d3"
                | "u1"
                | "u2"
                | "a1"
                | "a2"
                | "f1"
                | "e1"
        ) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown rule `[rules.{rule_id}]` in xlint.toml"),
            ));
        }
    }
    for (rule_id, scope) in &cfg.rules {
        if matches!(rule_id.as_str(), "l2" | "p2" | "d3" | "f1" | "u2") {
            continue; // interprocedural — dispatched over the workspace model below
        }
        for krate in &scope.crates {
            let src_dir = root.join("crates").join(krate).join("src");
            if !src_dir.is_dir() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("xlint.toml scopes rule {rule_id} to missing crate `{krate}`"),
                ));
            }
            for rel in rust_files(root, &src_dir)? {
                if scope.skip_bins && rel.components().any(|c| c.as_os_str() == "bin") {
                    continue;
                }
                if !cache.contains_key(&rel) {
                    cache.insert(rel.clone(), SourceFile::parse(root, &rel)?);
                }
                let sf = &cache[&rel];
                let raw = run_rule(rule_id, scope, krate, sf);
                for v in raw {
                    match sf.allowed(v.rule, v.line) {
                        Some(allow) => report.suppressed.push(Suppressed {
                            violation: v,
                            reason: allow.reason.clone(),
                        }),
                        None => report.violations.push(v),
                    }
                }
            }
        }
    }
    // Interprocedural phase: build the workspace model once (every crate,
    // including out-of-scope ones — taint sources and panic sites in
    // `metrics`/`bench` still matter to callers in scoped crates), then
    // dispatch L2/P2/D3 over it.
    let interproc: Vec<&String> = cfg
        .rules
        .keys()
        .filter(|r| matches!(r.as_str(), "l2" | "p2" | "d3" | "f1" | "u2"))
        .collect();
    if !interproc.is_empty() {
        let model = build_model(root, &mut cache)?;
        let p1_live: Vec<Violation> = report
            .violations
            .iter()
            .filter(|v| v.rule == "P1")
            .cloned()
            .collect();
        for rule_id in interproc {
            let scope = &cfg.rules[rule_id];
            let iscope = InterprocScope {
                crates: scope.crates.iter().map(|c| lib_name(c)).collect(),
                skip_bins: scope.skip_bins,
            };
            let raw = match rule_id.as_str() {
                "l2" => check_l2(&model.graph, &model.locks, &iscope),
                "p2" => {
                    report.burndown = rules::burndown(&model.graph, &p1_live, &iscope);
                    check_p2(&model.graph, &p1_live, &iscope)
                }
                "d3" => check_d3(&model.graph, &model.sources, &iscope),
                "f1" => check_f1(&model.graph, &iscope),
                "u2" => check_u2(root, &iscope)?,
                _ => Vec::new(),
            };
            for v in raw {
                let allow = model
                    .sources
                    .get(&v.file)
                    .and_then(|sf| sf.allowed(v.rule, v.line));
                match allow {
                    Some(a) => report.suppressed.push(Suppressed {
                        violation: v,
                        reason: a.reason.clone(),
                    }),
                    None => report.violations.push(v),
                }
            }
        }
    }
    report.files_scanned = cache.len();

    // Ratchet against the baseline.
    let actual = report.fresh_baseline();
    let mut seen: Vec<(String, String)> = Vec::new();
    for entry in &actual {
        seen.push((entry.rule.clone(), entry.file.clone()));
        let base = cfg.baseline_count(&entry.rule, &entry.file);
        if entry.count == base {
            continue;
        }
        let delta = BaselineDelta {
            rule: entry.rule.clone(),
            file: entry.file.clone(),
            baseline: base,
            actual: entry.count,
            violations: report
                .violations
                .iter()
                .filter(|v| v.rule == entry.rule && v.file == entry.file)
                .cloned()
                .collect(),
        };
        if entry.count > base {
            report.regressions.push(delta);
        } else {
            report.improvements.push(delta);
        }
    }
    // Baseline entries whose violations vanished entirely.
    for e in &cfg.baseline {
        if e.count > 0 && !seen.contains(&(e.rule.clone(), e.file.clone())) {
            report.improvements.push(BaselineDelta {
                rule: e.rule.clone(),
                file: e.file.clone(),
                baseline: e.count,
                actual: 0,
                violations: Vec::new(),
            });
        }
    }
    Ok(report)
}

/// The workspace-level model the interprocedural rules consume. Sources
/// are borrowed from the driver's parse cache — one parse per file feeds
/// both the per-file and the interprocedural phases.
struct Model<'a> {
    graph: CallGraph,
    locks: LockGraph,
    /// Workspace-relative path string → parsed source, for allow-directive
    /// lookups and D3 taint-root scanning.
    sources: BTreeMap<String, &'a SourceFile>,
}

/// Maps a crate *directory* name (as used in `xlint.toml` scopes) to the
/// lib name that appears in `use` paths: `core` → `xfraud`, `xlint` →
/// `xlint`, everything else `xfraud_<dir>`.
pub fn lib_name(dir: &str) -> String {
    match dir {
        "core" => "xfraud".to_string(),
        "xlint" => "xlint".to_string(),
        _ => format!("xfraud_{dir}"),
    }
}

fn build_model<'a>(
    root: &Path,
    cache: &'a mut BTreeMap<PathBuf, SourceFile>,
) -> std::io::Result<Model<'a>> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.join("src").is_dir() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                dirs.push(name.to_string());
            }
        }
    }
    dirs.sort();
    let mut rels: Vec<(PathBuf, String)> = Vec::new();
    for dir in &dirs {
        let krate = lib_name(dir);
        for rel in rust_files(root, &crates_dir.join(dir).join("src"))? {
            rels.push((rel, krate.clone()));
        }
    }
    for (rel, _) in &rels {
        if !cache.contains_key(rel) {
            let sf = SourceFile::parse(root, rel)?;
            cache.insert(rel.clone(), sf);
        }
    }
    let cache: &'a BTreeMap<PathBuf, SourceFile> = cache;
    let parsed: Vec<(String, String, parser::ParsedFile)> = rels
        .iter()
        .map(|(rel, krate)| {
            (
                rel.display().to_string(),
                krate.clone(),
                parse_file(&cache[rel], krate),
            )
        })
        .collect();
    let graph = CallGraph::build(&parsed);
    let locks = LockGraph::build(&graph);
    let sources = rels
        .iter()
        .map(|(rel, _)| (rel.display().to_string(), &cache[rel]))
        .collect();
    Ok(Model {
        graph,
        locks,
        sources,
    })
}

/// Builds the whole-workspace call and lock graphs (for `--graph` DOT
/// output and the slow graph-shape tests).
pub fn build_graphs(root: &Path) -> std::io::Result<(CallGraph, LockGraph)> {
    let mut cache = BTreeMap::new();
    let model = build_model(root, &mut cache)?;
    Ok((model.graph, model.locks))
}

fn run_rule(rule_id: &str, scope: &RuleScope, krate: &str, sf: &SourceFile) -> Vec<Violation> {
    match rule_id {
        "d1" => check_d1(sf),
        "d2" => check_d2(sf),
        "p1" => check_p1(
            sf,
            P1Options {
                indexing: scope.indexing_crates.iter().any(|c| c == krate),
            },
        ),
        "l1" => check_l1(sf),
        "u1" => check_u1(sf),
        "a1" => check_a1(sf),
        "a2" => check_a2(sf),
        "e1" => check_e1(sf),
        // lint_workspace validated rule ids before dispatching.
        _ => Vec::new(),
    }
}

/// All `.rs` files under `dir`, workspace-relative, sorted for stable
/// output.
pub(crate) fn rust_files(root: &Path, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Locates the workspace root: the nearest ancestor of `start` holding an
/// `xlint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("xlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
