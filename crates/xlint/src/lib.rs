//! `xlint` — the workspace's own static-analysis pass.
//!
//! Clippy knows Rust; it does not know *this repo's* contracts: bit-identical
//! scores for any worker count, serving equivalence under any
//! concurrency/batching, WAL-replay bit-identity. Those invariants are
//! enforced by tests, which only catch regressions the generators happen to
//! hit. `xlint` makes the underlying coding rules mechanical:
//!
//! * **D1** — no hash-collection iteration in determinism-critical crates;
//! * **D2** — no ambient nondeterminism (entropy RNGs, clocks, env);
//! * **P1** — no panicking escape hatches in library code;
//! * **L1** — lock discipline (no poison unwraps, no guard held across a
//!   workspace-crate call).
//!
//! Each finding is either fixed, suppressed inline with
//! `// xlint: allow(<rule>, reason = "…")` (collected into an audit table),
//! or grandfathered in the `[[baseline]]` section of `xlint.toml` — `--check`
//! fails only on *new* violations, so the baseline can be burned down
//! without blocking CI.
//!
//! There is no `syn` in the offline build image, so the tool lexes Rust
//! itself ([`lexer`]) — string/comment-accurate tokens with line numbers and
//! brace depths, which is exactly enough structure for these rules.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use config::{BaselineEntry, Config, RuleScope};
use rules::{check_d1, check_d2, check_l1, check_p1, P1Options, Violation};
use source::SourceFile;

/// A violation that an inline allow directive suppressed — kept for the
/// audit table.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub violation: Violation,
    pub reason: Option<String>,
}

/// `(rule, file)` pairs whose violation count moved against the baseline.
#[derive(Debug, Clone)]
pub struct BaselineDelta {
    pub rule: String,
    pub file: String,
    pub baseline: usize,
    pub actual: usize,
    /// The file's live violations for this rule (reported when new ones
    /// appeared).
    pub violations: Vec<Violation>,
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Live (un-suppressed) violations, every scoped file.
    pub violations: Vec<Violation>,
    /// Allow-suppressed findings, for the audit table.
    pub suppressed: Vec<Suppressed>,
    /// Pairs exceeding their baseline — a non-empty list fails `--check`.
    pub regressions: Vec<BaselineDelta>,
    /// Pairs now *below* their baseline — candidates for `--update-baseline`.
    pub improvements: Vec<BaselineDelta>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// The baseline that would make the current tree exactly clean.
    pub fn fresh_baseline(&self) -> Vec<BaselineEntry> {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in &self.violations {
            *counts
                .entry((v.rule.to_string(), v.file.clone()))
                .or_default() += 1;
        }
        counts
            .into_iter()
            .map(|((rule, file), count)| BaselineEntry { rule, file, count })
            .collect()
    }
}

/// Runs every configured rule over the workspace at `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    // Parse each file once, share across rules.
    let mut cache: BTreeMap<PathBuf, SourceFile> = BTreeMap::new();

    for rule_id in cfg.rules.keys() {
        if !matches!(rule_id.as_str(), "d1" | "d2" | "p1" | "l1") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown rule `[rules.{rule_id}]` in xlint.toml"),
            ));
        }
    }
    for (rule_id, scope) in &cfg.rules {
        for krate in &scope.crates {
            let src_dir = root.join("crates").join(krate).join("src");
            if !src_dir.is_dir() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("xlint.toml scopes rule {rule_id} to missing crate `{krate}`"),
                ));
            }
            for rel in rust_files(root, &src_dir)? {
                if scope.skip_bins && rel.components().any(|c| c.as_os_str() == "bin") {
                    continue;
                }
                if !cache.contains_key(&rel) {
                    cache.insert(rel.clone(), SourceFile::parse(root, &rel)?);
                }
                let sf = &cache[&rel];
                let raw = run_rule(rule_id, scope, krate, sf);
                for v in raw {
                    match sf.allowed(v.rule, v.line) {
                        Some(allow) => report.suppressed.push(Suppressed {
                            violation: v,
                            reason: allow.reason.clone(),
                        }),
                        None => report.violations.push(v),
                    }
                }
            }
        }
    }
    report.files_scanned = cache.len();

    // Ratchet against the baseline.
    let actual = report.fresh_baseline();
    let mut seen: Vec<(String, String)> = Vec::new();
    for entry in &actual {
        seen.push((entry.rule.clone(), entry.file.clone()));
        let base = cfg.baseline_count(&entry.rule, &entry.file);
        if entry.count == base {
            continue;
        }
        let delta = BaselineDelta {
            rule: entry.rule.clone(),
            file: entry.file.clone(),
            baseline: base,
            actual: entry.count,
            violations: report
                .violations
                .iter()
                .filter(|v| v.rule == entry.rule && v.file == entry.file)
                .cloned()
                .collect(),
        };
        if entry.count > base {
            report.regressions.push(delta);
        } else {
            report.improvements.push(delta);
        }
    }
    // Baseline entries whose violations vanished entirely.
    for e in &cfg.baseline {
        if e.count > 0 && !seen.contains(&(e.rule.clone(), e.file.clone())) {
            report.improvements.push(BaselineDelta {
                rule: e.rule.clone(),
                file: e.file.clone(),
                baseline: e.count,
                actual: 0,
                violations: Vec::new(),
            });
        }
    }
    Ok(report)
}

fn run_rule(rule_id: &str, scope: &RuleScope, krate: &str, sf: &SourceFile) -> Vec<Violation> {
    match rule_id {
        "d1" => check_d1(sf),
        "d2" => check_d2(sf),
        "p1" => check_p1(
            sf,
            P1Options {
                indexing: scope.indexing_crates.iter().any(|c| c == krate),
            },
        ),
        "l1" => check_l1(sf),
        // lint_workspace validated rule ids before dispatching.
        _ => Vec::new(),
    }
}

/// All `.rs` files under `dir`, workspace-relative, sorted for stable
/// output.
fn rust_files(root: &Path, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Locates the workspace root: the nearest ancestor of `start` holding an
/// `xlint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("xlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
