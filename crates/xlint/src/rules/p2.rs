//! P2 — panic reachability.
//!
//! P1 flags each `unwrap`/`expect`/`panic!` site locally; the baseline
//! grandfathers the pre-existing ones. P2 answers the question the
//! baseline list cannot: *which of those sites does a caller actually
//! risk hitting through the public API?* Every `pub` function of a
//! scoped library crate that can transitively reach a live P1 site —
//! across any number of crate boundaries — is flagged, with the shortest
//! witness call path. Sites reachable from many entry points float to
//! the top of the burn-down list ([`burndown`]); sites reachable from
//! none are cold code whose fix can wait.
//!
//! Over-approximation direction: same as the call graph's — a path may
//! not be realisable at runtime, but an unreported reachable panic would
//! be worse.

use crate::callgraph::CallGraph;
use crate::rules::{InterprocScope, Violation};

/// Maps each live P1 violation to its innermost enclosing fn; returns
/// `(fn index, site line)` pairs, deduplicated per fn keeping the
/// smallest line.
fn panic_roots(cg: &CallGraph, p1_live: &[Violation]) -> Vec<(usize, u32)> {
    let mut roots: Vec<(usize, u32)> = Vec::new();
    for v in p1_live {
        let mut best: Option<usize> = None;
        for (i, f) in cg.fns.iter().enumerate() {
            if f.file == v.file && f.line <= v.line && v.line <= f.end_line {
                // Innermost: the candidate starting latest.
                if best.is_none_or(|b| cg.fns[b].line < f.line) {
                    best = Some(i);
                }
            }
        }
        if let Some(i) = best {
            match roots.iter_mut().find(|(r, _)| *r == i) {
                Some((_, l)) => *l = (*l).min(v.line),
                None => roots.push((i, v.line)),
            }
        }
    }
    roots.sort();
    roots
}

pub fn check_p2(cg: &CallGraph, p1_live: &[Violation], scope: &InterprocScope) -> Vec<Violation> {
    let roots = panic_roots(cg, p1_live);
    if roots.is_empty() {
        return Vec::new();
    }
    let root_idx: Vec<usize> = roots.iter().map(|(i, _)| *i).collect();
    let reached = cg.reaches(&root_idx);
    let mut target = vec![false; cg.fns.len()];
    for &i in &root_idx {
        target[i] = true;
    }

    let mut out = Vec::new();
    for (i, f) in cg.fns.iter().enumerate() {
        if !reached[i] || !f.is_pub || !scope.in_scope(&f.crate_name, &f.file) {
            continue;
        }
        let path = cg.path_to(i, &target);
        let Some(&site_fn) = path.last() else {
            continue;
        };
        let site_line = roots
            .iter()
            .find(|(r, _)| *r == site_fn)
            .map(|(_, l)| *l)
            .unwrap_or(cg.fns[site_fn].line);
        let msg = if path.len() == 1 {
            format!(
                "pub fn `{}` is itself a panic site (P1 at {}:{}) — callers inherit the panic",
                cg.label(i),
                f.file,
                site_line
            )
        } else {
            let chain: Vec<String> = path.iter().map(|&n| cg.label(n)).collect();
            format!(
                "pub fn `{}` can reach panic site {}:{} — call path: {}",
                cg.label(i),
                cg.fns[site_fn].file,
                site_line,
                chain.join(" -> ")
            )
        };
        out.push(Violation {
            rule: "P2",
            file: f.file.clone(),
            line: f.line,
            message: msg,
        });
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// One panic site with the number of in-scope `pub` entry points that can
/// reach it — the burn-down priority.
#[derive(Debug, Clone)]
pub struct BurndownEntry {
    pub file: String,
    pub line: u32,
    pub fn_label: String,
    pub pub_apis: usize,
}

/// Ranks live P1 sites by public exposure: how many in-scope `pub`
/// functions can transitively reach each. Sorted most-exposed first,
/// ties by (file, line).
pub fn burndown(
    cg: &CallGraph,
    p1_live: &[Violation],
    scope: &InterprocScope,
) -> Vec<BurndownEntry> {
    let roots = panic_roots(cg, p1_live);
    let mut fanin: Vec<(usize, usize)> = Vec::new(); // (root fn, pub api count)
    for &(r, _) in &roots {
        let reached = cg.reaches(&[r]);
        let n = cg
            .fns
            .iter()
            .enumerate()
            .filter(|(i, f)| reached[*i] && f.is_pub && scope.in_scope(&f.crate_name, &f.file))
            .count();
        fanin.push((r, n));
    }
    let mut out: Vec<BurndownEntry> = p1_live
        .iter()
        .map(|v| {
            let n = roots
                .iter()
                .zip(&fanin)
                .find(|((ri, _), _)| {
                    let f = &cg.fns[*ri];
                    f.file == v.file && f.line <= v.line && v.line <= f.end_line
                })
                .map(|(_, (_, n))| *n)
                .unwrap_or(0);
            let label = cg
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.file == v.file && f.line <= v.line && v.line <= f.end_line)
                .max_by_key(|(_, f)| f.line)
                .map(|(i, _)| cg.label(i))
                .unwrap_or_else(|| "<module scope>".into());
            BurndownEntry {
                file: v.file.clone(),
                line: v.line,
                fn_label: label,
                pub_apis: n,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        (std::cmp::Reverse(a.pub_apis), &a.file, a.line).cmp(&(
            std::cmp::Reverse(b.pub_apis),
            &b.file,
            b.line,
        ))
    });
    out
}
