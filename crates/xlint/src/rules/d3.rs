//! D3 — determinism taint.
//!
//! D2 bans *direct* ambient nondeterminism (entropy RNGs, clocks, env)
//! in determinism-critical crates, but the scoping has a blind spot: a
//! scoped crate can launder entropy through a call into an unscoped one
//! (`metrics`, `bench`, a CLI helper) or through a function whose own D2
//! hit was inline-allowed for a documented local reason. D3 closes it:
//! every function that transitively calls a D2 nondeterminism source —
//! in *any* crate, allowed or not — is tainted, and a call from an
//! in-scope function to a tainted out-of-scope callee is a violation at
//! the call site.
//!
//! Violations fire only on that **frontier edge** (in-scope caller →
//! tainted out-of-scope callee). Calls to in-scope tainted functions are
//! deliberately not flagged: the taint entered scope somewhere, and that
//! entry point is either a D2 finding or another frontier edge — flagging
//! every transitive caller would duplicate one root cause across dozens
//! of lines and bury the signal.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::rules::{check_d2, InterprocScope, Violation};
use crate::source::SourceFile;

pub fn check_d3(
    cg: &CallGraph,
    sources: &BTreeMap<String, &SourceFile>,
    scope: &InterprocScope,
) -> Vec<Violation> {
    // Taint roots: every D2 pattern site in the workspace, including
    // allow-suppressed sites and crates outside d2's scope.
    let mut root_site: BTreeMap<usize, (String, u32)> = BTreeMap::new(); // fn -> earliest site
    for sf in sources.values() {
        for v in check_d2(sf) {
            let enclosing = cg
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.file == v.file && f.line <= v.line && v.line <= f.end_line)
                .max_by_key(|(_, f)| f.line)
                .map(|(i, _)| i);
            if let Some(i) = enclosing {
                let entry = root_site.entry(i).or_insert((v.file.clone(), v.line));
                if v.line < entry.1 {
                    *entry = (v.file.clone(), v.line);
                }
            }
        }
    }
    if root_site.is_empty() {
        return Vec::new();
    }
    let roots: Vec<usize> = root_site.keys().copied().collect();
    let tainted = cg.reaches(&roots);
    let mut target = vec![false; cg.fns.len()];
    for &r in &roots {
        target[r] = true;
    }

    let mut out: Vec<Violation> = Vec::new();
    let mut seen: Vec<(String, u32)> = Vec::new();
    for (i, f) in cg.fns.iter().enumerate() {
        if !scope.in_scope(&f.crate_name, &f.file) {
            continue;
        }
        for e in &cg.edges[i] {
            let callee = &cg.fns[e.callee];
            if !tainted[e.callee] || scope.crates.iter().any(|c| c == &callee.crate_name) {
                continue;
            }
            let key = (f.file.clone(), e.line);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let path = cg.path_to(e.callee, &target);
            let site = path
                .last()
                .and_then(|r| root_site.get(r))
                .cloned()
                .unwrap_or_else(|| (callee.file.clone(), callee.line));
            let chain: Vec<String> = path.iter().map(|&n| cg.label(n)).collect();
            out.push(Violation {
                rule: "D3",
                file: f.file.clone(),
                line: e.line,
                message: format!(
                    "`{}` calls `{}`, which transitively reaches ambient nondeterminism \
                     at {}:{} (taint path: {}) — thread the value in as a parameter or \
                     move the call behind the bench/metrics boundary",
                    cg.label(i),
                    cg.label(e.callee),
                    site.0,
                    site.1,
                    chain.join(" -> ")
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}
