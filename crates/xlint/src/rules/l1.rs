//! L1 — lock discipline.
//!
//! Two hazards, both live ones in this workspace's serving path:
//!
//! 1. **Poison propagation** — `.lock().unwrap()` / `.read().expect(…)` on
//!    a `std::sync` primitive re-raises a panic from whichever thread
//!    poisoned the lock, tearing down the batcher (and with it the engine)
//!    for a failure that already happened elsewhere. Recover the guard
//!    (`unwrap_or_else(PoisonError::into_inner)`) when the protected state
//!    tolerates it, or surface a typed error.
//! 2. **Guard held across a workspace-crate call** — `let g = x.lock();`
//!    followed by a call into another `xfraud_*` crate before `g` dies
//!    stretches the critical section over code with unknown latency and
//!    locking behaviour (the deadlock/latency hazard in the batcher). Drop
//!    the guard first, or justify with `// xlint: allow(l1, reason = "…")`.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{is_path_sep, is_punct, Violation};

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

pub fn check_l1(sf: &SourceFile) -> Vec<Violation> {
    let toks = &sf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        if !is_lock_call(sf, i) {
            continue;
        }
        // (1) `.lock().unwrap()` / `.expect(` directly chained.
        let after = i + 3; // past `name ( )`
        if is_punct(toks, after, ".")
            && toks.get(after + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && (t.text == "unwrap" || t.text == "expect")
            })
        {
            out.push(Violation::new(
                "L1",
                sf,
                toks[i].line,
                format!(
                    "`.{}().{}()` propagates lock poison as a panic — recover the guard \
                     (`unwrap_or_else(PoisonError::into_inner)`) or surface a typed error",
                    toks[i].text,
                    toks[after + 1].text
                ),
            ));
        }
        // (2) `let g = ….lock()…;` — scan the guard's scope for calls into
        // other workspace crates.
        if let Some((guard_idx, stmt_end)) = enclosing_let(toks, i) {
            let guard = toks[guard_idx].text.clone();
            if let Some(v) = scan_guard_scope(sf, &guard, stmt_end) {
                out.push(v);
            }
        }
    }
    out
}

/// Is `tokens[i]` the method name of a `. lock ( )` / `. read ( )` /
/// `. write ( )` call with an empty argument list?
fn is_lock_call(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    toks[i].kind == TokenKind::Ident
        && LOCK_METHODS.contains(&toks[i].text.as_str())
        && i >= 1
        && is_punct(toks, i - 1, ".")
        && is_punct(toks, i + 1, "(")
        && is_punct(toks, i + 2, ")")
}

/// If the lock call at `i` sits in a `let name = …;` statement, returns
/// `(index of name, index of the terminating ';')`.
fn enclosing_let(toks: &[crate::lexer::Token], i: usize) -> Option<(usize, usize)> {
    // Walk back to the statement head on this brace depth.
    let depth = toks[i].brace_depth;
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        let t = &toks[j];
        if t.brace_depth < depth || t.text == ";" || t.text == "{" {
            return None; // crossed a statement/block boundary without a let
        }
        if t.kind == TokenKind::Ident && t.text == "let" {
            break;
        }
    }
    // `let [mut] name = …`
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.text == "mut") {
        k += 1;
    }
    let name_idx = k;
    if toks.get(name_idx).map(|t| t.kind) != Some(TokenKind::Ident) {
        return None;
    }
    if toks.get(name_idx + 1).is_none_or(|t| t.text != "=") {
        return None; // destructuring or typed pattern — keep the rule simple
    }
    // Find the `;` ending the statement at this depth.
    let mut e = i;
    while e < toks.len() {
        if toks[e].brace_depth < depth {
            return None;
        }
        if toks[e].text == ";" && toks[e].brace_depth == depth {
            return Some((name_idx, e));
        }
        e += 1;
    }
    None
}

/// Scans from the end of the guard's `let` statement to the end of its
/// scope (enclosing `}` or `drop(guard)`), flagging the first call into a
/// workspace crate made while the guard is live.
fn scan_guard_scope(sf: &SourceFile, guard: &str, stmt_end: usize) -> Option<Violation> {
    let toks = &sf.tokens;
    let depth = toks[stmt_end].brace_depth;
    let mut i = stmt_end + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.brace_depth < depth {
            return None; // guard scope ended
        }
        // `drop ( guard )` releases early.
        if t.text == "drop"
            && is_punct(toks, i + 1, "(")
            && toks.get(i + 2).is_some_and(|g| g.text == guard)
            && is_punct(toks, i + 3, ")")
        {
            return None;
        }
        // A call into a workspace crate: `name(…)` or `name::…::seg(…)`
        // where `name` was imported from an `xfraud*` crate (or is one).
        // A bare path expression (`NodeType::Txn`, a match pattern, a
        // struct literal) is a constant, not a critical-section extension.
        if t.kind == TokenKind::Ident
            && sf.workspace_imports.iter().any(|n| n == &t.text)
            && !is_punct(toks, i.wrapping_sub(1), ".") // method names shadowing imports
            && is_call_site(toks, i)
        {
            return Some(Violation::new(
                "L1",
                sf,
                t.line,
                format!(
                    "guard `{guard}` is still live across a call into `{}` — a cross-crate \
                     call under a lock is a deadlock/latency hazard; drop the guard first \
                     or justify with `// xlint: allow(l1, reason = \"…\")`",
                    t.text
                ),
            ));
        }
        i += 1;
    }
    None
}

/// Does the ident at `i` head a *call*? Either `name(` directly, or a path
/// `name::seg::…::last(` whose final segment opens an argument list.
fn is_call_site(toks: &[crate::lexer::Token], i: usize) -> bool {
    let mut j = i;
    while is_path_sep(toks, j + 1) && toks.get(j + 3).map(|t| t.kind) == Some(TokenKind::Ident) {
        j += 3;
    }
    is_punct(toks, j + 1, "(")
}
