//! Rule F1 — durability protocol: every `rename` that publishes a file
//! must be dominated by an `fsync` on the same path.
//!
//! DESIGN §4.2 states the invariant (write temp → `sync_all` → `rename`
//! → sync dir) but nothing enforced it: a rename whose bytes were never
//! synced publishes a name that can point at a torn file after power
//! loss — exactly the corruption the WAL-replay bit-identity tests
//! cannot catch, because the test filesystem never loses power.
//!
//! The check is interprocedural over the call graph's fs-event streams
//! (see [`crate::parser::FsEvent`] — syncs and renames share one
//! token-sequence timeline with call sites):
//!
//! * a rename is **locally dominated** when the same body has a
//!   `sync_all`/`sync_data` earlier in the timeline, or an earlier call
//!   whose callee *may* transitively sync;
//! * otherwise the obligation escalates to the callers: every call path
//!   from an entry point (a fn with no workspace callers, or any `pub`
//!   fn — external callers are invisible and cannot be assumed to have
//!   synced) must sync before the call that leads to the rename.
//!
//! Approximation directions: "callee may sync" treats a fn that syncs on
//! *any* path as syncing (optimistic — misses renames whose sync is
//! conditional), while `pub` fns counting as entries is pessimistic (a
//! pub helper documented as "caller must fsync first" needs an audited
//! allow — which is exactly the review point the rule wants). Cycles in
//! the caller walk resolve optimistically.

use super::{InterprocScope, Violation};
use crate::callgraph::CallGraph;
use crate::parser::FsEventKind;

pub fn check_f1(g: &CallGraph, scope: &InterprocScope) -> Vec<Violation> {
    // Fns that may force bytes to stable storage, directly or through a
    // callee.
    let sync_roots: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.fs_events.iter().any(|e| e.kind == FsEventKind::Sync))
        .map(|(i, _)| i)
        .collect();
    let may_sync = g.reaches(&sync_roots);

    let mut out = Vec::new();
    for (fi, f) in g.fns.iter().enumerate() {
        if !scope.in_scope(&f.crate_name, &f.file) {
            continue;
        }
        for ev in f.fs_events.iter().filter(|e| e.kind == FsEventKind::Rename) {
            if synced_before(g, &may_sync, fi, ev.seq) {
                continue;
            }
            let mut visited = vec![false; g.fns.len()];
            if let Some(entry) = unsynced_entry(g, &may_sync, fi, &mut visited) {
                let via = if entry == fi {
                    String::new()
                } else {
                    format!(" (unsynced entry: `{}`)", g.label(entry))
                };
                out.push(Violation {
                    rule: "F1",
                    file: f.file.clone(),
                    line: ev.line,
                    message: format!(
                        "`rename` publishes a file with no dominating `sync_all`/`sync_data` \
                         on this path{via} — write-temp→fsync→rename (DESIGN §4.2)"
                    ),
                });
            }
        }
    }
    out
}

/// Does `fi`'s body sync before timeline position `seq` — an own
/// `sync_all`/`sync_data` event, or a call into a fn that may sync?
fn synced_before(g: &CallGraph, may_sync: &[bool], fi: usize, seq: u32) -> bool {
    let f = &g.fns[fi];
    if f.fs_events
        .iter()
        .any(|e| e.kind == FsEventKind::Sync && e.seq < seq)
    {
        return true;
    }
    g.edges[fi]
        .iter()
        .any(|e| may_sync[e.callee] && f.calls[e.site].seq < seq)
}

/// Walks callers of `target` looking for a path from an entry point with
/// no sync before the call chain. Returns the entry node of a witness
/// path, or `None` when every path is dominated. `visited` cuts cycles
/// (optimistically — a recursive path is assumed dominated).
fn unsynced_entry(
    g: &CallGraph,
    may_sync: &[bool],
    target: usize,
    visited: &mut [bool],
) -> Option<usize> {
    if g.reverse[target].is_empty() || g.fns[target].is_pub {
        return Some(target);
    }
    if visited[target] {
        return None;
    }
    visited[target] = true;
    for &c in &g.reverse[target] {
        for e in g.edges[c].iter().filter(|e| e.callee == target) {
            let call_seq = g.fns[c].calls[e.site].seq;
            if synced_before(g, may_sync, c, call_seq) {
                continue;
            }
            if let Some(entry) = unsynced_entry(g, may_sync, c, visited) {
                return Some(entry);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_file, ParsedFile};
    use crate::source::SourceFile;
    use std::path::Path;

    fn graph(src: &str) -> CallGraph {
        let path = "crates/d/src/lib.rs";
        let sf = SourceFile::from_source(Path::new(path), src);
        let parsed: Vec<(String, String, ParsedFile)> = vec![(
            path.to_string(),
            "xfraud_d".to_string(),
            parse_file(&sf, "xfraud_d"),
        )];
        CallGraph::build(&parsed)
    }

    fn scope() -> InterprocScope {
        InterprocScope {
            crates: vec!["xfraud_d".to_string()],
            skip_bins: false,
        }
    }

    #[test]
    fn local_fsync_before_rename_passes() {
        let g = graph(
            "pub fn persist(f: &File) {\n\
             f.sync_all().ok();\n\
             fs::rename(&tmp, &dst).ok();\n\
             }\n",
        );
        assert!(check_f1(&g, &scope()).is_empty());
    }

    #[test]
    fn bare_rename_in_pub_fn_is_flagged() {
        let g = graph("pub fn publish() { fs::rename(&tmp, &dst).ok(); }");
        let v = check_f1(&g, &scope());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "F1");
    }

    #[test]
    fn sync_in_helper_called_earlier_dominates() {
        let g = graph(
            "fn flush_bytes(f: &File) { f.sync_all().ok(); }\n\
             pub fn persist(f: &File) {\n\
             flush_bytes(f);\n\
             fs::rename(&tmp, &dst).ok();\n\
             }\n",
        );
        assert!(check_f1(&g, &scope()).is_empty());
    }

    #[test]
    fn caller_sync_dominates_a_rename_in_a_private_helper() {
        let g = graph(
            "fn publish(p: &Path) { fs::rename(p, &dst).ok(); }\n\
             pub fn persist(f: &File, p: &Path) {\n\
             f.sync_all().ok();\n\
             publish(p);\n\
             }\n",
        );
        assert!(check_f1(&g, &scope()).is_empty(), "caller synced first");
    }

    #[test]
    fn unsynced_caller_path_is_flagged_with_witness() {
        let g = graph(
            "fn publish(p: &Path) { fs::rename(p, &dst).ok(); }\n\
             fn persist(f: &File, p: &Path) { f.sync_all().ok(); publish(p); }\n\
             pub fn hasty(p: &Path) { publish(p); }\n",
        );
        let v = check_f1(&g, &scope());
        assert_eq!(v.len(), 1, "one dominated path, one unsynced: {v:?}");
        assert!(
            v[0].message.contains("unsynced entry: `xfraud_d::hasty`"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn out_of_scope_renames_are_not_attributed() {
        let g = graph("pub fn publish() { fs::rename(&tmp, &dst).ok(); }");
        let other = InterprocScope {
            crates: vec!["xfraud_other".to_string()],
            skip_bins: false,
        };
        assert!(check_f1(&g, &other).is_empty());
    }
}
