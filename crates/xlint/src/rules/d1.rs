//! D1 — no `HashMap`/`HashSet` iteration in determinism-critical crates.
//!
//! Hash iteration order varies per process (std's `RandomState`), so any
//! `for`-loop, `iter()`, `keys()`, `values()`, `drain()` or `into_iter()`
//! over a hash collection inside a crate that feeds scores, samples or
//! serialized artefacts is a determinism hazard — even when today's
//! consumer happens to be order-insensitive, the next refactor may not be.
//! Keyed *lookup* (`get`, `entry`, `contains_key`) is fine and not flagged.
//!
//! Detection is name-based: the visitor first collects every identifier the
//! file binds to a `HashMap`/`HashSet` (let bindings, fn params, struct
//! fields — anything of the shape `name: HashMap<…>` or
//! `name = HashMap::new()`), then flags iteration-shaped uses of those
//! names. A `BTreeMap`/`BTreeSet` or sorted-`Vec` rewrite, or an explicit
//! `// xlint: allow(d1, reason = "…")`, clears the finding.

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{is_ident, is_path_sep, is_punct, Violation};

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

pub fn check_d1(sf: &SourceFile) -> Vec<Violation> {
    let toks = &sf.tokens;
    let hash_names = collect_hash_names(sf);
    let mut out = Vec::new();

    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        // `name . method (` where `name` is hash-bound and `method` iterates.
        if toks[i].kind == TokenKind::Ident
            && hash_names.contains(toks[i].text.as_str())
            && is_punct(toks, i + 1, ".")
            && is_punct(toks, i + 3, "(")
        {
            if let Some(m) = toks.get(i + 2) {
                if ITER_METHODS.contains(&m.text.as_str()) {
                    out.push(Violation::new(
                        "D1",
                        sf,
                        m.line,
                        format!(
                            "`{}.{}()` iterates a hash collection — iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet, a sorted Vec, or justify \
                             with `// xlint: allow(d1, reason = \"…\")`",
                            toks[i].text, m.text
                        ),
                    ));
                }
            }
        }
        // `for pat in [&[mut]] name {` over a hash-bound name.
        if is_ident(toks, i, "for") {
            if let Some(v) = check_for_loop(sf, &hash_names, i) {
                out.push(v);
            }
        }
    }
    out
}

/// Names bound to a hash collection anywhere in the file.
fn collect_hash_names(sf: &SourceFile) -> BTreeSet<&str> {
    let toks = &sf.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokenKind::Ident && HASH_TYPES.contains(&toks[i].text.as_str())) {
            continue;
        }
        // Walk left over a path prefix (`std :: collections ::`), then over
        // `&`, `&mut` and `<`-nesting noise, to the binder.
        let mut j = i;
        while j >= 3 && is_path_sep(toks, j - 2) && toks[j - 3].kind == TokenKind::Ident {
            j -= 3;
        }
        let mut k = j.wrapping_sub(1);
        while k < toks.len() && (is_punct(toks, k, "&") || is_ident(toks, k, "mut")) {
            k = k.wrapping_sub(1);
        }
        if k >= toks.len() {
            continue;
        }
        // `name : HashMap` (let/param/field type ascription, not a path) or
        // `name = HashMap::new()`.
        let ascription = is_punct(toks, k, ":") && !is_punct(toks, k.wrapping_sub(1), ":");
        let binder = if ascription || is_punct(toks, k, "=") {
            k.checked_sub(1)
        } else {
            None
        };
        if let Some(bi) = binder {
            if toks[bi].kind == TokenKind::Ident {
                names.insert(toks[bi].text.as_str());
            }
        }
    }
    names
}

/// `for pat in expr {` — flags when `expr` is exactly a (borrowed)
/// hash-bound name or `self.name` field access.
fn check_for_loop(
    sf: &SourceFile,
    hash_names: &BTreeSet<&str>,
    for_idx: usize,
) -> Option<Violation> {
    let toks = &sf.tokens;
    // Find `in` before the loop body `{` (patterns contain no `in`).
    let mut j = for_idx + 1;
    let mut in_idx = None;
    while j < toks.len() && !is_punct(toks, j, "{") {
        if is_ident(toks, j, "in") {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let in_idx = in_idx?;
    // Expression tokens between `in` and the body `{`.
    let mut expr: Vec<usize> = Vec::new();
    let mut k = in_idx + 1;
    while k < toks.len() && !is_punct(toks, k, "{") {
        expr.push(k);
        k += 1;
    }
    // Strip leading borrows.
    let mut e = &expr[..];
    while let Some((&first, rest)) = e.split_first() {
        if is_punct(toks, first, "&") || is_ident(toks, first, "mut") {
            e = rest;
        } else {
            break;
        }
    }
    let name_idx = match e {
        // `for x in map` / `for x in &map`
        [only] => Some(*only),
        // `for x in self.map` / `for x in &self.map`
        [a, dot, b] if is_ident(toks, *a, "self") && is_punct(toks, *dot, ".") => Some(*b),
        _ => None,
    }?;
    let name = &toks[name_idx];
    if name.kind == TokenKind::Ident && hash_names.contains(name.text.as_str()) {
        return Some(Violation::new(
            "D1",
            sf,
            name.line,
            format!(
                "`for … in {}` iterates a hash collection — iteration order is \
                 nondeterministic; use BTreeMap/BTreeSet, a sorted Vec, or justify with \
                 `// xlint: allow(d1, reason = \"…\")`",
                name.text
            ),
        ));
    }
    None
}
