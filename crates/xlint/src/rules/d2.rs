//! D2 — no ambient nondeterminism in determinism-critical crates.
//!
//! Every RNG in this workspace is derived from explicit `(seed, stream,
//! coordinates)` tuples (`batch_rng`), and every clock read that feeds an
//! artefact would break the bit-identity contracts (worker-count
//! determinism, serving equivalence, WAL replay). `thread_rng()`,
//! `rand::random()`, `StdRng::from_entropy()`, `SystemTime::now()`,
//! `Instant::now()` and `std::env` reads are therefore banned outside the
//! bench/metrics/CLI allowlist. Wall-clock *telemetry* that never feeds an
//! artefact is legitimate — justify it with
//! `// xlint: allow(d2, reason = "…")` so the audit table records why.

use crate::source::SourceFile;

use super::{is_assoc_call, is_ident, is_path_sep, Violation};

pub fn check_d2(sf: &SourceFile) -> Vec<Violation> {
    let toks = &sf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        let hit: Option<String> = if is_ident(toks, i, "thread_rng") {
            Some("thread_rng()".into())
        } else if is_ident(toks, i, "from_entropy") {
            Some("from_entropy()".into())
        } else if is_assoc_call(toks, i, "SystemTime", "now") {
            Some("SystemTime::now()".into())
        } else if is_assoc_call(toks, i, "Instant", "now") {
            Some("Instant::now()".into())
        } else if is_assoc_call(toks, i, "rand", "random") {
            Some("rand::random()".into())
        } else if is_ident(toks, i, "env")
            && i >= 3
            && is_path_sep(toks, i - 2)
            && is_ident(toks, i - 3, "std")
        {
            Some("std::env".into())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(Violation::new(
                "D2",
                sf,
                toks[i].line,
                format!(
                    "`{what}` is ambient nondeterminism — derive RNGs from explicit seeds \
                     (`batch_rng`) and keep clock reads out of determinism-critical crates, \
                     or justify with `// xlint: allow(d2, reason = \"…\")`"
                ),
            ));
        }
    }
    out
}
