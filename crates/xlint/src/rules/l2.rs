//! L2 — lock-order cycle detection.
//!
//! L1 sees one body at a time: it catches a guard held across a
//! workspace call, but not the *global* property that makes that
//! dangerous — two code paths acquiring the same pair of locks in
//! opposite order. L2 builds the workspace lock graph (direct nesting
//! plus interprocedural acquisition through the call graph) and flags
//! every strongly connected component as a potential deadlock, reporting
//! one witness cycle per knot: the exact `A held while acquiring B`
//! chain, with the file, line and function of each hop.
//!
//! Over-approximation direction: call resolution may connect more
//! callees than runtime dispatch would, so a reported cycle can be a
//! false positive (suppress with `// xlint: allow(l2, reason = "…")` on
//! the witness line); a *missing* cycle edge would be the dangerous
//! direction, and the resolver errs against it.

use crate::callgraph::CallGraph;
use crate::lockgraph::LockGraph;
use crate::rules::{InterprocScope, Violation};

pub fn check_l2(cg: &CallGraph, lg: &LockGraph, scope: &InterprocScope) -> Vec<Violation> {
    let mut out = Vec::new();
    for cycle in lg.cycles() {
        // Attribute the cycle to its first in-scope edge (smallest
        // file/line), so the finding lands where a fix or allow can go.
        let mut anchor: Option<&&crate::lockgraph::LockEdge> = None;
        for e in &cycle {
            let f = &cg.fns[e.fn_idx];
            if !scope.in_scope(&f.crate_name, &f.file) {
                continue;
            }
            if anchor.is_none_or(|a| (e.file.as_str(), e.line) < (a.file.as_str(), a.line)) {
                anchor = Some(e);
            }
        }
        let Some(anchor) = anchor else { continue };
        let hops: Vec<String> = cycle
            .iter()
            .map(|e| {
                let via = match e.via {
                    Some(callee) => format!(" via call to `{}`", cg.label(callee)),
                    None => String::new(),
                };
                format!(
                    "`{}` held while acquiring `{}` at {}:{} in `{}`{}",
                    e.from,
                    e.to,
                    e.file,
                    e.line,
                    cg.label(e.fn_idx),
                    via
                )
            })
            .collect();
        out.push(Violation {
            rule: "L2",
            file: anchor.file.clone(),
            line: anchor.line,
            message: format!(
                "lock-order cycle over {} lock(s) — potential deadlock: {}",
                cycle.len(),
                hops.join("; then ")
            ),
        });
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}
