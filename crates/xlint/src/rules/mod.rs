//! The rule set. Each rule is a pure function from a [`SourceFile`] to
//! violations; allow-directive filtering and baseline ratcheting happen in
//! the driver so rules stay trivially fixture-testable.
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | no `HashMap`/`HashSet` *iteration* in determinism-critical crates — iteration order is nondeterministic and must never reach scores, samples or serialized artefacts |
//! | D2 | no ambient nondeterminism (`thread_rng`, `rand::random`, `SystemTime::now`, `Instant::now`, `std::env`) outside the bench/metrics/CLI timing allowlist |
//! | P1 | no `unwrap`/`expect`/`panic!`-family (and, opt-in per crate, slice indexing) in library code outside `#[cfg(test)]` |
//! | L1 | no lock acquisition whose poison is unwrapped without recovery, and no lock guard held across a call into another workspace crate |
//!
//! The interprocedural family (PR 6) consumes the workspace call and lock
//! graphs instead of a single file:
//!
//! | id | invariant |
//! |----|-----------|
//! | L2 | the workspace lock graph is acyclic — no two code paths acquire the same locks in opposite order, even across crates |
//! | P2 | `pub` APIs of scoped library crates do not transitively reach a live P1 panic site |
//! | D3 | in-scope functions do not call out-of-scope functions tainted by ambient nondeterminism |
//!
//! The soundness family (PR 10) covers memory safety, memory ordering
//! and durability — the static counterpart of the Miri/TSan CI matrix:
//!
//! | id | invariant |
//! |----|-----------|
//! | U1 | every `unsafe` block/fn/impl carries an adjacent `// SAFETY:` comment with a non-empty justification |
//! | U2 | every `unsafe` site is recorded in the committed `docs/unsafe_audit.md` (regenerate with `--graph unsafe`) |
//! | A1 | no `Relaxed` store-side atomic op on a field touched by more than one function — publishes need Release/AcqRel or an audited allow |
//! | A2 | no asymmetric store/load ordering pair on one atomic field (Release store + Relaxed load, or Relaxed store + Acquire load) |
//! | F1 | every `rename` reachable from library code is dominated by `sync_all`/`sync_data` on the same call path (write-temp→fsync→rename) |
//! | E1 | no `let _ =`-discarded call results in library code — handle, log, or propagate the error |

mod a1;
mod d1;
mod d2;
mod d3;
mod e1;
mod f1;
mod l1;
mod l2;
mod p1;
mod p2;
mod u1;

pub use a1::{check_a1, check_a2};
pub use d1::check_d1;
pub use d2::check_d2;
pub use d3::check_d3;
pub use e1::check_e1;
pub use f1::check_f1;
pub use l1::check_l1;
pub use l2::check_l2;
pub use p1::{check_p1, P1Options};
pub use p2::{burndown, check_p2, BurndownEntry};
pub use u1::{check_u1, check_u2};

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One rule hit, before allow/baseline filtering.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `"D1"`, `"D2"`, `"P1"` or `"L1"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Violation {
    pub fn new(rule: &'static str, sf: &SourceFile, line: u32, message: String) -> Violation {
        Violation {
            rule,
            file: sf.rel_path.display().to_string(),
            line,
            message,
        }
    }
}

/// Scope for the interprocedural rules: which *crate lib names* may carry
/// violations, and whether `src/bin/**` files are exempt. The call/lock
/// graphs themselves always span the whole workspace — scope restricts
/// where findings are attributed, not what the analysis sees.
#[derive(Debug, Clone, Default)]
pub struct InterprocScope {
    /// Crate lib names (`xfraud`, `xfraud_serve`, …) in scope.
    pub crates: Vec<String>,
    pub skip_bins: bool,
}

impl InterprocScope {
    /// May a violation be attributed to this (crate, file)?
    pub fn in_scope(&self, crate_name: &str, file: &str) -> bool {
        if !self.crates.iter().any(|c| c == crate_name) {
            return false;
        }
        !(self.skip_bins && file.split('/').any(|c| c == "bin"))
    }
}

/// Is token `i` an identifier with this exact text?
pub(crate) fn is_ident(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

pub(crate) fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Does `tokens[i..]` match a `::` path separator (two `:` puncts)?
pub(crate) fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    is_punct(tokens, i, ":") && is_punct(tokens, i + 1, ":")
}

/// Matches `recv :: name` ending at `i` (i.e. `tokens[i]` is `name` and it
/// is reached through a path from `recv`).
pub(crate) fn is_assoc_call(tokens: &[Token], i: usize, recv: &str, name: &str) -> bool {
    i >= 3
        && is_ident(tokens, i, name)
        && is_path_sep(tokens, i - 2)
        && is_ident(tokens, i - 3, recv)
}
