//! Rule E1 — discarded fallible results.
//!
//! `let _ = some_call(…);` throws away a value *and its error* without a
//! trace: a failed shutdown send, an unflushed metrics write, a WAL
//! truncation error all vanish. Library code must either handle the
//! error, log it, or propagate a typed error — if the discard really is
//! correct (e.g. "receiver gone means shutdown already happened"), say
//! so in an audited allow.
//!
//! Approximation direction: the scan has no type information, so it
//! flags any `let _ =` statement whose right-hand side *contains a
//! call* — over-approximate (a discarded non-`Result` call return is
//! flagged too, which is still a smell worth an allow). Macro
//! invocations are skipped wholesale (`let _ = write!(…)` is matched via
//! the macro name itself, not idents inside its arguments), and a plain
//! `let _ = value;` (no call — a deliberate drop of a binding) passes.

use super::Violation;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Keywords that precede `(` without being call heads.
const NON_CALL_HEADS: &[&str] = &["if", "match", "while", "for", "return", "move", "in", "as"];

pub fn check_e1(sf: &SourceFile) -> Vec<Violation> {
    let toks = &sf.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if sf.test_mask[i]
            || toks[i].text != "let"
            || toks[i].kind != TokenKind::Ident
            || toks[i + 1].text != "_"
            || toks[i + 2].text != "="
        {
            i += 1;
            continue;
        }
        let depth = toks[i].brace_depth;
        // Statement body: from `=` to the first `;` back at the let's own
        // depth (closure bodies inside sit deeper and are scanned too —
        // an error swallowed inside the discarded expression is still
        // swallowed).
        let mut end = i + 3;
        while end < toks.len() && !(toks[end].text == ";" && toks[end].brace_depth <= depth) {
            end += 1;
        }
        if let Some(call) = first_call_in(toks, i + 3, end) {
            out.push(Violation::new(
                "E1",
                sf,
                toks[i].line,
                format!(
                    "`let _ =` discards the result of `{call}(…)` along with its error — \
                     handle it, log it, or propagate a typed error"
                ),
            ));
        }
        i = end + 1;
    }
    out
}

/// First call head in `toks[from..to]`, skipping macro invocations (the
/// macro name *and* its delimiter group).
fn first_call_in(toks: &[crate::lexer::Token], from: usize, to: usize) -> Option<String> {
    let mut k = from;
    while k < to {
        let t = &toks[k];
        if t.kind == TokenKind::Ident && toks.get(k + 1).is_some_and(|n| n.text == "!") {
            // Macro: skip past its delimiter group.
            let open = toks.get(k + 2).map(|o| o.text.as_str());
            let close = match open {
                Some("(") => ")",
                Some("[") => "]",
                Some("{") => "}",
                _ => {
                    k += 2;
                    continue;
                }
            };
            let open = open.expect("matched above");
            let mut depth = 0i32;
            let mut m = k + 2;
            while m < to {
                if toks[m].text == open {
                    depth += 1;
                } else if toks[m].text == close {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        if t.kind == TokenKind::Ident
            && !NON_CALL_HEADS.contains(&t.text.as_str())
            && toks.get(k + 1).is_some_and(|n| n.text == "(")
        {
            return Some(t.text.clone());
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn check(src: &str) -> Vec<Violation> {
        check_e1(&SourceFile::from_source(
            Path::new("crates/d/src/lib.rs"),
            src,
        ))
    }

    #[test]
    fn discarded_call_results_are_flagged() {
        let v = check("fn f(&self) { let _ = self.tx.send(Shutdown); }");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`send(…)`"), "{}", v[0].message);
        let v = check("fn f() { let _ = fs::remove_file(&path); }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn plain_binding_drops_pass() {
        assert!(check("fn f(g: Guard) { let _ = g; }").is_empty());
        assert!(check("fn f() { let _ = self.field; }").is_empty());
    }

    #[test]
    fn macro_invocations_are_skipped() {
        assert!(check("fn f() { let _ = writeln!(out, \"{}\", x); }").is_empty());
        let v = check("fn f() { let _ = writeln!(out, \"{}\", x).and(flush(out)); }");
        assert_eq!(v.len(), 1, "call outside the macro group still flags");
        assert!(v[0].message.contains("`and(…)`"));
    }

    #[test]
    fn named_underscore_bindings_pass() {
        assert!(check("fn f() { let _guard = m.lock(); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(check("#[test]\nfn t() { let _ = fs::remove_dir_all(&d); }").is_empty());
    }
}
