//! P1 — no panicking escape hatches in library code.
//!
//! `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!` and
//! `unimplemented!` outside `#[cfg(test)]` turn recoverable failures into
//! process aborts — and in this workspace a panic on the batcher or a DDP
//! worker thread takes the whole serving/training process down. Library
//! crates carry typed error enums (`ServeError`, `IngestError`,
//! `GraphError`, `ConfigError`); new code must use them. Invariants that
//! genuinely cannot fail are documented in place with
//! `// xlint: allow(p1, reason = "…")`.
//!
//! Slice indexing (`xs[i]`) is the same hazard with worse ergonomics to
//! ban wholesale — tensor math indexes in every inner loop — so it is
//! opt-in per crate via `indexing_crates` in `xlint.toml`.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{is_punct, Violation};

/// Per-crate toggles for P1.
#[derive(Debug, Clone, Copy, Default)]
pub struct P1Options {
    /// Also flag slice-indexing expressions (`xs[i]`).
    pub indexing: bool,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn check_p1(sf: &SourceFile, opts: P1Options) -> Vec<Violation> {
    let toks = &sf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        // `. unwrap (` / `. expect (`
        if toks[i].kind == TokenKind::Ident
            && (toks[i].text == "unwrap" || toks[i].text == "expect")
            && i >= 1
            && is_punct(toks, i - 1, ".")
            && is_punct(toks, i + 1, "(")
        {
            out.push(Violation::new(
                "P1",
                sf,
                toks[i].line,
                format!(
                    "`.{}()` in library code panics on failure — return a typed error, or \
                     justify the invariant with `// xlint: allow(p1, reason = \"…\")`",
                    toks[i].text
                ),
            ));
        }
        // `panic ! (` and friends.
        if toks[i].kind == TokenKind::Ident
            && PANIC_MACROS.contains(&toks[i].text.as_str())
            && is_punct(toks, i + 1, "!")
        {
            out.push(Violation::new(
                "P1",
                sf,
                toks[i].line,
                format!(
                    "`{}!` in library code aborts the thread — return a typed error, or \
                     justify with `// xlint: allow(p1, reason = \"…\")`",
                    toks[i].text
                ),
            ));
        }
        // Opt-in: `expr [ …` indexing (out-of-bounds panics). An `#[attr]`
        // or an array/slice *type or literal* is preceded by punctuation,
        // so "value token followed by `[`" isolates indexing.
        if opts.indexing
            && is_punct(toks, i, "[")
            && i >= 1
            && (toks[i - 1].kind == TokenKind::Ident
                || is_punct(toks, i - 1, ")")
                || is_punct(toks, i - 1, "]"))
            && !is_keyword_before_index(&toks[i - 1].text)
        {
            out.push(Violation::new(
                "P1",
                sf,
                toks[i].line,
                "slice indexing panics out of bounds — use `get`/`get_mut` or justify with \
                 `// xlint: allow(p1, reason = \"…\")`"
                    .to_string(),
            ));
        }
    }
    out
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [a, b]`, `in [1, 2]`, …).
fn is_keyword_before_index(text: &str) -> bool {
    matches!(
        text,
        "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "as" | "where"
    )
}
