//! Rules U1/U2 — unsafe discipline.
//!
//! **U1** (per file): every `unsafe` block / fn / impl in library code
//! carries an *adjacent* `// SAFETY:` comment with a non-empty
//! justification (trailing on the same line, or the comment run ending on
//! the line directly above — see [`crate::unsafe_scan`] for the exact
//! adjacency contract). Exact: the scan sees every `unsafe` keyword
//! outside `#[cfg(test)]`; only the *quality* of the justification is
//! left to review.
//!
//! **U2** (workspace): every `unsafe` site is recorded in the committed
//! `docs/unsafe_audit.md` (regenerated via `--graph unsafe`), keyed by
//! `file · kind · enclosing fn` so pure line shifts don't churn the
//! audit. This is the ratchet: new unsafe cannot land without the audit
//! doc — and therefore a reviewed justification — landing with it.

use std::path::Path;

use super::{InterprocScope, Violation};
use crate::parser::parse_file;
use crate::source::SourceFile;
use crate::unsafe_scan::{collect_unsafe, keys_in_markdown, workspace_sites};

pub fn check_u1(sf: &SourceFile) -> Vec<Violation> {
    let parsed = parse_file(sf, "crate");
    collect_unsafe(sf, &parsed)
        .into_iter()
        .filter(|s| s.safety.is_none())
        .map(|s| {
            Violation::new(
                "U1",
                sf,
                s.line,
                format!(
                    "`unsafe` {} in `{}` has no adjacent `// SAFETY:` justification — \
                     state the contract and why it holds on the line(s) directly above",
                    s.kind.label(),
                    s.fn_label
                ),
            )
        })
        .collect()
}

/// Compares the live workspace unsafe inventory against the committed
/// audit doc. A site whose key appears more times in the tree than in
/// the doc is un-audited; the fix is `--graph unsafe >
/// docs/unsafe_audit.md` *after* writing the SAFETY comment (U1 makes
/// sure the regenerated doc then carries a real justification).
pub fn check_u2(root: &Path, scope: &InterprocScope) -> std::io::Result<Vec<Violation>> {
    let sites = workspace_sites(root)?;
    let doc = std::fs::read_to_string(root.join("docs/unsafe_audit.md")).unwrap_or_default();
    let mut doc_keys = keys_in_markdown(&doc);
    let mut out = Vec::new();
    for s in &sites {
        let krate = crate_of(&s.file);
        if !scope.in_scope(&krate, &s.file) {
            continue;
        }
        let key = s.key();
        // Consume one doc entry per live site; sites beyond the doc's
        // count for the same key are the un-audited ones.
        if let Some(pos) = doc_keys.iter().position(|k| *k == key) {
            doc_keys.swap_remove(pos);
            continue;
        }
        out.push(Violation {
            rule: "U2",
            file: s.file.clone(),
            line: s.line,
            message: format!(
                "unsafe {} in `{}` is not recorded in docs/unsafe_audit.md — \
                 regenerate it with `cargo run -p xlint -- --graph unsafe > docs/unsafe_audit.md`",
                s.kind.label(),
                s.fn_label
            ),
        });
    }
    Ok(out)
}

/// Lib-crate name owning a workspace-relative path
/// (`crates/diskstore/src/mmap.rs` → `xfraud_diskstore`).
fn crate_of(file: &str) -> String {
    file.split('/')
        .nth(1)
        .map(crate::lib_name)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path as P;

    fn check(src: &str) -> Vec<Violation> {
        check_u1(&SourceFile::from_source(P::new("crates/d/src/lib.rs"), src))
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        let v = check("fn f() { unsafe { go() } }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "U1");
        assert!(v[0].message.contains("`f`"), "{}", v[0].message);
    }

    #[test]
    fn adjacent_safety_comment_passes() {
        let v = check("fn f() {\n    // SAFETY: index checked by caller\n    unsafe { go() }\n}");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let v = check("fn f() {\n    // SAFETY: stale justification\n\n    unsafe { go() }\n}");
        assert_eq!(v.len(), 1, "a blank line detaches the justification");
    }
}
